//! Tenants, priority classes, and per-tenant quotas.
//!
//! The multi-tenant serving tier (IBM's Deep Learning Service is the
//! published template) shares one replica pool between many principals,
//! each with its own model, queue quota, and scheduling class. This module
//! holds the *static* description of that population; the dynamic
//! weighted-fair admission decisions live in [`crate::sched`], and both
//! execution engines (threaded server and virtual-time simulator) consume
//! the same directory so their scheduling behaviour is bit-identical.

use crate::error::ServeError;

/// Scheduling class of a tenant, highest urgency first.
///
/// Classes gate *strictly*: the scheduler never dispatches a lower class
/// while a higher class has a dispatchable batch. Weighted fairness (DRR)
/// applies between tenants of the same class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Latency-sensitive traffic (clinician-facing drug-response queries):
    /// must meet its deadline envelope even under batch bursts.
    Interactive,
    /// Throughput-oriented traffic (compound-screening sweeps): soaks
    /// spare capacity, tolerates queueing.
    Batch,
    /// Scavenger traffic: runs only when nothing else is dispatchable.
    BestEffort,
}

impl PriorityClass {
    /// All classes, highest urgency first.
    pub const ALL: [PriorityClass; 3] =
        [PriorityClass::Interactive, PriorityClass::Batch, PriorityClass::BestEffort];

    /// Strict-priority rank: 0 is most urgent.
    pub fn rank(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Batch => 1,
            PriorityClass::BestEffort => 2,
        }
    }

    /// Stable lowercase label for CSV rows and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Batch => "batch",
            PriorityClass::BestEffort => "besteffort",
        }
    }
}

/// Static description of one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name (CSV key, routing key).
    pub name: String,
    /// Scheduling class; see [`PriorityClass`].
    pub class: PriorityClass,
    /// DRR weight within the class (>= 1): relative share of dispatched
    /// rows when the class is contended.
    pub weight: u32,
    /// Per-tenant admission quota: at most this many requests queued at
    /// once; arrivals beyond it are rejected with
    /// [`ServeError::QuotaExceeded`], so one tenant's burst can never
    /// occupy another tenant's queue space.
    pub queue_capacity: usize,
    /// Registry model this tenant's requests route to.
    pub model: String,
}

impl TenantSpec {
    /// A validated spec. Panics on a zero weight or capacity — these are
    /// configuration bugs, not runtime conditions.
    pub fn new(
        name: &str,
        class: PriorityClass,
        weight: u32,
        queue_capacity: usize,
        model: &str,
    ) -> Self {
        assert!(!name.is_empty(), "tenant name must be non-empty");
        assert!(weight >= 1, "tenant weight must be >= 1");
        assert!(queue_capacity >= 1, "tenant queue_capacity must be >= 1");
        TenantSpec {
            name: name.to_string(),
            class,
            weight,
            queue_capacity,
            model: model.to_string(),
        }
    }
}

/// Dense tenant id: index into the [`TenantDirectory`]. Both engines and
/// the scheduler address tenants by this id, so ordering is explicit and
/// deterministic (directory order breaks all ties).
pub type TenantId = usize;

/// The validated tenant population of one server or simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantDirectory {
    specs: Vec<TenantSpec>,
}

impl TenantDirectory {
    /// Build a directory, rejecting duplicate tenant names.
    pub fn new(specs: Vec<TenantSpec>) -> Result<Self, ServeError> {
        if specs.is_empty() {
            return Err(ServeError::EmptyDirectory);
        }
        for (i, s) in specs.iter().enumerate() {
            if specs[..i].iter().any(|p| p.name == s.name) {
                return Err(ServeError::DuplicateTenant(s.name.clone()));
            }
        }
        Ok(TenantDirectory { specs })
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the directory is empty (never: construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Spec of tenant `t`.
    pub fn spec(&self, t: TenantId) -> &TenantSpec {
        &self.specs[t]
    }

    /// All specs in id order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Resolve a tenant name to its dense id.
    pub fn resolve(&self, name: &str) -> Result<TenantId, ServeError> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, class: PriorityClass) -> TenantSpec {
        TenantSpec::new(name, class, 1, 8, "m")
    }

    #[test]
    fn class_ranks_are_strictly_ordered() {
        let ranks: Vec<usize> = PriorityClass::ALL.iter().map(|c| c.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
        assert!(PriorityClass::Interactive < PriorityClass::Batch);
        assert!(PriorityClass::Batch < PriorityClass::BestEffort);
    }

    #[test]
    fn directory_resolves_names_in_order() {
        let d = TenantDirectory::new(vec![
            spec("clinic", PriorityClass::Interactive),
            spec("screen", PriorityClass::Batch),
        ])
        .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve("clinic").unwrap(), 0);
        assert_eq!(d.resolve("screen").unwrap(), 1);
        assert_eq!(d.spec(1).name, "screen");
        assert!(matches!(d.resolve("ghost"), Err(ServeError::UnknownTenant(_))));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err = TenantDirectory::new(vec![
            spec("a", PriorityClass::Batch),
            spec("a", PriorityClass::Interactive),
        ]);
        assert!(matches!(err, Err(ServeError::DuplicateTenant(_))));
    }

    #[test]
    fn empty_directory_is_rejected() {
        assert!(matches!(TenantDirectory::new(vec![]), Err(ServeError::EmptyDirectory)));
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_rejected() {
        let _ = TenantSpec::new("t", PriorityClass::Batch, 0, 8, "m");
    }
}
