//! dd-serve: batched inference serving with admission control.
//!
//! The paper's CANDLE workflows do not stop at training: screened compound
//! rankings and patient-derived drug-response predictions are *served*, and
//! the serving side stresses a different corner of the machine — latency
//! under load rather than sustained FLOPs. This crate models that corner
//! for the workspace's models:
//!
//! * [`ModelRegistry`] — named, versioned [`ModelSnapshot`]s built from
//!   dd-nn checkpoints; hot-swappable, with in-flight batches pinned to the
//!   snapshot they started with.
//! * [`BatchPolicy`] / [`plan`] — the pure dynamic-batching decision core:
//!   coalesce up to `max_batch` requests or `max_wait`, whichever first,
//!   and shed requests that outlive their deadline.
//! * [`Server`] — the threaded engine: a bounded admission queue
//!   (reject-on-full with [`ServeError::Overloaded`]), a batcher thread,
//!   and a worker pool running [`dispatch_batch`], the dd-obs-instrumented
//!   kernel that accounts FLOPs, batch sizes and service time.
//! * [`simulate`] — a virtual-time twin of the server driving the same
//!   decision core with an analytic [`ServiceModel`], so the E13
//!   latency/throughput sweep is deterministic and byte-identical across
//!   runs.
//! * [`poisson_arrivals`] — a seeded open-loop Poisson load generator.
//! * [`ResilPolicy`] / [`ResilientCall`] — the fault-tolerance decision
//!   core: capped-backoff retries, p99-derived hedging, per-replica and
//!   per-version circuit breakers with degraded-mode fallback. One state
//!   machine drives both the threaded [`Server`] and the
//!   [`simulate_chaos`] virtual-time twin, whose faults come from the
//!   seeded [`FaultPlan`] injector (crash / straggle / corrupt) reusing
//!   dd-hpcsim's MTBF model for replica failure arrivals.
//! * [`ServeTelemetry`] — the streaming telemetry bundle: sliding-window
//!   latency summaries, multi-window burn-rate SLO alerts, tail-sampled
//!   request traces and a per-replica flight recorder, all driven off the
//!   caller's clock so the threaded [`Server`] and the
//!   [`simulate_chaos_telemetry`] virtual-time twin emit bit-identical
//!   [`TelemetryReport`]s from identical event streams.
//! * [`TenantDirectory`] / [`DrrScheduler`] / [`Autoscaler`] — the
//!   multi-tenant platform tier: per-tenant quotas and models, strict
//!   [`PriorityClass`]es with deficit-round-robin weighted fairness
//!   between tenants of a class ([`plan_fair`] replaces the single global
//!   FIFO), and a queue-depth replica autoscaler with hysteresis. One
//!   pure decision core drives both the threaded [`Server`] (tenanted
//!   mode) and the [`simulate_tenants`] virtual-time twin, which is what
//!   E18 sweeps at millions of simulated requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod dispatch;
pub mod error;
pub mod loadgen;
pub mod registry;
pub mod replica;
pub mod resil;
pub mod sched;
pub mod server;
pub mod sim;
pub mod telemetry;
pub mod tenant;

pub use batcher::{plan, BatchDecision, BatchPolicy};
pub use dispatch::dispatch_batch;
pub use error::ServeError;
pub use loadgen::{poisson_arrivals, request_batch, LoadConfig};
pub use registry::{ModelRegistry, ModelSnapshot};
pub use replica::{FaultPlan, FaultSpec, Injected, ReplicaSetState, VersionGuard};
pub use resil::{
    Action, AttemptOutcome, BreakerPolicy, BreakerState, CircuitBreaker, GiveUpReason, HedgePolicy,
    ResilPolicy, ResilientCall, RetryPolicy,
};
pub use sched::{
    plan_fair, AutoscalePolicy, Autoscaler, DrrScheduler, QueueView, ScaleDecision, SchedDecision,
};
pub use server::{
    ResilConfig, ResponseHandle, ServeConfig, Server, ServerStats, TenantServerStats,
};
pub use sim::{
    simulate, simulate_chaos, simulate_chaos_telemetry, simulate_tenants, ChaosConfig, ChaosReport,
    ServiceModel, SimConfig, SimReport, TenantLoad, TenantSimConfig, TenantSimReport, TenantStats,
};
pub use telemetry::{
    ClassReport, FlightDump, ServeTelemetry, TelemetryConfig, TelemetryReport, SLO_AVAILABILITY,
    SLO_LATENCY,
};
pub use tenant::{PriorityClass, TenantDirectory, TenantId, TenantSpec};
