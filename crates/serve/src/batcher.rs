//! Dynamic batching policy — the pure decision core.
//!
//! Both execution engines (the threaded [`crate::server::Server`] and the
//! virtual-time [`crate::sim`] simulator) drive the *same* decision
//! functions in this module, so the latency/throughput behaviour the E13
//! experiment measures in virtual time is the behaviour the real server
//! exhibits on the wall clock. The functions are pure in `now`: the server
//! feeds them `dd_obs::monotonic_seconds()` (the single sanctioned clock),
//! the simulator feeds them simulated time.

/// Knobs of the dynamic batcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are pending.
    pub max_batch: usize,
    /// Dispatch a partial batch once the oldest pending request has waited
    /// this long (seconds). `0.0` disables coalescing entirely.
    pub max_wait_s: f64,
    /// Per-request deadline (seconds from enqueue). Requests that are still
    /// queued past it are shed with `ServeError::DeadlineExceeded` instead
    /// of being dispatched late.
    pub deadline_s: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch: 16, max_wait_s: 2e-3, deadline_s: 0.25 }
    }
}

impl BatchPolicy {
    /// Policy with validated knobs. Panics on non-finite or negative knobs
    /// and `max_batch == 0` — configuration bugs, not runtime conditions.
    pub fn new(max_batch: usize, max_wait_s: f64, deadline_s: f64) -> Self {
        assert!(max_batch >= 1, "max_batch must be >= 1");
        assert!(max_wait_s.is_finite() && max_wait_s >= 0.0, "max_wait_s must be >= 0");
        assert!(deadline_s.is_finite() && deadline_s > 0.0, "deadline_s must be > 0");
        BatchPolicy { max_batch, max_wait_s, deadline_s }
    }
}

/// What the batcher should do right now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchDecision {
    /// Take the first `n` pending requests and dispatch them as one batch.
    Dispatch(usize),
    /// Nothing dispatchable yet: sleep at most this many seconds (or until
    /// a new request arrives) and re-plan.
    WaitFor(f64),
    /// No pending requests: block for the next arrival.
    Idle,
}

/// Decide the next batching action.
///
/// * `now_s` — current time on whichever clock drives this engine.
/// * `oldest_enqueue_s` — enqueue time of the oldest pending request
///   (ignored when `pending == 0`).
/// * `pending` — number of queued requests.
/// * `draining` — true once no further arrivals are possible (shutdown):
///   partial batches flush immediately instead of waiting out `max_wait`.
pub fn plan(
    policy: &BatchPolicy,
    now_s: f64,
    oldest_enqueue_s: f64,
    pending: usize,
    draining: bool,
) -> BatchDecision {
    if pending == 0 {
        return BatchDecision::Idle;
    }
    if pending >= policy.max_batch {
        return BatchDecision::Dispatch(policy.max_batch);
    }
    if draining {
        return BatchDecision::Dispatch(pending);
    }
    let flush_at = oldest_enqueue_s + policy.max_wait_s;
    if now_s >= flush_at {
        BatchDecision::Dispatch(pending)
    } else {
        BatchDecision::WaitFor(flush_at - now_s)
    }
}

/// Has a request queued at `enqueue_s` outlived its deadline at `now_s`?
pub fn expired(policy: &BatchPolicy, now_s: f64, enqueue_s: f64) -> bool {
    now_s - enqueue_s > policy.deadline_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BatchPolicy {
        BatchPolicy::new(8, 0.002, 0.1)
    }

    #[test]
    fn idle_when_empty() {
        assert_eq!(plan(&policy(), 10.0, 0.0, 0, false), BatchDecision::Idle);
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let p = policy();
        assert_eq!(plan(&p, 10.0, 9.9999, 8, false), BatchDecision::Dispatch(8));
        // Oversubscribed queue still caps the batch at max_batch.
        assert_eq!(plan(&p, 10.0, 9.9999, 20, false), BatchDecision::Dispatch(8));
    }

    #[test]
    fn partial_batch_waits_out_max_wait() {
        let p = policy();
        match plan(&p, 10.0, 10.0, 3, false) {
            BatchDecision::WaitFor(s) => assert!((s - 0.002).abs() < 1e-12),
            other => panic!("expected WaitFor, got {other:?}"),
        }
        // Once the oldest request has aged past max_wait, flush the partial.
        assert_eq!(plan(&p, 10.0021, 10.0, 3, false), BatchDecision::Dispatch(3));
    }

    #[test]
    fn draining_flushes_partials() {
        assert_eq!(plan(&policy(), 10.0, 10.0, 3, true), BatchDecision::Dispatch(3));
    }

    #[test]
    fn zero_wait_disables_coalescing() {
        let p = BatchPolicy::new(64, 0.0, 0.1);
        assert_eq!(plan(&p, 5.0, 5.0, 1, false), BatchDecision::Dispatch(1));
    }

    #[test]
    fn deadline_expiry() {
        let p = policy();
        assert!(!expired(&p, 10.05, 10.0));
        assert!(expired(&p, 10.2, 10.0));
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_rejected() {
        let _ = BatchPolicy::new(0, 0.001, 0.1);
    }
}
