//! Weighted-fair admission scheduling and replica autoscaling — the pure
//! multi-tenant decision core.
//!
//! Like [`crate::batcher::plan`], everything here is pure in `now`: the
//! threaded server feeds `dd_obs::monotonic_seconds()`, the virtual-time
//! simulator feeds simulated time, and both drive the *same* state
//! machines, so the E18 tenancy sweep measures exactly the scheduling the
//! real server performs. Nothing in this module reads a clock, draws
//! randomness, or records telemetry; the engines own all of that at their
//! `admit*`/`scale*` entry points.
//!
//! Two pieces:
//!
//! * [`DrrScheduler`] / [`plan_fair`] — strict priority between
//!   [`PriorityClass`]es, deficit-round-robin (DRR) weighted fairness
//!   between tenants of the same class. Each tenant's per-queue batching
//!   readiness is decided by the *existing* single-queue core
//!   ([`crate::batcher::plan`]), so the multi-tenant scheduler composes
//!   with, rather than replaces, the E13 batching semantics.
//! * [`Autoscaler`] — queue-depth-driven replica scaling with hysteresis
//!   (distinct grow/shrink watermarks) and a cooldown between actions,
//!   clamped to a configured `[min_replicas, max_replicas]` band.

use crate::batcher::{plan, BatchDecision, BatchPolicy};
use crate::tenant::{TenantDirectory, TenantId};

/// Snapshot of one tenant's queue, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueView {
    /// Requests currently queued for this tenant.
    pub pending: usize,
    /// Enqueue time of the oldest pending request (ignored when
    /// `pending == 0`).
    pub oldest_s: f64,
}

impl QueueView {
    /// An empty queue.
    pub fn empty() -> Self {
        QueueView { pending: 0, oldest_s: 0.0 }
    }
}

/// What the multi-tenant scheduler wants to happen next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedDecision {
    /// Dispatch the first `n` requests of tenant `tenant` as one batch.
    Dispatch {
        /// Tenant whose queue wins this dispatch slot.
        tenant: TenantId,
        /// Batch size to take from its queue head.
        n: usize,
    },
    /// Nothing dispatchable yet: sleep at most this many seconds (or until
    /// an arrival) and re-plan.
    WaitFor(f64),
    /// No tenant has pending requests.
    Idle,
}

/// Deficit-round-robin scheduler state: one deficit counter per tenant.
///
/// Selection is strict-priority across classes, then argmax-deficit within
/// the winning class (ties break to the lowest tenant id, so directory
/// order is the deterministic tiebreaker). When no ready tenant in the
/// class holds a full credit, every ready tenant is topped up by
/// `quantum × weight` and selection retries — the classic DRR round,
/// expressed eagerly. Dispatched rows are paid back via [`charge`], and a
/// tenant whose queue empties forfeits its unused deficit (idle tenants
/// must not hoard credit).
///
/// [`charge`]: DrrScheduler::charge
#[derive(Debug, Clone, PartialEq)]
pub struct DrrScheduler {
    ranks: Vec<usize>,
    weights: Vec<f64>,
    deficits: Vec<f64>,
    quantum: f64,
}

/// Default DRR quantum in rows; one top-up grants a default-sized batch
/// per unit weight, so a weight-2 tenant earns two batches per round.
pub const DRR_QUANTUM_ROWS: f64 = 16.0;

impl DrrScheduler {
    /// Scheduler over the tenants of `dir` with the default quantum.
    pub fn new(dir: &TenantDirectory) -> Self {
        Self::with_quantum(dir, DRR_QUANTUM_ROWS)
    }

    /// Scheduler with an explicit per-round quantum (rows; must be >= 1 so
    /// every top-up round makes progress).
    pub fn with_quantum(dir: &TenantDirectory, quantum: f64) -> Self {
        assert!(quantum >= 1.0 && quantum.is_finite(), "quantum must be >= 1 row");
        DrrScheduler {
            ranks: dir.specs().iter().map(|s| s.class.rank()).collect(),
            weights: dir.specs().iter().map(|s| f64::from(s.weight)).collect(),
            deficits: vec![0.0; dir.len()],
            quantum,
        }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the scheduler tracks no tenants (never: directories are
    /// non-empty).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Current deficit of tenant `t` (test/bench observability).
    pub fn deficit(&self, t: TenantId) -> f64 {
        self.deficits[t]
    }

    /// Pick the tenant to dispatch next. `ready[t]` means tenant `t` has a
    /// dispatchable batch *right now*; `backlogged[t]` means it has any
    /// pending requests. Returns `None` when nothing is ready.
    pub fn select(&mut self, ready: &[bool], backlogged: &[bool]) -> Option<TenantId> {
        assert_eq!(ready.len(), self.ranks.len(), "ready mask width");
        assert_eq!(backlogged.len(), self.ranks.len(), "backlog mask width");
        // Idle tenants forfeit unused credit: fairness is over offered
        // load, not wall-clock existence.
        for (d, &has_backlog) in self.deficits.iter_mut().zip(backlogged) {
            if !has_backlog {
                *d = 0.0;
            }
        }
        let rank = (0..self.ranks.len()).filter(|&t| ready[t]).map(|t| self.ranks[t]).min()?;
        let class: Vec<TenantId> =
            (0..self.ranks.len()).filter(|&t| ready[t] && self.ranks[t] == rank).collect();
        loop {
            let (best, best_d) = class.iter().map(|&t| (t, self.deficits[t])).fold(
                (class[0], f64::NEG_INFINITY),
                |(bt, bd), (t, d)| {
                    if d > bd {
                        (t, d)
                    } else {
                        (bt, bd)
                    }
                },
            );
            if best_d >= 1.0 {
                return Some(best);
            }
            // DRR round: replenish every ready tenant in the class. Each
            // round adds >= quantum >= 1 to the max, so this terminates in
            // at most `1 - best_d` rounds (deficits are bounded below by
            // the largest batch ever charged).
            for &t in &class {
                self.deficits[t] += self.quantum * self.weights[t];
            }
        }
    }

    /// Pay for `rows` dispatched rows out of tenant `t`'s deficit.
    pub fn charge(&mut self, t: TenantId, rows: usize) {
        self.deficits[t] -= rows as f64;
    }
}

/// Decide the next multi-tenant batching action.
///
/// Per-tenant readiness is [`crate::batcher::plan`] applied to that
/// tenant's queue; the DRR core then arbitrates between ready tenants.
/// The caller dispatches the returned batch and pays for the rows actually
/// taken with [`DrrScheduler::charge`] — both engines follow that exact
/// sequence, which is what makes their scheduling transcripts comparable
/// bit for bit.
pub fn plan_fair(
    policy: &BatchPolicy,
    sched: &mut DrrScheduler,
    now_s: f64,
    queues: &[QueueView],
    draining: bool,
) -> SchedDecision {
    assert_eq!(queues.len(), sched.len(), "one queue view per tenant");
    let mut ready = vec![false; queues.len()];
    let mut backlogged = vec![false; queues.len()];
    let mut soonest = f64::INFINITY;
    for (t, q) in queues.iter().enumerate() {
        if q.pending == 0 {
            continue;
        }
        backlogged[t] = true;
        match plan(policy, now_s, q.oldest_s, q.pending, draining) {
            BatchDecision::Dispatch(_) => ready[t] = true,
            BatchDecision::WaitFor(s) => soonest = soonest.min(s),
            BatchDecision::Idle => {}
        }
    }
    if let Some(t) = sched.select(&ready, &backlogged) {
        return SchedDecision::Dispatch { tenant: t, n: queues[t].pending.min(policy.max_batch) };
    }
    if backlogged.iter().any(|&b| b) {
        SchedDecision::WaitFor(soonest)
    } else {
        SchedDecision::Idle
    }
}

/// Knobs of the queue-depth autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Never shrink below this many active replicas.
    pub min_replicas: usize,
    /// Never grow past this many active replicas (the provisioned pool).
    pub max_replicas: usize,
    /// Grow when total queued requests reach this depth.
    pub high_depth: usize,
    /// Shrink when total queued requests fall to this depth or below.
    /// Must sit strictly under `high_depth` — the gap is the hysteresis
    /// band that prevents flapping.
    pub low_depth: usize,
    /// Minimum seconds between consecutive scaling actions.
    pub cooldown_s: f64,
}

impl AutoscalePolicy {
    /// A validated policy. Panics on an empty band or inverted clamps —
    /// configuration bugs, not runtime conditions.
    pub fn new(
        min_replicas: usize,
        max_replicas: usize,
        high_depth: usize,
        low_depth: usize,
        cooldown_s: f64,
    ) -> Self {
        assert!(min_replicas >= 1, "min_replicas must be >= 1");
        assert!(max_replicas >= min_replicas, "max_replicas must be >= min_replicas");
        assert!(high_depth > low_depth, "need hysteresis: high_depth must exceed low_depth");
        assert!(cooldown_s >= 0.0 && cooldown_s.is_finite(), "cooldown_s must be >= 0");
        AutoscalePolicy { min_replicas, max_replicas, high_depth, low_depth, cooldown_s }
    }
}

/// What the autoscaler wants done to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Activate one more replica.
    Grow,
    /// Deactivate one replica.
    Shrink,
    /// Leave the pool as is.
    Hold,
}

/// Queue-depth-driven autoscaler with hysteresis and cooldown.
///
/// Pure in `now`: the engines sample their own clocks and report observed
/// total queue depth plus the current active-replica count; the autoscaler
/// answers with a [`ScaleDecision`] and remembers only the time of its
/// last action.
#[derive(Debug, Clone, PartialEq)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    last_action_s: Option<f64>,
}

impl Autoscaler {
    /// Autoscaler applying `policy`.
    pub fn new(policy: AutoscalePolicy) -> Self {
        Autoscaler { policy, last_action_s: None }
    }

    /// The configured policy.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// Decide for total queue depth `depth` and `active` replicas at
    /// `now_s`. Returns `Hold` inside the cooldown window regardless of
    /// depth; otherwise grows above the high watermark and shrinks at or
    /// below the low one, clamped to the configured band.
    pub fn decide(&mut self, now_s: f64, depth: usize, active: usize) -> ScaleDecision {
        if let Some(last) = self.last_action_s {
            if now_s - last < self.policy.cooldown_s {
                return ScaleDecision::Hold;
            }
        }
        if depth >= self.policy.high_depth && active < self.policy.max_replicas {
            self.last_action_s = Some(now_s);
            return ScaleDecision::Grow;
        }
        if depth <= self.policy.low_depth && active > self.policy.min_replicas {
            self.last_action_s = Some(now_s);
            return ScaleDecision::Shrink;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{PriorityClass, TenantSpec};

    fn dir(specs: &[(&str, PriorityClass, u32)]) -> TenantDirectory {
        TenantDirectory::new(
            specs.iter().map(|(n, c, w)| TenantSpec::new(n, *c, *w, 64, "m")).collect(),
        )
        .unwrap()
    }

    fn policy() -> BatchPolicy {
        BatchPolicy::new(8, 0.002, 0.1)
    }

    #[test]
    fn strict_priority_preempts_lower_classes() {
        let d = dir(&[
            ("clinic", PriorityClass::Interactive, 1),
            ("screen", PriorityClass::Batch, 4),
            ("scav", PriorityClass::BestEffort, 8),
        ]);
        let mut s = DrrScheduler::new(&d);
        let ready = [true, true, true];
        let backlogged = [true, true, true];
        // However heavy the lower-class weights, interactive wins while
        // ready.
        for _ in 0..10 {
            assert_eq!(s.select(&ready, &backlogged), Some(0));
            s.charge(0, 8);
        }
        // With interactive drained, batch preempts best-effort.
        assert_eq!(s.select(&[false, true, true], &backlogged), Some(1));
    }

    #[test]
    fn weights_split_rows_proportionally() {
        let d = dir(&[("a", PriorityClass::Batch, 3), ("b", PriorityClass::Batch, 1)]);
        let mut s = DrrScheduler::new(&d);
        let mut rows = [0usize; 2];
        for _ in 0..400 {
            let t = s.select(&[true, true], &[true, true]).unwrap();
            rows[t] += 8;
            s.charge(t, 8);
        }
        let share = rows[0] as f64 / (rows[0] + rows[1]) as f64;
        assert!(
            (share - 0.75).abs() < 0.05,
            "weight-3 tenant should take ~75% of rows, got {share:.3} ({rows:?})"
        );
    }

    #[test]
    fn idle_tenants_forfeit_deficit() {
        let d = dir(&[("a", PriorityClass::Batch, 1), ("b", PriorityClass::Batch, 1)]);
        let mut s = DrrScheduler::new(&d);
        // Tenant 0 alone accumulates and spends credit.
        assert_eq!(s.select(&[true, false], &[true, false]), Some(0));
        // Tenant 0 goes idle: its leftover credit must reset, so when both
        // return they restart even.
        let _ = s.select(&[false, true], &[false, true]);
        assert_eq!(s.deficit(0), 0.0);
    }

    #[test]
    fn ties_break_to_lowest_id() {
        let d = dir(&[("a", PriorityClass::Batch, 1), ("b", PriorityClass::Batch, 1)]);
        let mut s = DrrScheduler::new(&d);
        assert_eq!(s.select(&[true, true], &[true, true]), Some(0));
    }

    #[test]
    fn select_is_deterministic() {
        let d = dir(&[
            ("a", PriorityClass::Batch, 2),
            ("b", PriorityClass::Batch, 1),
            ("c", PriorityClass::Interactive, 1),
        ]);
        let run = || {
            let mut s = DrrScheduler::new(&d);
            let mut picks = Vec::new();
            for i in 0..100 {
                let ready = [true, i % 3 != 0, i % 7 == 0];
                let t = s.select(&ready, &[true, true, true]);
                if let Some(t) = t {
                    s.charge(t, 5);
                }
                picks.push(t);
            }
            picks
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plan_fair_mirrors_single_queue_semantics() {
        let d = dir(&[("a", PriorityClass::Batch, 1)]);
        let p = policy();
        let mut s = DrrScheduler::new(&d);
        // Empty: idle.
        assert_eq!(plan_fair(&p, &mut s, 1.0, &[QueueView::empty()], false), SchedDecision::Idle);
        // Partial young batch: wait out max_wait, like `plan`.
        let q = [QueueView { pending: 3, oldest_s: 1.0 }];
        match plan_fair(&p, &mut s, 1.0, &q, false) {
            SchedDecision::WaitFor(w) => assert!((w - 0.002).abs() < 1e-12),
            other => panic!("expected WaitFor, got {other:?}"),
        }
        // Full queue dispatches max_batch.
        let q = [QueueView { pending: 20, oldest_s: 1.0 }];
        assert_eq!(
            plan_fair(&p, &mut s, 1.0, &q, false),
            SchedDecision::Dispatch { tenant: 0, n: 8 }
        );
        // Draining flushes partials.
        let q = [QueueView { pending: 3, oldest_s: 1.0 }];
        assert_eq!(
            plan_fair(&p, &mut s, 1.0, &q, true),
            SchedDecision::Dispatch { tenant: 0, n: 3 }
        );
    }

    #[test]
    fn plan_fair_prefers_ready_interactive_over_batch_backlog() {
        let d =
            dir(&[("clinic", PriorityClass::Interactive, 1), ("screen", PriorityClass::Batch, 1)]);
        let p = policy();
        let mut s = DrrScheduler::new(&d);
        let q =
            [QueueView { pending: 8, oldest_s: 0.0 }, QueueView { pending: 400, oldest_s: 0.0 }];
        assert_eq!(
            plan_fair(&p, &mut s, 0.01, &q, false),
            SchedDecision::Dispatch { tenant: 0, n: 8 }
        );
    }

    #[test]
    fn autoscaler_hysteresis_and_cooldown() {
        let mut a = Autoscaler::new(AutoscalePolicy::new(1, 4, 32, 4, 1.0));
        // Above high watermark: grow.
        assert_eq!(a.decide(0.0, 40, 1), ScaleDecision::Grow);
        // Inside the cooldown window: hold even at high depth.
        assert_eq!(a.decide(0.5, 80, 2), ScaleDecision::Hold);
        // Cooldown over, still deep: grow again.
        assert_eq!(a.decide(1.0, 80, 2), ScaleDecision::Grow);
        // In the hysteresis band (low < depth < high): hold forever.
        assert_eq!(a.decide(2.5, 16, 3), ScaleDecision::Hold);
        // At/below the low watermark: shrink.
        assert_eq!(a.decide(3.0, 2, 3), ScaleDecision::Shrink);
        // Clamped at min: hold even when empty.
        assert_eq!(a.decide(5.0, 0, 1), ScaleDecision::Hold);
        // Clamped at max: hold even when flooded.
        assert_eq!(a.decide(6.0, 1000, 4), ScaleDecision::Hold);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_watermarks_rejected() {
        let _ = AutoscalePolicy::new(1, 4, 4, 8, 1.0);
    }
}
