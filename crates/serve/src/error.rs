//! Typed serving errors — the admission-control and deadline vocabulary.

use dd_nn::CheckpointError;

/// Everything that can go wrong between `submit` and a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded request queue was full: admission control rejected the
    /// request instead of queueing it unboundedly. Contains the observed
    /// depth and the configured capacity.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request waited past its deadline and was shed before dispatch.
    DeadlineExceeded {
        /// Seconds the request spent queued before being shed.
        waited_s: f64,
        /// The configured per-request deadline in seconds.
        deadline_s: f64,
    },
    /// No model with this name is installed in the registry.
    UnknownModel(String),
    /// The request's feature vector width does not match the model input.
    ShapeMismatch {
        /// Model input width.
        expected: usize,
        /// Submitted feature-vector width.
        got: usize,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// Loading a checkpoint into the registry failed.
    Checkpoint(CheckpointError),
    /// The worker handling this request disappeared without answering —
    /// indicates a bug (a panic in a worker thread), never normal operation.
    WorkerLost,
    /// A request carried an empty feature vector.
    EmptyRequest,
    /// Every replica attempt failed (crash or corrupt output) and the
    /// retry budget is exhausted.
    ReplicaFailed {
        /// Replica index of the last failed attempt.
        replica: usize,
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// The circuit breaker for this model version is open and no fallback
    /// snapshot could take the request.
    CircuitOpen {
        /// Snapshot version whose breaker rejected the dispatch.
        version: u64,
    },
    /// No tenant with this name exists in the directory.
    UnknownTenant(String),
    /// Two tenants in a directory share one name.
    DuplicateTenant(String),
    /// A tenant directory must describe at least one tenant.
    EmptyDirectory,
    /// The tenant's own queue quota is full: admission control rejected
    /// the request so this tenant's burst cannot occupy another tenant's
    /// queue space.
    QuotaExceeded {
        /// Tenant whose quota rejected the request.
        tenant: String,
        /// The tenant's queue depth at rejection time.
        depth: usize,
        /// The tenant's configured queue quota.
        capacity: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::DeadlineExceeded { waited_s, deadline_s } => {
                write!(f, "deadline exceeded: waited {waited_s:.6}s past deadline {deadline_s:.6}s")
            }
            ServeError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: model expects width {expected}, got {got}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint load failed: {e}"),
            ServeError::WorkerLost => write!(f, "worker thread lost before answering"),
            ServeError::EmptyRequest => write!(f, "empty feature vector"),
            ServeError::ReplicaFailed { replica, attempts } => {
                write!(f, "replica {replica} failed; gave up after {attempts} attempts")
            }
            ServeError::CircuitOpen { version } => {
                write!(f, "circuit breaker open for model version {version}")
            }
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant '{name}'"),
            ServeError::DuplicateTenant(name) => write!(f, "duplicate tenant '{name}'"),
            ServeError::EmptyDirectory => write!(f, "tenant directory is empty"),
            ServeError::QuotaExceeded { tenant, depth, capacity } => {
                write!(f, "tenant '{tenant}' quota exceeded: depth {depth} at capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::Overloaded { depth: 8, capacity: 8 }, "overloaded"),
            (ServeError::DeadlineExceeded { waited_s: 0.2, deadline_s: 0.1 }, "deadline"),
            (ServeError::UnknownModel("w2".into()), "unknown model"),
            (ServeError::ShapeMismatch { expected: 4, got: 3 }, "shape mismatch"),
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::WorkerLost, "worker"),
            (ServeError::EmptyRequest, "empty"),
            (ServeError::ReplicaFailed { replica: 2, attempts: 4 }, "gave up after 4 attempts"),
            (ServeError::CircuitOpen { version: 7 }, "circuit breaker open"),
            (ServeError::UnknownTenant("lab".into()), "unknown tenant"),
            (ServeError::DuplicateTenant("lab".into()), "duplicate tenant"),
            (ServeError::EmptyDirectory, "directory is empty"),
            (
                ServeError::QuotaExceeded { tenant: "lab".into(), depth: 4, capacity: 4 },
                "quota exceeded",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn checkpoint_errors_convert() {
        let e: ServeError = CheckpointError::Truncated.into();
        assert!(matches!(e, ServeError::Checkpoint(CheckpointError::Truncated)));
    }
}
