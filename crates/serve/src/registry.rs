//! Model registry: immutable snapshots behind atomic hot-swap.
//!
//! A served model is wrapped in an [`ModelSnapshot`] — spec, weights and
//! dimensions frozen at install time — and shared as `Arc<ModelSnapshot>`.
//! Swapping in a new version replaces the map entry under a write lock;
//! in-flight batches keep their `Arc` to the old snapshot, so a request is
//! always answered by exactly one model version, never a torn mix.

use crate::error::ServeError;
use dd_nn::{checkpoint, ModelSpec, Sequential};
use dd_tensor::Matrix;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One immutable, servable model version.
///
/// Inference goes through [`Sequential::predict_batch`] (`&self`), so a
/// snapshot is shared across worker threads without clones or locks.
pub struct ModelSnapshot {
    name: String,
    version: u64,
    spec: ModelSpec,
    model: Sequential,
    input_dim: usize,
    output_dim: usize,
}

impl ModelSnapshot {
    /// Registry name this snapshot was installed under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonically increasing install version (unique per registry).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The model's spec (architecture + precision).
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The frozen model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Width of one input row.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Width of one output row.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Batched inference through the immutable path.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        self.model.predict_batch(x)
    }
}

/// Named model versions with atomic hot-swap.
///
/// Readers ([`ModelRegistry::get`]) take a short read lock to clone an
/// `Arc`; installers take the write lock only to replace the map entry.
/// Neither ever blocks on inference, which runs entirely outside the lock.
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<ModelSnapshot>>>,
    prior: RwLock<BTreeMap<String, Arc<ModelSnapshot>>>,
    next_version: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            models: RwLock::new(BTreeMap::new()),
            prior: RwLock::new(BTreeMap::new()),
            next_version: AtomicU64::new(1),
        }
    }

    /// Install (or hot-swap) a built model under `name`. Returns the new
    /// snapshot's version. In-flight requests holding the previous snapshot
    /// finish against it; new lookups see the replacement.
    pub fn install(&self, name: &str, spec: ModelSpec, model: Sequential) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let input_dim = model.input_dim();
        let output_dim = model.output_dim();
        let snap = Arc::new(ModelSnapshot {
            name: name.to_string(),
            version,
            spec,
            model,
            input_dim,
            output_dim,
        });
        if let Some(old) = self.models.write().insert(name.to_string(), snap) {
            self.prior.write().insert(name.to_string(), old);
        }
        dd_obs::counter_add("serve_model_swaps", 1);
        dd_obs::gauge_set("serve_models_loaded", self.models.read().len() as f64);
        version
    }

    /// Load a dd-nn checkpoint blob (v1 or v2) and install it under `name`.
    /// Training state carried by a v2 checkpoint is ignored — serving only
    /// needs the weights.
    pub fn load_checkpoint(&self, name: &str, blob: &[u8]) -> Result<u64, ServeError> {
        let (spec, model) = checkpoint::load(blob)?;
        Ok(self.install(name, spec, model))
    }

    /// Current snapshot for `name`.
    pub fn get(&self, name: &str) -> Result<Arc<ModelSnapshot>, ServeError> {
        self.models
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// The snapshot that `name` served before its most recent hot-swap —
    /// the degraded-mode fallback when the current version's circuit
    /// breaker is open. `None` until the model has been swapped at least
    /// once (or after removal).
    pub fn previous(&self, name: &str) -> Option<Arc<ModelSnapshot>> {
        self.prior.read().get(name).cloned()
    }

    /// Installed model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.read().keys().cloned().collect()
    }

    /// Remove a model (and its fallback history); returns whether it was
    /// present.
    pub fn remove(&self, name: &str) -> bool {
        let removed = self.models.write().remove(name).is_some();
        self.prior.write().remove(name);
        if removed {
            dd_obs::gauge_set("serve_models_loaded", self.models.read().len() as f64);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::Activation;
    use dd_tensor::{Precision, Rng64};

    fn build(seed: u64) -> (ModelSpec, Sequential) {
        let spec = ModelSpec::mlp(6, &[8], 2, Activation::Relu);
        let model = spec.build(seed, Precision::F32).expect("valid spec");
        (spec, model)
    }

    #[test]
    fn install_get_and_versions() {
        let reg = ModelRegistry::new();
        let (spec, model) = build(1);
        let v1 = reg.install("clf", spec, model);
        let snap = reg.get("clf").expect("installed");
        assert_eq!(snap.version(), v1);
        assert_eq!(snap.input_dim(), 6);
        assert_eq!(snap.output_dim(), 2);
        assert_eq!(reg.names(), vec!["clf".to_string()]);

        let (spec2, model2) = build(2);
        let v2 = reg.install("clf", spec2, model2);
        assert!(v2 > v1, "versions must increase");
        assert_eq!(reg.get("clf").expect("still installed").version(), v2);
    }

    #[test]
    fn old_snapshot_survives_hot_swap() {
        let reg = ModelRegistry::new();
        let (spec, model) = build(3);
        reg.install("clf", spec, model);
        let old = reg.get("clf").expect("installed");
        let mut rng = Rng64::new(4);
        let x = Matrix::randn(3, 6, 0.0, 1.0, &mut rng);
        let y_old = old.predict(&x);

        let (spec2, model2) = build(5);
        reg.install("clf", spec2, model2);
        // The held Arc still answers with the old weights, bit for bit.
        assert_eq!(old.predict(&x), y_old);
        // And the registry now serves different weights.
        let newer = reg.get("clf").expect("swapped");
        assert_ne!(newer.predict(&x), y_old);
    }

    #[test]
    fn previous_tracks_the_pre_swap_snapshot() {
        let reg = ModelRegistry::new();
        let (spec, model) = build(9);
        let v1 = reg.install("clf", spec, model);
        assert!(reg.previous("clf").is_none(), "no history before a swap");

        let (spec2, model2) = build(10);
        let v2 = reg.install("clf", spec2, model2);
        let prev = reg.previous("clf").expect("history after swap");
        assert_eq!(prev.version(), v1);
        assert_eq!(reg.get("clf").expect("current").version(), v2);

        reg.remove("clf");
        assert!(reg.previous("clf").is_none(), "removal clears history");
    }

    #[test]
    fn checkpoint_round_trip_into_registry() {
        let (spec, mut model) = build(6);
        let blob = checkpoint::save(&spec, &mut model).expect("encodes");
        let reg = ModelRegistry::new();
        reg.load_checkpoint("from_ckpt", &blob).expect("loads");
        let snap = reg.get("from_ckpt").expect("installed");
        let mut rng = Rng64::new(7);
        let x = Matrix::randn(2, 6, 0.0, 1.0, &mut rng);
        assert_eq!(snap.predict(&x), model.predict(&x));
    }

    #[test]
    fn unknown_and_removed_models_error() {
        let reg = ModelRegistry::new();
        assert!(matches!(reg.get("nope"), Err(ServeError::UnknownModel(_))));
        let (spec, model) = build(8);
        reg.install("tmp", spec, model);
        assert!(reg.remove("tmp"));
        assert!(!reg.remove("tmp"));
        assert!(reg.get("tmp").is_err());
    }

    #[test]
    fn corrupt_checkpoint_is_typed() {
        let reg = ModelRegistry::new();
        let err = reg.load_checkpoint("bad", &[0u8; 8]).expect_err("must fail");
        assert!(matches!(err, ServeError::Checkpoint(_)));
    }
}
