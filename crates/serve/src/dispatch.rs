//! The batch dispatch kernel — dd-serve's instrumented entry point.
//!
//! dd-lint's `instrumentation/uncounted-kernel` rule covers `dispatch*`
//! entry points in this crate: every coalesced batch that reaches a model
//! must account its FLOPs and service time through dd-obs here, the same
//! way `matmul*` entry points do in dd-tensor.

use crate::registry::ModelSnapshot;
use dd_tensor::Matrix;

/// Run one coalesced batch through a model snapshot, accounting FLOPs,
/// batch size and service time. Returns one output row per input row.
pub fn dispatch_batch(snapshot: &ModelSnapshot, rows: &Matrix) -> Matrix {
    let span = dd_obs::span_phase("serve_dispatch", dd_obs::Phase::Compute);
    dd_obs::counter_add("serve_batches_total", 1);
    dd_obs::counter_add("serve_rows_total", rows.rows() as u64);
    dd_obs::counter_add("serve_flops_total", snapshot.model().forward_flops(rows.rows()));
    let y = snapshot.predict(rows);
    let service_s = span.finish();
    dd_obs::hist_record("serve_service_seconds", service_s);
    dd_obs::hist_record("serve_batch_size", rows.rows() as f64);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use dd_nn::{Activation, ModelSpec};
    use dd_tensor::{Precision, Rng64};

    #[test]
    fn dispatch_matches_direct_predict_and_accounts() {
        let reg = ModelRegistry::new();
        let spec = ModelSpec::mlp(5, &[8], 3, Activation::Tanh);
        let model = spec.build(1, Precision::F32).expect("valid spec");
        reg.install("m", spec, model);
        let snap = reg.get("m").expect("installed");

        let mut rng = Rng64::new(2);
        let x = Matrix::randn(4, 5, 0.0, 1.0, &mut rng);

        dd_obs::reset();
        dd_obs::enable();
        let y = dispatch_batch(&snap, &x);
        let snapshot = dd_obs::snapshot();
        dd_obs::disable();
        dd_obs::reset();

        assert_eq!(y, snap.predict(&x));
        // `>=`: other tests in this binary may dispatch concurrently while
        // the global registry is briefly enabled.
        assert!(snapshot.counter("serve_batches_total") >= 1);
        assert!(snapshot.counter("serve_rows_total") >= 4);
        assert!(snapshot.counter("serve_flops_total") >= snap.model().forward_flops(4));
        assert!(snapshot.hists.contains_key("serve_service_seconds"));
    }
}
