//! Deterministic open-loop load generator.
//!
//! Poisson arrivals drawn by inverse CDF from the workspace [`Rng64`] —
//! never `thread_rng`, never the wall clock — so a given (seed, rate,
//! count) always produces the same arrival process. "Open loop" means
//! arrival times are fixed up front and do not react to server backpressure:
//! exactly the client behaviour that exposes an overloaded queue instead of
//! politely hiding it.

use dd_tensor::{Matrix, Rng64};

/// Configuration of one arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Mean offered load, requests per second. Must be finite and positive.
    pub rate_per_s: f64,
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed; equal seeds give equal arrival processes.
    pub seed: u64,
}

/// Strictly increasing Poisson arrival times, in seconds from zero.
///
/// Inter-arrival gaps are exponential with mean `1/rate`, sampled by the
/// inverse CDF `-ln(1 - u) / rate` ([`Rng64::exponential`]).
pub fn poisson_arrivals(cfg: &LoadConfig) -> Vec<f64> {
    assert!(cfg.rate_per_s.is_finite() && cfg.rate_per_s > 0.0, "rate must be positive");
    let mut rng = Rng64::new(cfg.seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        t += rng.exponential(cfg.rate_per_s);
        out.push(t);
    }
    out
}

/// Deterministic request payloads: one standard-normal feature row per
/// request, seeded independently of the arrival process.
pub fn request_batch(requests: usize, width: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    Matrix::randn(requests, width, 0.0, 1.0, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_increasing() {
        let cfg = LoadConfig { rate_per_s: 1000.0, requests: 500, seed: 42 };
        let a = poisson_arrivals(&cfg);
        let b = poisson_arrivals(&cfg);
        assert_eq!(a, b, "same seed must give identical arrivals");
        assert!(a.windows(2).all(|w| w[1] > w[0]), "arrival times must increase");
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn mean_rate_is_respected() {
        let cfg = LoadConfig { rate_per_s: 2000.0, requests: 20_000, seed: 7 };
        let a = poisson_arrivals(&cfg);
        let empirical = a.len() as f64 / a.last().copied().unwrap_or(1.0);
        assert!(
            (empirical - 2000.0).abs() < 100.0,
            "empirical rate {empirical} far from offered 2000"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = poisson_arrivals(&LoadConfig { rate_per_s: 100.0, requests: 50, seed: 1 });
        let b = poisson_arrivals(&LoadConfig { rate_per_s: 100.0, requests: 50, seed: 2 });
        assert_ne!(a, b);
    }

    #[test]
    fn request_batch_shape_and_determinism() {
        let x = request_batch(10, 4, 3);
        assert_eq!(x.shape(), (10, 4));
        assert_eq!(x, request_batch(10, 4, 3));
    }
}
