//! The threaded serving engine: admission queue → dynamic batcher → workers.
//!
//! Data flow and backpressure, stage by stage:
//!
//! 1. **Admission** ([`Server::submit`]): a bounded crossbeam channel is the
//!    request queue. `try_send` on a full queue fails the request with
//!    [`ServeError::Overloaded`] immediately — the queue never grows beyond
//!    `queue_capacity`, so overload degrades p99 into fast rejections
//!    instead of unbounded latency.
//! 2. **Batching**: a single batcher thread drives the pure
//!    [`crate::batcher::plan`] decision function on the dd-obs clock,
//!    coalescing up to `max_batch` requests or flushing partial batches
//!    after `max_wait`. Requests older than their deadline are shed with
//!    [`ServeError::DeadlineExceeded`] before ever reaching a model.
//! 3. **Workers**: a `bounded(workers)` job channel feeds the pool; when
//!    every worker is busy the batcher blocks on it, which in turn lets the
//!    admission queue fill and the overload policy engage.
//!
//! Every admitted request is answered exactly once — completion, shed, or a
//! typed failure — including during [`Server::shutdown`], which drains the
//! queue before joining the pool.

use crate::batcher::{expired, plan, BatchDecision, BatchPolicy};
use crate::dispatch::dispatch_batch;
use crate::error::ServeError;
use crate::registry::{ModelRegistry, ModelSnapshot};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use dd_tensor::Matrix;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server sizing and batching knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission-queue capacity: requests beyond this are rejected.
    pub queue_capacity: usize,
    /// Worker threads running batched inference.
    pub workers: usize,
    /// Dynamic batching policy.
    pub policy: BatchPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { queue_capacity: 256, workers: 2, policy: BatchPolicy::default() }
    }
}

/// Lifetime counters of one server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests shed for exceeding their deadline.
    pub shed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Admitted requests answered with a non-deadline error (model removed
    /// mid-flight, worker loss).
    pub failed: u64,
}

#[derive(Default)]
struct StatsInner {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

type Response = Result<Vec<f32>, ServeError>;

struct Request {
    model: String,
    features: Vec<f32>,
    enqueue_s: f64,
    resp: Sender<Response>,
}

struct Job {
    snapshot: Arc<ModelSnapshot>,
    rows: Matrix,
    meta: Vec<(f64, Sender<Response>)>,
}

/// The caller's side of one in-flight request.
pub struct ResponseHandle {
    rx: Receiver<Response>,
}

impl ResponseHandle {
    /// Block until the request is answered. Every admitted request is
    /// answered exactly once; a closed channel without an answer means a
    /// worker died and surfaces as [`ServeError::WorkerLost`].
    pub fn wait(self) -> Response {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::WorkerLost),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }
}

/// A running in-process inference server.
pub struct Server {
    registry: Arc<ModelRegistry>,
    tx: Option<Sender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
    stats: Arc<StatsInner>,
}

impl Server {
    /// Spawn the batcher thread and worker pool and start serving.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Server {
        assert!(config.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(config.workers >= 1, "workers must be >= 1");
        let stats = Arc::new(StatsInner::default());
        let (tx, rx) = bounded::<Request>(config.queue_capacity);
        let (job_tx, job_rx) = bounded::<Job>(config.workers);

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let job_rx = job_rx.clone();
            let stats = Arc::clone(&stats);
            workers.push(std::thread::spawn(move || worker_loop(&job_rx, &stats)));
        }
        drop(job_rx);

        let batcher = {
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let policy = config.policy;
            std::thread::spawn(move || batcher_loop(&rx, &registry, policy, &job_tx, &stats))
        };

        Server {
            registry,
            tx: Some(tx),
            batcher: Some(batcher),
            workers,
            capacity: config.queue_capacity,
            stats,
        }
    }

    /// The registry this server resolves model names against. Installing a
    /// new version there hot-swaps it for all subsequently dispatched
    /// batches; in-flight batches finish on the snapshot they started with.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Submit one request. Returns a handle immediately, or a typed error
    /// when the request is malformed, the model is unknown, or admission
    /// control rejects it ([`ServeError::Overloaded`]).
    pub fn submit(&self, model: &str, features: Vec<f32>) -> Result<ResponseHandle, ServeError> {
        if features.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        let snap = self.registry.get(model)?;
        if features.len() != snap.input_dim() {
            return Err(ServeError::ShapeMismatch {
                expected: snap.input_dim(),
                got: features.len(),
            });
        }
        let Some(tx) = self.tx.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        let (resp_tx, resp_rx) = bounded::<Response>(1);
        let req = Request {
            model: model.to_string(),
            features,
            enqueue_s: dd_obs::monotonic_seconds(),
            resp: resp_tx,
        };
        match tx.try_send(req) {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                dd_obs::gauge_set("serve_queue_depth", tx.len() as f64);
                Ok(ResponseHandle { rx: resp_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                dd_obs::counter_add("serve_rejected_total", 1);
                Err(ServeError::Overloaded { depth: tx.len(), capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Current lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stop admitting, drain every queued request (answering each exactly
    /// once), join the batcher and the pool, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_inner();
        self.stats.snapshot()
    }

    fn shutdown_inner(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn respond(stats: &StatsInner, req: Request, err: ServeError) {
    match err {
        ServeError::DeadlineExceeded { .. } => {
            stats.shed.fetch_add(1, Ordering::Relaxed);
            dd_obs::counter_add("serve_shed_total", 1);
        }
        _ => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    let _ = req.resp.send(Err(err));
}

fn batcher_loop(
    rx: &Receiver<Request>,
    registry: &ModelRegistry,
    policy: BatchPolicy,
    job_tx: &Sender<Job>,
    stats: &StatsInner,
) {
    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut draining = false;
    loop {
        // Opportunistically move everything already queued into the local
        // pending buffer so `plan` sees the true backlog.
        loop {
            match rx.try_recv() {
                Ok(r) => pending.push_back(r),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    draining = true;
                    break;
                }
            }
        }
        let now = dd_obs::monotonic_seconds();
        dd_obs::gauge_set("serve_queue_depth", (rx.len() + pending.len()) as f64);

        // Shed from the front: FIFO order plus a uniform deadline means the
        // oldest request expires first.
        while let Some(front) = pending.front() {
            if !expired(&policy, now, front.enqueue_s) {
                break;
            }
            if let Some(req) = pending.pop_front() {
                let waited_s = now - req.enqueue_s;
                respond(
                    stats,
                    req,
                    ServeError::DeadlineExceeded { waited_s, deadline_s: policy.deadline_s },
                );
            }
        }

        let oldest = pending.front().map(|r| r.enqueue_s).unwrap_or(now);
        match plan(&policy, now, oldest, pending.len(), draining) {
            BatchDecision::Idle => {
                if draining {
                    break;
                }
                match rx.recv() {
                    Ok(r) => pending.push_back(r),
                    Err(_) => draining = true,
                }
            }
            BatchDecision::WaitFor(s) => match rx.recv_timeout(Duration::from_secs_f64(s.max(0.0)))
            {
                Ok(r) => pending.push_back(r),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => draining = true,
            },
            BatchDecision::Dispatch(n) => {
                dispatch_prefix(&mut pending, n, now, registry, &policy, job_tx, stats);
            }
        }
    }
}

/// Pop the longest same-model prefix (at most `n` requests), resolve its
/// snapshot, and hand it to the worker pool as one batch.
fn dispatch_prefix(
    pending: &mut VecDeque<Request>,
    n: usize,
    now: f64,
    registry: &ModelRegistry,
    policy: &BatchPolicy,
    job_tx: &Sender<Job>,
    stats: &StatsInner,
) {
    let Some(front) = pending.front() else {
        return;
    };
    let name = front.model.clone();
    let mut batch: Vec<Request> = Vec::with_capacity(n);
    while batch.len() < n {
        match pending.front() {
            Some(r) if r.model == name => {
                if let Some(r) = pending.pop_front() {
                    batch.push(r);
                }
            }
            _ => break,
        }
    }
    let snapshot = match registry.get(&name) {
        Ok(s) => s,
        Err(e) => {
            // Model removed between admission and dispatch: fail the batch.
            for req in batch {
                respond(stats, req, e.clone());
            }
            return;
        }
    };
    let width = snapshot.input_dim();
    let mut flat = Vec::with_capacity(batch.len() * width);
    let mut meta = Vec::with_capacity(batch.len());
    for req in batch {
        dd_obs::hist_record("serve_queue_wait_seconds", now - req.enqueue_s);
        flat.extend_from_slice(&req.features);
        meta.push((req.enqueue_s, req.resp));
    }
    let rows = Matrix::from_vec(meta.len(), width, flat);
    let job = Job { snapshot, rows, meta };
    if let Err(send_err) = job_tx.send(job) {
        // All workers are gone — a panic upstream. Fail the batch loudly
        // rather than dropping it silently.
        let job = send_err.into_inner();
        for (_, resp) in job.meta {
            stats.failed.fetch_add(1, Ordering::Relaxed);
            let _ = resp.send(Err(ServeError::WorkerLost));
        }
    }
}

fn worker_loop(job_rx: &Receiver<Job>, stats: &StatsInner) {
    for job in job_rx.iter() {
        let y = dispatch_batch(&job.snapshot, &job.rows);
        let done = dd_obs::monotonic_seconds();
        for (i, (enqueue_s, resp)) in job.meta.into_iter().enumerate() {
            dd_obs::hist_record("serve_e2e_seconds", done - enqueue_s);
            stats.completed.fetch_add(1, Ordering::Relaxed);
            let _ = resp.send(Ok(y.row(i).to_vec()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::{Activation, ModelSpec};
    use dd_tensor::Precision;

    fn registry_with(name: &str, width: usize, seed: u64) -> Arc<ModelRegistry> {
        let reg = Arc::new(ModelRegistry::new());
        let spec = ModelSpec::mlp(width, &[8], 2, Activation::Relu);
        let model = spec.build(seed, Precision::F32).expect("valid spec");
        reg.install(name, spec, model);
        reg
    }

    #[test]
    fn single_request_round_trip() {
        let reg = registry_with("m", 4, 1);
        let expected = {
            let snap = reg.get("m").expect("installed");
            snap.predict(&Matrix::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.4]))
        };
        let server = Server::start(Arc::clone(&reg), ServeConfig::default());
        let handle = server.submit("m", vec![0.1, -0.2, 0.3, 0.4]).expect("admitted");
        let out = handle.wait().expect("answered");
        assert_eq!(out, expected.row(0).to_vec());
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn submit_validates_before_admission() {
        let reg = registry_with("m", 4, 2);
        let server = Server::start(reg, ServeConfig::default());
        assert!(matches!(server.submit("m", vec![]), Err(ServeError::EmptyRequest)));
        assert!(matches!(server.submit("nope", vec![0.0; 4]), Err(ServeError::UnknownModel(_))));
        assert!(matches!(
            server.submit("m", vec![0.0; 3]),
            Err(ServeError::ShapeMismatch { expected: 4, got: 3 })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn shutdown_answers_every_admitted_request() {
        let reg = registry_with("m", 6, 3);
        let config =
            ServeConfig { queue_capacity: 64, workers: 2, policy: BatchPolicy::new(8, 0.005, 5.0) };
        let server = Server::start(reg, config);
        let handles: Vec<_> =
            (0..40).filter_map(|i| server.submit("m", vec![i as f32 * 0.01; 6]).ok()).collect();
        let admitted = handles.len() as u64;
        let stats = server.shutdown();
        let mut answered = 0u64;
        for h in handles {
            assert!(h.wait().is_ok(), "drained request must succeed");
            answered += 1;
        }
        assert_eq!(answered, admitted);
        assert_eq!(stats.admitted, admitted);
        assert_eq!(stats.completed + stats.shed + stats.failed, admitted);
        assert_eq!(stats.shed, 0, "5s deadline must not shed in a drain test");
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let reg = registry_with("m", 4, 4);
        let mut server = Server::start(Arc::clone(&reg), ServeConfig::default());
        server.shutdown_inner();
        assert!(matches!(server.submit("m", vec![0.0; 4]), Err(ServeError::ShuttingDown)));
    }
}
