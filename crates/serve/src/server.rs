//! The threaded serving engine: admission queue → dynamic batcher → workers.
//!
//! Data flow and backpressure, stage by stage:
//!
//! 1. **Admission** ([`Server::submit`]): a bounded crossbeam channel is the
//!    request queue. `try_send` on a full queue fails the request with
//!    [`ServeError::Overloaded`] immediately — the queue never grows beyond
//!    `queue_capacity`, so overload degrades p99 into fast rejections
//!    instead of unbounded latency.
//! 2. **Batching**: a single batcher thread drives the pure
//!    [`crate::batcher::plan`] decision function on the dd-obs clock,
//!    coalescing up to `max_batch` requests or flushing partial batches
//!    after `max_wait`. Requests older than their deadline are shed with
//!    [`ServeError::DeadlineExceeded`] before ever reaching a model.
//! 3. **Workers**: a `bounded(workers)` job channel feeds the pool; when
//!    every worker is busy the batcher blocks on it, which in turn lets the
//!    admission queue fill and the overload policy engage.
//!
//! Every admitted request is answered exactly once — completion, shed, or a
//! typed failure — including during [`Server::shutdown`], which drains the
//! queue before joining the pool.

use crate::batcher::{expired, plan, BatchDecision, BatchPolicy};
use crate::dispatch::dispatch_batch;
use crate::error::ServeError;
use crate::registry::{ModelRegistry, ModelSnapshot};
use crate::replica::{FaultPlan, FaultSpec, Injected, ReplicaSetState, VersionGuard};
use crate::resil::{Action, AttemptOutcome, GiveUpReason, ResilPolicy, ResilientCall};
use crate::sched::{
    plan_fair, AutoscalePolicy, Autoscaler, DrrScheduler, QueueView, ScaleDecision, SchedDecision,
};
use crate::telemetry::{ServeTelemetry, TelemetryConfig, TelemetryReport};
use crate::tenant::{PriorityClass, TenantDirectory, TenantId};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use dd_tensor::{Matrix, Rng64};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Ceiling on any real sleep the resilience engine performs (injected
/// crash latency, straggler delay, retry backoff) so chaos tests stay
/// fast. The virtual-time twin ([`crate::sim::simulate_chaos`]) explores
/// the unbounded regimes instead.
const MAX_FAULT_SLEEP_S: f64 = 0.05;
/// Floor for the auto hedge delay resolved from the observed service p99.
const MIN_HEDGE_DELAY_S: f64 = 1e-4;

/// Replication and fault-tolerance knobs for the threaded server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilConfig {
    /// Logical replicas in the serving pool (`0` = one per worker thread).
    /// Replicas share model snapshots; their identity drives fault
    /// injection, health eviction and the per-replica circuit breakers.
    pub replicas: usize,
    /// Retry / hedge / breaker policy driven by the shared decision core.
    pub policy: ResilPolicy,
    /// Deterministic fault injection (all probabilities zero in production).
    pub faults: FaultSpec,
}

impl Default for ResilConfig {
    fn default() -> Self {
        ResilConfig { replicas: 0, policy: ResilPolicy::disabled(), faults: FaultSpec::none() }
    }
}

/// Server sizing and batching knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission-queue capacity: requests beyond this are rejected.
    pub queue_capacity: usize,
    /// Worker threads running batched inference.
    pub workers: usize,
    /// Dynamic batching policy.
    pub policy: BatchPolicy,
    /// Replication, retry/hedge and circuit-breaker policy.
    pub resil: ResilConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            workers: 2,
            policy: BatchPolicy::default(),
            resil: ResilConfig::default(),
        }
    }
}

/// Lifetime counters of one server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests shed for exceeding their deadline.
    pub shed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Admitted requests answered with a non-deadline error (model removed
    /// mid-flight, worker loss, retry budget exhausted, breakers open).
    pub failed: u64,
    /// Retry attempts issued after replica failures.
    pub retries: u64,
    /// Hedged re-dispatches after straggling attempts.
    pub hedges: u64,
    /// Requests answered by the previous registry snapshot because the
    /// current version's circuit breaker was open.
    pub degraded: u64,
}

#[derive(Default)]
struct StatsInner {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    degraded: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

type Response = Result<Vec<f32>, ServeError>;

struct Request {
    id: u64,
    model: String,
    features: Vec<f32>,
    enqueue_s: f64,
    /// Tenant id and class when admitted through [`Server::submit_as`].
    tenant: Option<(TenantId, PriorityClass)>,
    resp: Sender<Response>,
}

struct Job {
    snapshot: Arc<ModelSnapshot>,
    rows: Matrix,
    dispatched_s: f64,
    /// Tenant of every request in this batch (tenanted batches are
    /// single-tenant by construction).
    tenant: Option<(TenantId, PriorityClass)>,
    /// Deadline of the policy that dispatched this batch, for per-class
    /// deadline-violation accounting.
    deadline_s: f64,
    meta: Vec<(u64, f64, Sender<Response>)>,
}

/// The caller's side of one in-flight request.
pub struct ResponseHandle {
    rx: Receiver<Response>,
}

impl ResponseHandle {
    /// Block until the request is answered. Every admitted request is
    /// answered exactly once; a closed channel without an answer means a
    /// worker died and surfaces as [`ServeError::WorkerLost`].
    pub fn wait(self) -> Response {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::WorkerLost),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }
}

/// Lifetime counters of one tenant on a tenanted server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantServerStats {
    /// Requests accepted within the tenant's quota.
    pub admitted: u64,
    /// Requests rejected by the tenant's quota.
    pub rejected: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests shed for exceeding their deadline.
    pub shed: u64,
    /// Admitted requests answered with a non-deadline error.
    pub failed: u64,
}

#[derive(Default)]
struct TenantCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
}

impl TenantCounters {
    fn snapshot(&self) -> TenantServerStats {
        TenantServerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

/// Multi-tenant admission state shared between the submit path, the
/// weighted-fair batcher, and the workers: the validated directory, one
/// live queue-depth counter per tenant (the quota gate), and per-tenant
/// lifetime counters.
struct TenancyState {
    directory: TenantDirectory,
    depths: Vec<AtomicUsize>,
    counters: Vec<TenantCounters>,
}

impl TenancyState {
    fn new(directory: TenantDirectory) -> TenancyState {
        let n = directory.len();
        TenancyState {
            directory,
            depths: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            counters: (0..n).map(|_| TenantCounters::default()).collect(),
        }
    }

    /// One request left the system (answered or shed): release its quota
    /// slot and bump the matching lifetime counter.
    fn settle(&self, t: TenantId, outcome: &Result<(), &ServeError>) {
        self.depths[t].fetch_sub(1, Ordering::Relaxed);
        let counter = match outcome {
            Ok(()) => &self.counters[t].completed,
            Err(ServeError::DeadlineExceeded { .. }) => &self.counters[t].shed,
            Err(_) => &self.counters[t].failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared resilience state: the replica set, the deterministic fault
/// injector, the per-version guard, and the backoff-jitter rng. Workers
/// lock only around the decision core's `next`/`observe` steps; inference
/// itself runs unlocked.
struct ResilShared {
    policy: ResilPolicy,
    set: Mutex<ReplicaSetState>,
    faults: Mutex<FaultPlan>,
    guard: Mutex<VersionGuard>,
    rng: Mutex<Rng64>,
    /// Streaming telemetry bundle (windows, SLO monitors, tail sampler,
    /// flight recorder). Observe-only: nothing in the serving path reads
    /// it back, so the lock is never held across inference.
    telemetry: Mutex<ServeTelemetry>,
    /// Monotonically increasing request ids (telemetry exemplars/traces).
    ids: AtomicU64,
    /// Multi-tenant state ([`Server::start_tenanted`] only).
    tenancy: Option<TenancyState>,
}

impl ResilShared {
    fn new(config: &ServeConfig, tenancy: Option<TenantDirectory>) -> ResilShared {
        let replicas =
            if config.resil.replicas == 0 { config.workers } else { config.resil.replicas };
        let policy = config.resil.policy;
        let faults = config.resil.faults;
        let telemetry =
            ServeTelemetry::new(replicas, TelemetryConfig::standard(config.policy.deadline_s));
        ResilShared {
            policy,
            set: Mutex::new(ReplicaSetState::new(replicas, policy.breaker, faults.respawn_s)),
            faults: Mutex::new(FaultPlan::new(faults, replicas)),
            guard: Mutex::new(VersionGuard::new(policy.breaker)),
            rng: Mutex::new(Rng64::new(faults.seed).split(u64::from(u32::MAX) - 1)),
            telemetry: Mutex::new(telemetry),
            ids: AtomicU64::new(0),
            tenancy: tenancy.map(TenancyState::new),
        }
    }
}

/// A running in-process inference server.
pub struct Server {
    registry: Arc<ModelRegistry>,
    tx: Option<Sender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
    stats: Arc<StatsInner>,
    resil: Arc<ResilShared>,
}

impl Server {
    /// Spawn the batcher thread and worker pool and start serving.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Server {
        assert!(config.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(config.workers >= 1, "workers must be >= 1");
        let stats = Arc::new(StatsInner::default());
        let resil = Arc::new(ResilShared::new(&config, None));
        let (tx, rx) = bounded::<Request>(config.queue_capacity);
        let (job_tx, job_rx) = bounded::<Job>(config.workers);

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let job_rx = job_rx.clone();
            let stats = Arc::clone(&stats);
            let resil = Arc::clone(&resil);
            workers.push(std::thread::spawn(move || worker_loop(&job_rx, &stats, &resil)));
        }
        drop(job_rx);

        let batcher = {
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let resil = Arc::clone(&resil);
            let policy = config.policy;
            std::thread::spawn(move || {
                batcher_loop(&rx, &registry, policy, &job_tx, &stats, &resil)
            })
        };

        Server {
            registry,
            tx: Some(tx),
            batcher: Some(batcher),
            workers,
            capacity: config.queue_capacity,
            stats,
            resil,
        }
    }

    /// Spawn a multi-tenant server: per-tenant quota admission, strict
    /// priority between classes with DRR weighted fairness within a class
    /// ([`crate::sched::plan_fair`] — the same decision core the
    /// virtual-time twin drives), and a queue-depth autoscaler moving the
    /// active-replica count inside `scale`'s band. The replica pool is
    /// provisioned at `scale.max_replicas`; `config.resil.replicas` is
    /// ignored. Submit with [`Server::submit_as`]; each tenant's requests
    /// route to its directory-configured model.
    pub fn start_tenanted(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        directory: TenantDirectory,
        scale: AutoscalePolicy,
    ) -> Server {
        assert!(config.workers >= 1, "workers must be >= 1");
        let mut config = config;
        config.resil.replicas = scale.max_replicas;
        let capacity: usize = directory.specs().iter().map(|s| s.queue_capacity).sum();
        let stats = Arc::new(StatsInner::default());
        let resil = Arc::new(ResilShared::new(&config, Some(directory)));
        resil.set.lock().set_active(scale.min_replicas);
        let (tx, rx) = bounded::<Request>(capacity.max(1));
        let (job_tx, job_rx) = bounded::<Job>(config.workers);

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let job_rx = job_rx.clone();
            let stats = Arc::clone(&stats);
            let resil = Arc::clone(&resil);
            workers.push(std::thread::spawn(move || worker_loop(&job_rx, &stats, &resil)));
        }
        drop(job_rx);

        let batcher = {
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let resil = Arc::clone(&resil);
            let policy = config.policy;
            std::thread::spawn(move || {
                tenant_batcher_loop(&rx, &registry, policy, scale, &job_tx, &stats, &resil)
            })
        };

        Server {
            registry,
            tx: Some(tx),
            batcher: Some(batcher),
            workers,
            capacity: capacity.max(1),
            stats,
            resil,
        }
    }

    /// The registry this server resolves model names against. Installing a
    /// new version there hot-swaps it for all subsequently dispatched
    /// batches; in-flight batches finish on the snapshot they started with.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Submit one request. Returns a handle immediately, or a typed error
    /// when the request is malformed, the model is unknown, or admission
    /// control rejects it ([`ServeError::Overloaded`]).
    pub fn submit(&self, model: &str, features: Vec<f32>) -> Result<ResponseHandle, ServeError> {
        if features.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        let snap = self.registry.get(model)?;
        if features.len() != snap.input_dim() {
            return Err(ServeError::ShapeMismatch {
                expected: snap.input_dim(),
                got: features.len(),
            });
        }
        let Some(tx) = self.tx.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        let (resp_tx, resp_rx) = bounded::<Response>(1);
        let enqueue_s = dd_obs::monotonic_seconds();
        let req = Request {
            id: self.resil.ids.fetch_add(1, Ordering::Relaxed),
            model: model.to_string(),
            features,
            enqueue_s,
            tenant: None,
            resp: resp_tx,
        };
        match tx.try_send(req) {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                dd_obs::gauge_set("serve_queue_depth", tx.len() as f64);
                self.resil.telemetry.lock().on_enqueue(enqueue_s, tx.len());
                Ok(ResponseHandle { rx: resp_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                dd_obs::counter_add("serve_rejected_total", 1);
                self.resil.telemetry.lock().on_reject(enqueue_s);
                Err(ServeError::Overloaded { depth: tx.len(), capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit one request as `tenant` (tenanted servers only). The request
    /// routes to the tenant's directory-configured model and is admitted
    /// against the tenant's own queue quota, so one tenant's burst can
    /// never occupy another tenant's queue space.
    pub fn submit_as(
        &self,
        tenant: &str,
        features: Vec<f32>,
    ) -> Result<ResponseHandle, ServeError> {
        let Some(ts) = self.resil.tenancy.as_ref() else {
            return Err(ServeError::UnknownTenant(tenant.to_string()));
        };
        let t = ts.directory.resolve(tenant)?;
        let spec = ts.directory.spec(t);
        if features.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        let snap = self.registry.get(&spec.model)?;
        if features.len() != snap.input_dim() {
            return Err(ServeError::ShapeMismatch {
                expected: snap.input_dim(),
                got: features.len(),
            });
        }
        let Some(tx) = self.tx.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        admit_request(tx, t, features, &self.stats, &self.resil)
    }

    /// Per-tenant lifetime counters, in directory order with tenant names
    /// (tenanted servers only; empty otherwise).
    pub fn tenant_stats(&self) -> Vec<(String, TenantServerStats)> {
        let Some(ts) = self.resil.tenancy.as_ref() else {
            return Vec::new();
        };
        ts.directory
            .specs()
            .iter()
            .zip(&ts.counters)
            .map(|(spec, c)| (spec.name.clone(), c.snapshot()))
            .collect()
    }

    /// Replicas the autoscaler currently keeps in rotation.
    pub fn active_replicas(&self) -> usize {
        self.resil.set.lock().active()
    }

    /// Summarize the server's streaming telemetry — sliding-window latency,
    /// burn-rate alert edges, tail-sampled traces and flight-recorder state
    /// — at the current clock reading.
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.resil.telemetry.lock().report(dd_obs::monotonic_seconds())
    }

    /// Current lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stop admitting, drain every queued request (answering each exactly
    /// once), join the batcher and the pool, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_inner();
        self.stats.snapshot()
    }

    fn shutdown_inner(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn respond(stats: &StatsInner, resil: &ResilShared, now: f64, req: Request, err: ServeError) {
    if let (Some((t, class)), Some(ts)) = (req.tenant, resil.tenancy.as_ref()) {
        ts.settle(t, &Err(&err));
        let mut telemetry = resil.telemetry.lock();
        if matches!(err, ServeError::DeadlineExceeded { .. }) {
            telemetry.on_shed_class(now, class);
        }
    }
    match err {
        ServeError::DeadlineExceeded { .. } => {
            stats.shed.fetch_add(1, Ordering::Relaxed);
            dd_obs::counter_add("serve_shed_total", 1);
            resil.telemetry.lock().on_shed(now, req.id, req.enqueue_s);
        }
        _ => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
            resil.telemetry.lock().on_failure(now, req.id, req.enqueue_s);
        }
    }
    let _ = req.resp.send(Err(err));
}

/// Admission entry point of the tenanted server: take a quota slot (a
/// lock-free reserve-then-check on the tenant's live depth counter),
/// enqueue, and record the outcome in the windowed telemetry.
fn admit_request(
    tx: &Sender<Request>,
    t: TenantId,
    features: Vec<f32>,
    stats: &StatsInner,
    resil: &ResilShared,
) -> Result<ResponseHandle, ServeError> {
    let Some(ts) = resil.tenancy.as_ref() else {
        return Err(ServeError::ShuttingDown);
    };
    let spec = ts.directory.spec(t);
    let prev = ts.depths[t].fetch_add(1, Ordering::Relaxed);
    if prev >= spec.queue_capacity {
        ts.depths[t].fetch_sub(1, Ordering::Relaxed);
        ts.counters[t].rejected.fetch_add(1, Ordering::Relaxed);
        stats.rejected.fetch_add(1, Ordering::Relaxed);
        dd_obs::counter_add("serve_rejected_total", 1);
        let now = dd_obs::monotonic_seconds();
        let mut telemetry = resil.telemetry.lock();
        telemetry.on_reject(now);
        telemetry.on_reject_class(now, spec.class);
        return Err(ServeError::QuotaExceeded {
            tenant: spec.name.clone(),
            depth: prev,
            capacity: spec.queue_capacity,
        });
    }
    let (resp_tx, resp_rx) = bounded::<Response>(1);
    let enqueue_s = dd_obs::monotonic_seconds();
    let req = Request {
        id: resil.ids.fetch_add(1, Ordering::Relaxed),
        model: spec.model.clone(),
        features,
        enqueue_s,
        tenant: Some((t, spec.class)),
        resp: resp_tx,
    };
    match tx.try_send(req) {
        Ok(()) => {
            ts.counters[t].admitted.fetch_add(1, Ordering::Relaxed);
            stats.admitted.fetch_add(1, Ordering::Relaxed);
            dd_obs::gauge_set("serve_queue_depth", tx.len() as f64);
            resil.telemetry.lock().on_enqueue(enqueue_s, tx.len());
            Ok(ResponseHandle { rx: resp_rx })
        }
        // The channel is sized to the sum of all quotas, so Full here
        // means quota accounting drifted; surface it as overload.
        Err(TrySendError::Full(_)) => {
            ts.depths[t].fetch_sub(1, Ordering::Relaxed);
            ts.counters[t].rejected.fetch_add(1, Ordering::Relaxed);
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            resil.telemetry.lock().on_reject(enqueue_s);
            Err(ServeError::Overloaded { depth: tx.len(), capacity: tx.len() })
        }
        Err(TrySendError::Disconnected(_)) => {
            ts.depths[t].fetch_sub(1, Ordering::Relaxed);
            Err(ServeError::ShuttingDown)
        }
    }
}

/// Scaling entry point of the tenanted server: consult the pure
/// [`Autoscaler`] with the observed backlog and move the replica set's
/// active count, recording the action in the windowed telemetry.
fn scale_replicas(scaler: &mut Autoscaler, now: f64, depth: usize, resil: &ResilShared) {
    let mut set = resil.set.lock();
    let active = set.active();
    let next = match scaler.decide(now, depth, active) {
        ScaleDecision::Grow => active + 1,
        ScaleDecision::Shrink => active - 1,
        ScaleDecision::Hold => return,
    };
    set.set_active(next);
    drop(set);
    dd_obs::gauge_set("serve_active_replicas", next as f64);
    resil.telemetry.lock().on_scale(now, next > active, next);
}

fn batcher_loop(
    rx: &Receiver<Request>,
    registry: &ModelRegistry,
    policy: BatchPolicy,
    job_tx: &Sender<Job>,
    stats: &StatsInner,
    resil: &ResilShared,
) {
    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut draining = false;
    loop {
        // Opportunistically move everything already queued into the local
        // pending buffer so `plan` sees the true backlog.
        loop {
            match rx.try_recv() {
                Ok(r) => pending.push_back(r),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    draining = true;
                    break;
                }
            }
        }
        let now = dd_obs::monotonic_seconds();
        dd_obs::gauge_set("serve_queue_depth", (rx.len() + pending.len()) as f64);

        // Shed from the front: FIFO order plus a uniform deadline means the
        // oldest request expires first.
        while let Some(front) = pending.front() {
            if !expired(&policy, now, front.enqueue_s) {
                break;
            }
            if let Some(req) = pending.pop_front() {
                let waited_s = now - req.enqueue_s;
                respond(
                    stats,
                    resil,
                    now,
                    req,
                    ServeError::DeadlineExceeded { waited_s, deadline_s: policy.deadline_s },
                );
            }
        }

        let oldest = pending.front().map(|r| r.enqueue_s).unwrap_or(now);
        match plan(&policy, now, oldest, pending.len(), draining) {
            BatchDecision::Idle => {
                if draining {
                    break;
                }
                match rx.recv() {
                    Ok(r) => pending.push_back(r),
                    Err(_) => draining = true,
                }
            }
            BatchDecision::WaitFor(s) => match rx.recv_timeout(Duration::from_secs_f64(s.max(0.0)))
            {
                Ok(r) => pending.push_back(r),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => draining = true,
            },
            BatchDecision::Dispatch(n) => {
                dispatch_prefix(&mut pending, n, now, registry, &policy, job_tx, stats, resil);
            }
        }
    }
}

/// The tenanted batcher: per-tenant pending queues, strict-priority +
/// DRR weighted-fair arbitration via the shared decision core
/// ([`crate::sched::plan_fair`]), per-tenant front-shedding, and the
/// queue-depth autoscaler — the threaded twin of the fair path in
/// [`crate::sim::simulate_tenants`].
fn tenant_batcher_loop(
    rx: &Receiver<Request>,
    registry: &ModelRegistry,
    policy: BatchPolicy,
    scale: AutoscalePolicy,
    job_tx: &Sender<Job>,
    stats: &StatsInner,
    resil: &ResilShared,
) {
    let Some(ts) = resil.tenancy.as_ref() else {
        return;
    };
    let nt = ts.directory.len();
    let mut pending: Vec<VecDeque<Request>> = (0..nt).map(|_| VecDeque::new()).collect();
    let mut sched = DrrScheduler::new(&ts.directory);
    let mut scaler = Autoscaler::new(scale);
    let push = |pending: &mut Vec<VecDeque<Request>>, r: Request| {
        let t = r.tenant.map_or(0, |(t, _)| t);
        pending[t].push_back(r);
    };
    let mut draining = false;
    loop {
        loop {
            match rx.try_recv() {
                Ok(r) => push(&mut pending, r),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    draining = true;
                    break;
                }
            }
        }
        let now = dd_obs::monotonic_seconds();
        let depth = rx.len() + pending.iter().map(VecDeque::len).sum::<usize>();
        dd_obs::gauge_set("serve_queue_depth", depth as f64);

        // Shed from every tenant's front: per-tenant FIFO plus a uniform
        // deadline means each tenant's oldest request expires first.
        for q in &mut pending {
            while let Some(front) = q.front() {
                if !expired(&policy, now, front.enqueue_s) {
                    break;
                }
                if let Some(req) = q.pop_front() {
                    let waited_s = now - req.enqueue_s;
                    respond(
                        stats,
                        resil,
                        now,
                        req,
                        ServeError::DeadlineExceeded { waited_s, deadline_s: policy.deadline_s },
                    );
                }
            }
        }

        scale_replicas(&mut scaler, now, depth, resil);

        let views: Vec<QueueView> = pending
            .iter()
            .map(|q| match q.front() {
                Some(r) => QueueView { pending: q.len(), oldest_s: r.enqueue_s },
                None => QueueView::empty(),
            })
            .collect();
        match plan_fair(&policy, &mut sched, now, &views, draining) {
            SchedDecision::Idle => {
                if draining {
                    break;
                }
                match rx.recv() {
                    Ok(r) => push(&mut pending, r),
                    Err(_) => draining = true,
                }
            }
            SchedDecision::WaitFor(s) => {
                match rx.recv_timeout(Duration::from_secs_f64(s.max(0.0))) {
                    Ok(r) => push(&mut pending, r),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => draining = true,
                }
            }
            SchedDecision::Dispatch { tenant, n } => {
                let before = pending[tenant].len();
                dispatch_prefix(
                    &mut pending[tenant],
                    n,
                    now,
                    registry,
                    &policy,
                    job_tx,
                    stats,
                    resil,
                );
                let taken = before - pending[tenant].len();
                sched.charge(tenant, taken);
            }
        }
    }
}

/// Pop the longest same-model prefix (at most `n` requests), resolve its
/// snapshot — falling back to the previous registry snapshot in degraded
/// mode when the current version's circuit breaker is open — and hand it
/// to the worker pool as one batch.
#[allow(clippy::too_many_arguments)]
fn dispatch_prefix(
    pending: &mut VecDeque<Request>,
    n: usize,
    now: f64,
    registry: &ModelRegistry,
    policy: &BatchPolicy,
    job_tx: &Sender<Job>,
    stats: &StatsInner,
    resil: &ResilShared,
) {
    let Some(front) = pending.front() else {
        return;
    };
    let name = front.model.clone();
    let tenant = front.tenant;
    let mut batch: Vec<Request> = Vec::with_capacity(n);
    while batch.len() < n {
        match pending.front() {
            Some(r) if r.model == name => {
                if let Some(r) = pending.pop_front() {
                    batch.push(r);
                }
            }
            _ => break,
        }
    }
    let snapshot = match registry.get(&name) {
        Ok(s) => s,
        Err(e) => {
            // Model removed between admission and dispatch: fail the batch.
            for req in batch {
                respond(stats, resil, now, req, e.clone());
            }
            return;
        }
    };
    // Degraded-mode routing: when the current version's breaker is open,
    // serve from the pre-swap snapshot (same input width, breaker not
    // open) rather than failing; with neither version available, fail the
    // batch fast with a typed error.
    let guard_now = dd_obs::monotonic_seconds();
    let snapshot = {
        let mut guard = resil.guard.lock();
        if guard.allow(snapshot.version(), guard_now) {
            snapshot
        } else {
            let fallback = registry
                .previous(&name)
                .filter(|prev| prev.input_dim() == snapshot.input_dim())
                .filter(|prev| guard.allow(prev.version(), guard_now));
            match fallback {
                Some(prev) => {
                    drop(guard);
                    stats.degraded.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    dd_obs::counter_add("serve_degraded_total", batch.len() as u64);
                    prev
                }
                None => {
                    let version = snapshot.version();
                    drop(guard);
                    for req in batch {
                        respond(stats, resil, guard_now, req, ServeError::CircuitOpen { version });
                    }
                    return;
                }
            }
        }
    };
    let width = snapshot.input_dim();
    let mut flat = Vec::with_capacity(batch.len() * width);
    let mut meta = Vec::with_capacity(batch.len());
    for req in batch {
        dd_obs::hist_record("serve_queue_wait_seconds", now - req.enqueue_s);
        flat.extend_from_slice(&req.features);
        meta.push((req.id, req.enqueue_s, req.resp));
    }
    let rows = Matrix::from_vec(meta.len(), width, flat);
    let job =
        Job { snapshot, rows, dispatched_s: now, tenant, deadline_s: policy.deadline_s, meta };
    if let Err(send_err) = job_tx.send(job) {
        // All workers are gone — a panic upstream. Fail the batch loudly
        // rather than dropping it silently.
        let job = send_err.into_inner();
        let lost_at = dd_obs::monotonic_seconds();
        {
            let mut telemetry = resil.telemetry.lock();
            for (id, enqueue_s, _resp) in &job.meta {
                stats.failed.fetch_add(1, Ordering::Relaxed);
                telemetry.on_failure(lost_at, *id, *enqueue_s);
                if let (Some((t, _)), Some(ts)) = (job.tenant, resil.tenancy.as_ref()) {
                    ts.settle(t, &Err(&ServeError::WorkerLost));
                }
            }
        }
        // Respond only after the telemetry guard is dropped: the respond
        // channel is bounded, so a send must never sit inside a critical
        // section (concurrency/blocking-under-lock).
        for (_id, _enqueue_s, resp) in job.meta {
            let _ = resp.send(Err(ServeError::WorkerLost));
        }
    }
}

fn worker_loop(job_rx: &Receiver<Job>, stats: &StatsInner, resil: &ResilShared) {
    for job in job_rx.iter() {
        serve_job(job, stats, resil);
    }
}

/// Real (bounded) sleep standing in for injected crash latency, straggler
/// delay, or retry backoff.
fn sleep_bounded(seconds: f64) {
    let s = seconds.clamp(0.0, MAX_FAULT_SLEEP_S);
    if s > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(s));
    }
}

/// Whether every output value is finite — the live corruption check.
fn all_finite(y: &Matrix) -> bool {
    y.as_slice().iter().all(|v| v.is_finite())
}

/// Drive one batch through the shared resilience decision core
/// ([`ResilientCall`]). Attempts run on this worker thread, so a "hedge"
/// here is sequential failover after the wait cap (the virtual-time twin
/// overlaps attempts instead); faults are injected between the core's
/// `Try` decision and the model call, and the terminal state maps to
/// exactly one answer per request.
fn serve_job(job: Job, stats: &StatsInner, resil: &ResilShared) {
    let observed_p99 = dd_obs::hist_summary("serve_service_seconds").map(|h| h.p99);
    let policy =
        resil.policy.with_hedge(resil.policy.hedge.resolved(observed_p99, MIN_HEDGE_DELAY_S));
    let version = job.snapshot.version();
    let mut call = ResilientCall::new(policy);
    let mut answer: Option<Matrix> = None;
    let verdict = loop {
        let now = dd_obs::monotonic_seconds();
        let action = call.next(&mut resil.set.lock(), now);
        match action {
            Action::Wait { seconds } => sleep_bounded(seconds),
            Action::Try { replica, wait_cap_s } => {
                let started = dd_obs::monotonic_seconds();
                let est = observed_p99.unwrap_or(MIN_HEDGE_DELAY_S);
                let injected = resil.faults.lock().inject(replica, started, est);
                let outcome = match injected {
                    Injected::Crash { after_s } => {
                        sleep_bounded(after_s);
                        AttemptOutcome::Crashed { elapsed_s: dd_obs::monotonic_seconds() - started }
                    }
                    Injected::Corrupt => {
                        // The model still runs — the time is really spent —
                        // but its output is poisoned.
                        let _ = dispatch_batch(&job.snapshot, &job.rows);
                        AttemptOutcome::Corrupt { elapsed_s: dd_obs::monotonic_seconds() - started }
                    }
                    Injected::Straggle { delay_s } => {
                        sleep_bounded(delay_s);
                        let y = dispatch_batch(&job.snapshot, &job.rows);
                        let elapsed = dd_obs::monotonic_seconds() - started;
                        if elapsed > wait_cap_s {
                            AttemptOutcome::TimedOut { elapsed_s: elapsed }
                        } else {
                            answer = Some(y);
                            AttemptOutcome::Done { elapsed_s: elapsed }
                        }
                    }
                    Injected::None => {
                        let y = dispatch_batch(&job.snapshot, &job.rows);
                        let elapsed = dd_obs::monotonic_seconds() - started;
                        if all_finite(&y) {
                            answer = Some(y);
                            AttemptOutcome::Done { elapsed_s: elapsed }
                        } else {
                            // Genuine (non-injected) corruption, e.g. a
                            // hot-swapped snapshot with broken weights.
                            AttemptOutcome::Corrupt { elapsed_s: elapsed }
                        }
                    }
                };
                let after = dd_obs::monotonic_seconds();
                let before_counts = {
                    let set = resil.set.lock();
                    (set.evictions(), set.breaker_opens())
                };
                call.observe(&mut resil.set.lock(), replica, outcome, after, &mut resil.rng.lock());
                let after_counts = {
                    let set = resil.set.lock();
                    (set.evictions(), set.breaker_opens())
                };
                {
                    let mut telemetry = resil.telemetry.lock();
                    telemetry.on_dispatch(started, replica, job.meta.len());
                    telemetry.on_outcome(after, replica, &outcome);
                    if after_counts.0 > before_counts.0 {
                        telemetry.on_eviction(after, replica);
                    }
                    if after_counts.1 > before_counts.1 {
                        telemetry.on_breaker_open(after, replica);
                    }
                }
                match outcome {
                    AttemptOutcome::Done { .. } => {
                        resil.guard.lock().record_success(version, after);
                    }
                    AttemptOutcome::Corrupt { .. } => {
                        resil.guard.lock().record_failure(version, after);
                    }
                    _ => {}
                }
            }
            Action::Finish { .. } => break Ok(()),
            Action::GiveUp { reason } => break Err(reason),
        }
    };
    stats.retries.fetch_add(u64::from(call.retries()), Ordering::Relaxed);
    stats.hedges.fetch_add(u64::from(call.hedges()), Ordering::Relaxed);
    dd_obs::counter_add("serve_retries_total", u64::from(call.retries()));
    dd_obs::counter_add("serve_hedges_total", u64::from(call.hedges()));
    {
        let now = dd_obs::monotonic_seconds();
        dd_obs::gauge_set("serve_breaker_open", resil.set.lock().open_breakers(now) as f64);
    }
    match (verdict, answer) {
        (Ok(()), Some(y)) => {
            let done = dd_obs::monotonic_seconds();
            {
                let mut telemetry = resil.telemetry.lock();
                for (id, enqueue_s, _resp) in &job.meta {
                    dd_obs::hist_record("serve_e2e_seconds", done - *enqueue_s);
                    telemetry.on_complete(done, *id, *enqueue_s, job.dispatched_s - *enqueue_s);
                    stats.completed.fetch_add(1, Ordering::Relaxed);
                    if let (Some((t, class)), Some(ts)) = (job.tenant, resil.tenancy.as_ref()) {
                        ts.settle(t, &Ok(()));
                        telemetry.on_complete_class(done, class, done - *enqueue_s, job.deadline_s);
                    }
                }
            }
            // Respond only after the telemetry guard is dropped: the
            // respond channel is bounded, so a send must never sit inside
            // a critical section (concurrency/blocking-under-lock).
            for (i, (_id, _enqueue_s, resp)) in job.meta.into_iter().enumerate() {
                let _ = resp.send(Ok(y.row(i).to_vec()));
            }
        }
        (verdict, _) => {
            let err = match verdict {
                Err(GiveUpReason::Exhausted { last_replica, attempts }) => {
                    ServeError::ReplicaFailed { replica: last_replica, attempts }
                }
                // Every replica was down or breaker-open.
                Err(GiveUpReason::NoReplica) => ServeError::CircuitOpen { version },
                // Finish without a stored answer cannot happen (`Done`
                // always stores one); answer as a lost worker rather than
                // panicking in a pool thread.
                Ok(()) => ServeError::WorkerLost,
            };
            let failed_at = dd_obs::monotonic_seconds();
            {
                let mut telemetry = resil.telemetry.lock();
                for (id, enqueue_s, _resp) in &job.meta {
                    stats.failed.fetch_add(1, Ordering::Relaxed);
                    telemetry.on_failure(failed_at, *id, *enqueue_s);
                    if let (Some((t, _)), Some(ts)) = (job.tenant, resil.tenancy.as_ref()) {
                        ts.settle(t, &Err(&err));
                    }
                }
            }
            // Same deal: the guard must be gone before the bounded sends.
            for (_id, _enqueue_s, resp) in job.meta {
                let _ = resp.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::{Activation, ModelSpec};
    use dd_tensor::Precision;

    fn registry_with(name: &str, width: usize, seed: u64) -> Arc<ModelRegistry> {
        let reg = Arc::new(ModelRegistry::new());
        let spec = ModelSpec::mlp(width, &[8], 2, Activation::Relu);
        let model = spec.build(seed, Precision::F32).expect("valid spec");
        reg.install(name, spec, model);
        reg
    }

    #[test]
    fn single_request_round_trip() {
        let reg = registry_with("m", 4, 1);
        let expected = {
            let snap = reg.get("m").expect("installed");
            snap.predict(&Matrix::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.4]))
        };
        let server = Server::start(Arc::clone(&reg), ServeConfig::default());
        let handle = server.submit("m", vec![0.1, -0.2, 0.3, 0.4]).expect("admitted");
        let out = handle.wait().expect("answered");
        assert_eq!(out, expected.row(0).to_vec());
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn submit_validates_before_admission() {
        let reg = registry_with("m", 4, 2);
        let server = Server::start(reg, ServeConfig::default());
        assert!(matches!(server.submit("m", vec![]), Err(ServeError::EmptyRequest)));
        assert!(matches!(server.submit("nope", vec![0.0; 4]), Err(ServeError::UnknownModel(_))));
        assert!(matches!(
            server.submit("m", vec![0.0; 3]),
            Err(ServeError::ShapeMismatch { expected: 4, got: 3 })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn shutdown_answers_every_admitted_request() {
        let reg = registry_with("m", 6, 3);
        let config = ServeConfig {
            queue_capacity: 64,
            workers: 2,
            policy: BatchPolicy::new(8, 0.005, 5.0),
            ..ServeConfig::default()
        };
        let server = Server::start(reg, config);
        let handles: Vec<_> =
            (0..40).filter_map(|i| server.submit("m", vec![i as f32 * 0.01; 6]).ok()).collect();
        let admitted = handles.len() as u64;
        let stats = server.shutdown();
        let mut answered = 0u64;
        for h in handles {
            assert!(h.wait().is_ok(), "drained request must succeed");
            answered += 1;
        }
        assert_eq!(answered, admitted);
        assert_eq!(stats.admitted, admitted);
        assert_eq!(stats.completed + stats.shed + stats.failed, admitted);
        assert_eq!(stats.shed, 0, "5s deadline must not shed in a drain test");
    }

    #[test]
    fn telemetry_report_tracks_request_outcomes() {
        let reg = registry_with("m", 4, 6);
        let server = Server::start(reg, ServeConfig::default());
        for i in 0..20 {
            let h = server.submit("m", vec![i as f32 * 0.01; 4]).expect("admitted");
            h.wait().expect("healthy round trip");
        }
        let tel = server.telemetry_report();
        assert_eq!(tel.enqueued, 20);
        assert_eq!(tel.completed, 20);
        assert_eq!((tel.failed, tel.shed, tel.rejected), (0, 0, 0));
        assert!(tel.e2e.count > 0, "completions must land in the live window");
        assert!(tel.alerts.is_empty(), "healthy round trips must not alert: {:?}", tel.alerts);
        assert!(tel.recorder_events >= 20, "every dispatch reaches the flight recorder");
        let stats = server.shutdown();
        assert_eq!(stats.completed, 20);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let reg = registry_with("m", 4, 4);
        let mut server = Server::start(Arc::clone(&reg), ServeConfig::default());
        server.shutdown_inner();
        assert!(matches!(server.submit("m", vec![0.0; 4]), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn injected_crashes_are_retried_on_other_replicas() {
        use crate::resil::{BreakerPolicy, HedgePolicy, RetryPolicy};
        let reg = registry_with("m", 4, 5);
        let config = ServeConfig {
            queue_capacity: 128,
            workers: 2,
            policy: BatchPolicy::new(4, 0.001, 5.0),
            resil: ResilConfig {
                replicas: 4,
                policy: ResilPolicy {
                    retry: RetryPolicy::new(8, 1e-4, 1e-3, 0.5),
                    hedge: HedgePolicy::disabled(),
                    breaker: BreakerPolicy::new(6, 0.02, 1),
                    health_eviction: true,
                },
                faults: FaultSpec {
                    crash_per_dispatch: 0.4,
                    respawn_s: 0.005,
                    seed: 41,
                    ..FaultSpec::none()
                },
            },
        };
        let server = Server::start(reg, config);
        let mut answered = 0usize;
        for i in 0..60 {
            let h = server.submit("m", vec![i as f32 * 0.01; 4]).expect("admitted");
            // Serial round trips: every batch runs the injection path.
            if h.wait().is_ok() {
                answered += 1;
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 60);
        assert_eq!(stats.completed + stats.failed + stats.shed, 60);
        // A 40% per-attempt crash rate with an 8-attempt budget: nearly
        // everything completes, and doing so takes retries.
        assert!(answered >= 52, "only {answered}/60 answered under 40% crash injection");
        assert!(stats.retries >= 1, "crash injection must consume retries");
    }

    #[test]
    fn broken_hot_swap_degrades_to_previous_snapshot() {
        use crate::resil::{BreakerPolicy, HedgePolicy, RetryPolicy};
        use dd_nn::{Activation, ModelSpec};
        let reg = Arc::new(ModelRegistry::new());
        let spec = ModelSpec::mlp(4, &[8], 2, Activation::Relu);
        let good = spec.build(7, Precision::F32).expect("valid spec");
        reg.install("m", spec.clone(), good);
        // Hot-swap in a poisoned build: every weight NaN, so real (not
        // injected) corruption surfaces through the finiteness check.
        let mut bad = spec.build(8, Precision::F32).expect("valid spec");
        for layer in bad.layers_mut() {
            layer.visit_params(&mut |p, _| p.as_mut_slice().fill(f32::NAN));
        }
        reg.install("m", spec.clone(), bad);

        let config = ServeConfig {
            queue_capacity: 16,
            workers: 1,
            policy: BatchPolicy::new(1, 0.0, 5.0),
            resil: ResilConfig {
                replicas: 2,
                policy: ResilPolicy {
                    retry: RetryPolicy::new(2, 1e-4, 1e-3, 0.5),
                    hedge: HedgePolicy::disabled(),
                    breaker: BreakerPolicy::new(2, 0.01, 1),
                    health_eviction: true,
                },
                faults: FaultSpec::none(),
            },
        };
        let server = Server::start(Arc::clone(&reg), config);
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            let h = server.submit("m", vec![0.5; 4]).expect("admitted");
            outcomes.push(h.wait());
        }
        let stats = server.shutdown();
        // The first request exhausts its retries against NaN output...
        assert!(
            matches!(outcomes[0], Err(ServeError::ReplicaFailed { .. })),
            "first answer should exhaust retries, got {:?}",
            outcomes[0]
        );
        // ...which opens the poisoned version's breaker; later requests are
        // served (finite) by the pre-swap snapshot in degraded mode.
        let recovered =
            outcomes.iter().any(|o| matches!(o, Ok(y) if y.iter().all(|v| v.is_finite())));
        assert!(recovered, "degraded fallback must answer with the old snapshot: {outcomes:?}");
        assert!(stats.degraded >= 1, "degraded answers must be counted: {stats:?}");
    }
}
