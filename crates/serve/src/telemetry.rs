//! Streaming telemetry for the serving tier: one bundle both engines drive.
//!
//! [`ServeTelemetry`] owns the sliding latency windows, the queue-depth
//! gauge, the fast+slow burn-rate SLO monitors, the tail-based trace
//! sampler and the per-replica flight recorder from `dd_obs`, and exposes
//! one `on_*` hook per serving event (enqueue, shed, completion, failure,
//! attempt outcome, eviction, breaker-open). Every hook takes a
//! caller-supplied `now_s`, so the threaded [`crate::server::Server`]
//! passes `dd_obs::monotonic_seconds()` while the virtual-time
//! [`crate::sim::simulate_chaos_telemetry`] twin passes event time — and
//! identical event streams produce bit-identical [`TelemetryReport`]s,
//! which is exactly what the parity test asserts.
//!
//! The bundle is observe-only by construction: nothing the serving path
//! decides (admission, batching, retries, routing) reads telemetry state,
//! so wiring it in cannot change any experiment's numbers.

use crate::resil::AttemptOutcome;
use crate::tenant::PriorityClass;
use dd_obs::telemetry::{
    AlertEvent, AlertKind, FlightEvent, FlightEventKind, FlightRecorder, RequestTrace, SloConfig,
    SloMonitor, SloObjective, TailSampler, TailSamplerConfig, TraceVerdict,
};
use dd_obs::window::{SlidingWindow, WindowConfig, WindowedGauge};
use dd_obs::HistSummary;

/// Name of the availability SLO monitor.
pub const SLO_AVAILABILITY: &str = "availability";
/// Name of the p99-vs-deadline latency SLO monitor.
pub const SLO_LATENCY: &str = "p99_deadline";

/// Flight-recorder dumps retained per run (the earliest ones — the chaos
/// onset is what a post-mortem wants); later dumps are counted, not kept.
const MAX_DUMPS: usize = 8;

/// Shape of one [`ServeTelemetry`] bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Sliding-window layout for the latency windows (bucket × count).
    pub window: WindowConfig,
    /// Fast SLO window, seconds — bounds detection latency.
    pub fast_window_s: f64,
    /// Slow SLO window, seconds — suppresses blips.
    pub slow_window_s: f64,
    /// Availability objective target, e.g. `0.999`.
    pub availability_target: f64,
    /// Latency-objective deadline, seconds (normally the shed deadline).
    pub deadline_s: f64,
    /// Fraction of requests budgeted past the deadline, e.g. `0.01`.
    pub tolerated_late_fraction: f64,
    /// Burn-rate multiple both windows must exceed to fire.
    pub burn_threshold: f64,
    /// Completed requests slower than this are tail-sampled as `Slow`.
    pub slow_trace_threshold_s: f64,
    /// Tail-sampler trace capacity.
    pub trace_capacity: usize,
    /// Flight-recorder ring capacity per replica.
    pub recorder_capacity: usize,
}

impl TelemetryConfig {
    /// Production-shaped defaults around a serving deadline: 100 ms × 20
    /// latency buckets, 0.2 s/0.8 s burn windows at threshold 10 over a
    /// 99.9% availability target and a 1%-late deadline objective.
    pub fn standard(deadline_s: f64) -> Self {
        TelemetryConfig {
            window: WindowConfig::new(0.1, 20),
            fast_window_s: 0.2,
            slow_window_s: 0.8,
            availability_target: 0.999,
            deadline_s,
            tolerated_late_fraction: 0.01,
            burn_threshold: 10.0,
            slow_trace_threshold_s: deadline_s * 0.5,
            trace_capacity: 64,
            recorder_capacity: 32,
        }
    }

    /// Same config with a different fast/slow window pair — the knob the
    /// E15 grid sweeps.
    pub fn with_windows(mut self, fast_s: f64, slow_s: f64) -> Self {
        self.fast_window_s = fast_s;
        self.slow_window_s = slow_s;
        self
    }
}

/// One retained flight-recorder dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Why the dump was taken (`"breaker_open"` / `"replica_evicted"`).
    pub reason: String,
    /// Dump time (caller clock), seconds.
    pub at_s: f64,
    /// The rendered JSON document.
    pub json: String,
}

/// Per-priority-class slice of a [`TelemetryReport`]. Present only when
/// the engine drove the `*_class` hooks (multi-tenant mode); single-tenant
/// engines leave `classes` empty, so their reports are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The priority class this row summarizes.
    pub class: PriorityClass,
    /// Windowed end-to-end latency for this class at the report instant.
    pub e2e: HistSummary,
    /// Completions in this class.
    pub completed: u64,
    /// Sheds in this class.
    pub shed: u64,
    /// Admission rejections in this class.
    pub rejected: u64,
    /// Completions that ran past the class deadline.
    pub deadline_viol: u64,
}

/// Everything the bundle measured, summarized at one instant.
///
/// `PartialEq` is the determinism contract: two runs over identical event
/// streams must produce `==` reports, which the parity and E15
/// byte-identity tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Windowed end-to-end latency summary at the report instant.
    pub e2e: HistSummary,
    /// Windowed queue-wait summary at the report instant.
    pub queue_wait: HistSummary,
    /// Completions per second over the live window.
    pub e2e_rate_per_s: f64,
    /// Last queue depth observed.
    pub queue_depth_last: f64,
    /// Peak queue depth inside the live window.
    pub queue_depth_max: f64,
    /// Requests enqueued / rejected / completed / failed / shed.
    pub enqueued: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed (non-shed errors).
    pub failed: u64,
    /// Requests shed past their deadline.
    pub shed: u64,
    /// Every alert edge fired or cleared, in event order.
    pub alerts: Vec<AlertEvent>,
    /// Exemplar request ids attached to live e2e latency buckets, as
    /// `(bucket, request_id)` sorted by bucket.
    pub exemplars: Vec<(usize, u64)>,
    /// Traces ever kept by the tail sampler.
    pub traces_kept: u64,
    /// Tail-sampler keep counts `(slow, error, shed)`.
    pub trace_verdicts: (u64, u64, u64),
    /// Events recorded by the flight recorder over its lifetime.
    pub recorder_events: u64,
    /// Retained flight-recorder dumps (first [`MAX_DUMPS`]).
    pub dumps: Vec<FlightDump>,
    /// Dumps taken over the run (including ones not retained).
    pub dump_total: u64,
    /// Per-priority-class slices, in [`PriorityClass::ALL`] order. Empty
    /// unless the engine drove the `*_class` hooks.
    pub classes: Vec<ClassReport>,
    /// Autoscaler grow events observed via [`ServeTelemetry::on_scale`].
    pub scale_ups: u64,
    /// Autoscaler shrink events observed via [`ServeTelemetry::on_scale`].
    pub scale_downs: u64,
}

impl TelemetryReport {
    /// Time of the first `Fired` edge of the named SLO, if any.
    pub fn first_fired_at(&self, slo: &str) -> Option<f64> {
        self.alerts.iter().find(|a| a.kind == AlertKind::Fired && a.slo == slo).map(|a| a.at_s)
    }

    /// Number of `Fired` edges across both monitors.
    pub fn fired_count(&self) -> usize {
        self.alerts.iter().filter(|a| a.kind == AlertKind::Fired).count()
    }
}

/// One priority class's running tallies and latency window.
#[derive(Debug, Clone)]
struct ClassTrack {
    class: PriorityClass,
    e2e: SlidingWindow,
    completed: u64,
    shed: u64,
    rejected: u64,
    deadline_viol: u64,
}

impl ClassTrack {
    fn touched(&self) -> bool {
        self.completed + self.shed + self.rejected > 0
    }
}

/// The streaming telemetry bundle one serving engine drives.
#[derive(Debug, Clone)]
pub struct ServeTelemetry {
    cfg: TelemetryConfig,
    e2e: SlidingWindow,
    queue_wait: SlidingWindow,
    queue_depth: WindowedGauge,
    availability: SloMonitor,
    latency: SloMonitor,
    sampler: TailSampler,
    recorder: FlightRecorder,
    alerts: Vec<AlertEvent>,
    dumps: Vec<FlightDump>,
    dump_total: u64,
    enqueued: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    classes: Vec<ClassTrack>,
    active_replicas: WindowedGauge,
    scale_ups: u64,
    scale_downs: u64,
}

impl ServeTelemetry {
    /// New bundle for a pool of `replicas` replicas.
    pub fn new(replicas: usize, cfg: TelemetryConfig) -> Self {
        let availability = SloMonitor::new(SloConfig {
            name: SLO_AVAILABILITY.to_string(),
            objective: SloObjective::Availability { target: cfg.availability_target },
            fast_window_s: cfg.fast_window_s,
            slow_window_s: cfg.slow_window_s,
            burn_threshold: cfg.burn_threshold,
        });
        let latency = SloMonitor::new(SloConfig {
            name: SLO_LATENCY.to_string(),
            objective: SloObjective::LatencyDeadline {
                deadline_s: cfg.deadline_s,
                tolerated_fraction: cfg.tolerated_late_fraction,
            },
            fast_window_s: cfg.fast_window_s,
            slow_window_s: cfg.slow_window_s,
            burn_threshold: cfg.burn_threshold,
        });
        let sampler = TailSampler::new(TailSamplerConfig {
            slow_threshold_s: cfg.slow_trace_threshold_s,
            capacity: cfg.trace_capacity,
        });
        let recorder = FlightRecorder::new(replicas.max(1), cfg.recorder_capacity);
        ServeTelemetry {
            e2e: SlidingWindow::new(cfg.window),
            queue_wait: SlidingWindow::new(cfg.window),
            queue_depth: WindowedGauge::new(cfg.window),
            availability,
            latency,
            sampler,
            recorder,
            alerts: Vec::new(),
            dumps: Vec::new(),
            dump_total: 0,
            enqueued: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            classes: PriorityClass::ALL
                .iter()
                .map(|&class| ClassTrack {
                    class,
                    e2e: SlidingWindow::new(cfg.window),
                    completed: 0,
                    shed: 0,
                    rejected: 0,
                    deadline_viol: 0,
                })
                .collect(),
            active_replicas: WindowedGauge::new(cfg.window),
            scale_ups: 0,
            scale_downs: 0,
            cfg,
        }
    }

    /// The bundle's configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    fn poll(&mut self, now_s: f64) {
        if let Some(e) = self.availability.poll(now_s) {
            self.alerts.push(e);
        }
        if let Some(e) = self.latency.poll(now_s) {
            self.alerts.push(e);
        }
    }

    fn dump(&mut self, reason: &str, now_s: f64) {
        self.dump_total += 1;
        if self.dumps.len() < MAX_DUMPS {
            let json = self.recorder.dump_json(reason, now_s);
            self.dumps.push(FlightDump { reason: reason.to_string(), at_s: now_s, json });
        }
    }

    /// A request entered the queue; `depth` is the queue depth after it.
    pub fn on_enqueue(&mut self, now_s: f64, depth: usize) {
        self.enqueued += 1;
        self.queue_depth.set(now_s, depth as f64);
    }

    /// Admission control rejected a request (queue full) — a user-visible
    /// error, so it burns availability budget.
    pub fn on_reject(&mut self, now_s: f64) {
        self.rejected += 1;
        self.availability.observe(now_s, false);
        self.poll(now_s);
    }

    /// A queued request was shed past its deadline: burns both budgets (the
    /// user got an error, and the request objectively ran past the
    /// deadline) and tail-samples the trace.
    pub fn on_shed(&mut self, now_s: f64, request_id: u64, enqueue_s: f64) {
        self.shed += 1;
        self.availability.observe(now_s, false);
        self.latency.observe_latency(now_s, now_s - enqueue_s);
        self.sampler.offer(RequestTrace {
            request_id,
            start_s: enqueue_s,
            end_s: now_s,
            verdict: TraceVerdict::Shed,
            steps: Vec::new(),
        });
        self.poll(now_s);
    }

    /// A request completed at `now_s`: records the windowed latencies (with
    /// the request id as the bucket exemplar), feeds both SLOs, and offers
    /// the trace to the tail sampler (kept only if slow).
    pub fn on_complete(&mut self, now_s: f64, request_id: u64, enqueue_s: f64, queue_wait_s: f64) {
        self.completed += 1;
        let e2e_s = now_s - enqueue_s;
        self.e2e.record_with_id(now_s, e2e_s, request_id);
        self.queue_wait.record(now_s, queue_wait_s);
        dd_obs::window_record_cfg("serve_e2e_seconds", now_s, e2e_s, self.cfg.window);
        dd_obs::window_record_cfg("serve_queue_wait_seconds", now_s, queue_wait_s, self.cfg.window);
        self.availability.observe(now_s, true);
        self.latency.observe_latency(now_s, e2e_s);
        self.sampler.offer(RequestTrace {
            request_id,
            start_s: enqueue_s,
            end_s: now_s,
            verdict: TraceVerdict::Ok,
            steps: Vec::new(),
        });
        self.poll(now_s);
    }

    /// A request failed with a non-shed error (retry budget exhausted,
    /// breakers open, model gone): burns availability budget and keeps the
    /// trace.
    pub fn on_failure(&mut self, now_s: f64, request_id: u64, enqueue_s: f64) {
        self.failed += 1;
        self.availability.observe(now_s, false);
        self.sampler.offer(RequestTrace {
            request_id,
            start_s: enqueue_s,
            end_s: now_s,
            verdict: TraceVerdict::Error,
            steps: Vec::new(),
        });
        self.poll(now_s);
    }

    /// A batch of `batch` rows was dispatched at `replica`.
    pub fn on_dispatch(&mut self, now_s: f64, replica: usize, batch: usize) {
        self.recorder.record(
            replica,
            FlightEvent { at_s: now_s, kind: FlightEventKind::Dispatch, detail: batch as f64 },
        );
    }

    /// One attempt resolved at `replica` with `outcome`.
    pub fn on_outcome(&mut self, now_s: f64, replica: usize, outcome: &AttemptOutcome) {
        let (kind, detail) = match *outcome {
            AttemptOutcome::Done { elapsed_s } => (FlightEventKind::Done, elapsed_s),
            AttemptOutcome::Crashed { elapsed_s } => (FlightEventKind::Crash, elapsed_s),
            AttemptOutcome::TimedOut { elapsed_s } => (FlightEventKind::Timeout, elapsed_s),
            AttemptOutcome::Corrupt { elapsed_s } => (FlightEventKind::Corrupt, elapsed_s),
        };
        self.recorder.record(replica, FlightEvent { at_s: now_s, kind, detail });
    }

    /// Health checking evicted `replica`: record it and dump the rings.
    pub fn on_eviction(&mut self, now_s: f64, replica: usize) {
        self.recorder.record(
            replica,
            FlightEvent { at_s: now_s, kind: FlightEventKind::Eviction, detail: 0.0 },
        );
        self.dump("replica_evicted", now_s);
    }

    /// A circuit breaker opened at `replica`: record it and dump the rings.
    pub fn on_breaker_open(&mut self, now_s: f64, replica: usize) {
        self.recorder.record(
            replica,
            FlightEvent { at_s: now_s, kind: FlightEventKind::BreakerOpen, detail: 0.0 },
        );
        self.dump("breaker_open", now_s);
    }

    fn class_track(&mut self, class: PriorityClass) -> &mut ClassTrack {
        let idx = class.rank();
        &mut self.classes[idx]
    }

    /// Multi-tenant completion: the class slice of [`Self::on_complete`].
    /// Call *in addition to* the global hook; records the class window and
    /// counts a deadline violation when `e2e_s` ran past `deadline_s`.
    pub fn on_complete_class(
        &mut self,
        now_s: f64,
        class: PriorityClass,
        e2e_s: f64,
        deadline_s: f64,
    ) {
        let t = self.class_track(class);
        t.completed += 1;
        t.e2e.record(now_s, e2e_s);
        if e2e_s > deadline_s {
            t.deadline_viol += 1;
        }
    }

    /// Multi-tenant shed: the class slice of [`Self::on_shed`].
    pub fn on_shed_class(&mut self, _now_s: f64, class: PriorityClass) {
        self.class_track(class).shed += 1;
    }

    /// Multi-tenant rejection: the class slice of [`Self::on_reject`].
    pub fn on_reject_class(&mut self, _now_s: f64, class: PriorityClass) {
        self.class_track(class).rejected += 1;
    }

    /// The autoscaler resized the active pool to `active` replicas.
    pub fn on_scale(&mut self, now_s: f64, grew: bool, active: usize) {
        if grew {
            self.scale_ups += 1;
        } else {
            self.scale_downs += 1;
        }
        self.active_replicas.set(now_s, active as f64);
    }

    /// Alert edges so far, in event order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Current burn rates `(fast, slow)` of the availability SLO.
    pub fn availability_burn(&self, now_s: f64) -> (f64, f64) {
        self.availability.burn_rates(now_s)
    }

    /// Summarize everything at `now_s`.
    pub fn report(&self, now_s: f64) -> TelemetryReport {
        TelemetryReport {
            e2e: self.e2e.summary(now_s),
            queue_wait: self.queue_wait.summary(now_s),
            e2e_rate_per_s: self.e2e.rate_per_s(now_s),
            queue_depth_last: self.queue_depth.last(),
            queue_depth_max: self.queue_depth.max(now_s),
            enqueued: self.enqueued,
            rejected: self.rejected,
            completed: self.completed,
            failed: self.failed,
            shed: self.shed,
            alerts: self.alerts.clone(),
            exemplars: self.e2e.exemplars(now_s),
            traces_kept: self.sampler.kept_total(),
            trace_verdicts: self.sampler.verdict_counts(),
            recorder_events: self.recorder.recorded(),
            dumps: self.dumps.clone(),
            dump_total: self.dump_total,
            classes: self
                .classes
                .iter()
                .filter(|t| t.touched())
                .map(|t| ClassReport {
                    class: t.class,
                    e2e: t.e2e.summary(now_s),
                    completed: t.completed,
                    shed: t.shed,
                    rejected: t.rejected,
                    deadline_viol: t.deadline_viol,
                })
                .collect(),
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle() -> ServeTelemetry {
        ServeTelemetry::new(2, TelemetryConfig::standard(0.25))
    }

    #[test]
    fn healthy_traffic_reports_clean() {
        let mut t = bundle();
        for i in 0..500u64 {
            let now = i as f64 * 2e-3;
            t.on_enqueue(now, 1);
            t.on_complete(now + 0.01, i, now, 0.002);
        }
        let r = t.report(1.0);
        assert_eq!((r.enqueued, r.completed, r.failed, r.shed, r.rejected), (500, 500, 0, 0, 0));
        assert!(r.alerts.is_empty(), "healthy traffic must not alert: {:?}", r.alerts);
        assert_eq!(r.traces_kept, 0, "fast Ok traces are dropped");
        assert!(r.e2e.count > 0 && r.e2e.p99 < 0.02);
        assert!(r.e2e_rate_per_s > 0.0);
    }

    #[test]
    fn failures_fire_availability_and_keep_traces() {
        let mut t = bundle();
        for i in 0..500u64 {
            let now = i as f64 * 2e-3;
            t.on_enqueue(now, 1);
            t.on_complete(now + 0.01, i, now, 0.002);
        }
        for i in 500..900u64 {
            let now = i as f64 * 2e-3;
            t.on_enqueue(now, 4);
            t.on_failure(now + 0.02, i, now);
        }
        let r = t.report(1.9);
        let fired = r.first_fired_at(SLO_AVAILABILITY).expect("sustained failures must fire");
        assert!(fired >= 1.0, "fired at {fired} (failures start at 1.0)");
        assert!(r.traces_kept > 0 && r.trace_verdicts.1 > 0, "error traces kept");
    }

    #[test]
    fn dumps_are_taken_on_breaker_and_eviction_and_bounded() {
        let mut t = bundle();
        t.on_dispatch(0.1, 0, 16);
        t.on_outcome(0.11, 0, &AttemptOutcome::Crashed { elapsed_s: 0.01 });
        t.on_eviction(0.11, 0);
        for k in 0..20 {
            t.on_breaker_open(0.2 + k as f64 * 0.01, 1);
        }
        let r = t.report(0.5);
        assert_eq!(r.dumps.len(), 8, "dump retention is bounded");
        assert_eq!(r.dump_total, 21);
        assert_eq!(r.dumps[0].reason, "replica_evicted");
        assert!(r.dumps[0].json.contains("\"kind\":\"Crash\""), "{}", r.dumps[0].json);
        assert!(r.recorder_events >= 4);
    }

    #[test]
    fn identical_event_streams_produce_equal_reports() {
        let drive = || {
            let mut t = bundle();
            for i in 0..300u64 {
                let now = i as f64 * 1e-3;
                t.on_enqueue(now, (i % 7) as usize);
                if i % 11 == 0 {
                    t.on_shed(now + 0.3, i, now);
                } else if i % 13 == 0 {
                    t.on_failure(now + 0.05, i, now);
                } else {
                    t.on_complete(now + 0.02, i, now, 0.004);
                }
                t.on_dispatch(now, (i % 2) as usize, 8);
            }
            t.on_eviction(0.35, 1);
            t.report(0.4)
        };
        assert_eq!(drive(), drive(), "pure state machine: equal streams, equal reports");
    }
}
