//! Resilience decision core: retries, hedging, and circuit breaking.
//!
//! This module is the *single* home of the serving resilience policy. The
//! threaded [`crate::server::Server`] and the virtual-time chaos simulator
//! ([`crate::sim::simulate_chaos`]) both drive the same per-request state
//! machine, [`ResilientCall`]: they ask it what to do next ([`Action`]),
//! perform the attempt themselves (real inference vs. analytic pricing),
//! and report back what happened ([`AttemptOutcome`]). Neither engine
//! contains any retry/hedge/breaker logic of its own, so a decision taken
//! on an event trace is identical in both worlds — the sim-twin parity the
//! E14 experiment depends on (see `tests/resilience.rs`).
//!
//! The three policies:
//!
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter drawn from the caller's [`Rng64`] stream.
//! * [`HedgePolicy`] — after a p99-derived delay, abandon a straggling
//!   attempt and re-dispatch on another replica. Hedges never double-answer
//!   a request: the drain path answers through a `bounded(1)` channel, so
//!   exactly-once semantics are preserved by construction.
//! * [`BreakerPolicy`] / [`CircuitBreaker`] — the classic
//!   closed → open → half-open machine, evaluated purely in terms of a
//!   caller-supplied clock reading (the dd-obs monotonic clock in the live
//!   server, virtual time in the sim).

use crate::replica::ReplicaSetState;
use dd_tensor::Rng64;

/// Retry budget and capped exponential backoff with jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Backoff cap, seconds.
    pub max_backoff_s: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by
    /// `1 - jitter·u` with `u ~ U[0,1)` from the caller's RNG stream.
    pub jitter: f64,
}

impl RetryPolicy {
    /// New policy; `max_attempts >= 1`, finite non-negative backoffs with
    /// `max >= base`, jitter in `[0, 1]`.
    pub fn new(max_attempts: u32, base_backoff_s: f64, max_backoff_s: f64, jitter: f64) -> Self {
        assert!(max_attempts >= 1, "max_attempts must be >= 1");
        assert!(base_backoff_s.is_finite() && base_backoff_s >= 0.0, "base backoff must be >= 0");
        assert!(max_backoff_s.is_finite() && max_backoff_s >= base_backoff_s, "cap below base");
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        RetryPolicy { max_attempts, base_backoff_s, max_backoff_s, jitter }
    }

    /// One attempt, no backoff — the no-retry baseline.
    pub fn disabled() -> Self {
        RetryPolicy::new(1, 0.0, 0.0, 0.0)
    }

    /// Backoff before the retry that follows failure number `failures`
    /// (1-based). Deterministic given the RNG stream position.
    pub fn backoff_s(&self, failures: u32, rng: &mut Rng64) -> f64 {
        if self.base_backoff_s <= 0.0 {
            return 0.0;
        }
        let exp = failures.saturating_sub(1).min(52);
        let raw = self.base_backoff_s * (1u64 << exp) as f64;
        let capped = raw.min(self.max_backoff_s);
        capped * (1.0 - self.jitter * rng.uniform())
    }
}

/// Hedged-dispatch policy: give a straggling attempt `delay_s` seconds,
/// then abandon it and try another replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Seconds to wait on one attempt before hedging. `0.0` is the *auto*
    /// sentinel: resolve from an observed service-time p99 via
    /// [`HedgePolicy::resolved`] before driving a call. `f64::INFINITY`
    /// never hedges.
    pub delay_s: f64,
    /// Maximum hedged re-dispatches per request.
    pub max_hedges: u32,
}

impl HedgePolicy {
    /// Never hedge.
    pub fn disabled() -> Self {
        HedgePolicy { delay_s: f64::INFINITY, max_hedges: 0 }
    }

    /// Hedge after a fixed delay, at most `max_hedges` times per request.
    pub fn after(delay_s: f64, max_hedges: u32) -> Self {
        assert!(delay_s > 0.0, "hedge delay must be positive");
        HedgePolicy { delay_s, max_hedges }
    }

    /// Auto mode: derive the delay from the observed service-time p99 at
    /// dispatch time (see [`HedgePolicy::resolved`]).
    pub fn auto(max_hedges: u32) -> Self {
        HedgePolicy { delay_s: 0.0, max_hedges }
    }

    /// Resolve the auto sentinel against an observed service-time p99
    /// (e.g. `dd_obs::hist_summary("serve_service_seconds")` in the live
    /// server, the accumulated service histogram in the sim). `floor_s`
    /// bounds the delay from below so a cold histogram cannot produce a
    /// hair-trigger hedge. Fixed delays pass through unchanged.
    pub fn resolved(self, observed_p99_s: Option<f64>, floor_s: f64) -> Self {
        if self.delay_s > 0.0 {
            return self;
        }
        let p99 = observed_p99_s.filter(|p| p.is_finite() && *p > 0.0).unwrap_or(floor_s);
        HedgePolicy { delay_s: p99.max(floor_s), max_hedges: self.max_hedges }
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Seconds the breaker stays open before probing (half-open).
    pub open_s: f64,
    /// Half-open successes required to close again.
    pub half_open_successes: u32,
}

impl BreakerPolicy {
    /// New policy; threshold and probe count must be >= 1, open time > 0.
    pub fn new(failure_threshold: u32, open_s: f64, half_open_successes: u32) -> Self {
        assert!(failure_threshold >= 1, "failure_threshold must be >= 1");
        assert!(open_s > 0.0 && open_s.is_finite(), "open_s must be positive");
        assert!(half_open_successes >= 1, "half_open_successes must be >= 1");
        BreakerPolicy { failure_threshold, open_s, half_open_successes }
    }

    /// A breaker that never trips (the baseline configuration).
    pub fn disabled() -> Self {
        BreakerPolicy { failure_threshold: u32::MAX, open_s: 1.0, half_open_successes: 1 }
    }
}

/// Observable breaker state at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are being counted.
    Closed,
    /// Tripped: no traffic until `open_s` elapses.
    Open,
    /// Probing: traffic allowed, the next outcomes decide open vs closed.
    HalfOpen,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerInner {
    Closed { failures: u32 },
    Open { since_s: f64 },
    HalfOpen { successes: u32 },
}

/// The closed/open/half-open machine, pure in the caller's clock: every
/// transition is a function of `(state, outcome, now_s)`, so the same
/// breaker code runs on dd-obs wall time and on simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    inner: BreakerInner,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker { policy, inner: BreakerInner::Closed { failures: 0 } }
    }

    /// State as of `now_s` (an elapsed open period reads as half-open).
    pub fn state(&self, now_s: f64) -> BreakerState {
        match self.inner {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::HalfOpen { .. } => BreakerState::HalfOpen,
            BreakerInner::Open { since_s } => {
                if now_s - since_s >= self.policy.open_s {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// Whether a dispatch may pass at `now_s` (closed or probing).
    pub fn allow(&self, now_s: f64) -> bool {
        self.state(now_s) != BreakerState::Open
    }

    /// Record a successful attempt.
    pub fn on_success(&mut self, now_s: f64) {
        self.inner = match self.state(now_s) {
            BreakerState::Closed => BreakerInner::Closed { failures: 0 },
            BreakerState::Open => self.inner,
            BreakerState::HalfOpen => {
                let successes = match self.inner {
                    BreakerInner::HalfOpen { successes } => successes + 1,
                    _ => 1,
                };
                if successes >= self.policy.half_open_successes {
                    BreakerInner::Closed { failures: 0 }
                } else {
                    BreakerInner::HalfOpen { successes }
                }
            }
        };
    }

    /// Record a failed attempt; returns `true` when this failure newly
    /// tripped the breaker open.
    pub fn on_failure(&mut self, now_s: f64) -> bool {
        match self.state(now_s) {
            BreakerState::Closed => {
                let failures = match self.inner {
                    BreakerInner::Closed { failures } => failures + 1,
                    _ => 1,
                };
                if failures >= self.policy.failure_threshold {
                    self.inner = BreakerInner::Open { since_s: now_s };
                    true
                } else {
                    self.inner = BreakerInner::Closed { failures };
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.inner = BreakerInner::Open { since_s: now_s };
                true
            }
            BreakerState::Open => false,
        }
    }
}

/// The full resilience configuration one engine drives requests with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilPolicy {
    /// Retry budget and backoff.
    pub retry: RetryPolicy,
    /// Hedged-dispatch policy.
    pub hedge: HedgePolicy,
    /// Per-replica breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Evict a replica from rotation when an attempt observes its crash
    /// (the health-check path). The no-resilience baseline turns this off:
    /// a dumb balancer keeps routing a share of traffic to the corpse
    /// until it respawns — the availability cliff E14 measures.
    pub health_eviction: bool,
}

impl ResilPolicy {
    /// Everything off: one attempt, no hedge, breaker never trips, no
    /// health eviction. The E14 "no-retry" baseline.
    pub fn disabled() -> Self {
        ResilPolicy {
            retry: RetryPolicy::disabled(),
            hedge: HedgePolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            health_eviction: false,
        }
    }

    /// A sane default: 4 attempts with 1 ms..16 ms jittered backoff, one
    /// auto-delay hedge, breaker tripping after 3 consecutive failures.
    pub fn standard() -> Self {
        ResilPolicy {
            retry: RetryPolicy::new(4, 1e-3, 16e-3, 0.5),
            hedge: HedgePolicy::auto(1),
            breaker: BreakerPolicy::new(3, 0.25, 1),
            health_eviction: true,
        }
    }

    /// This policy with its hedge replaced (used to resolve auto hedging
    /// against an observed p99 right before driving a call).
    pub fn with_hedge(self, hedge: HedgePolicy) -> Self {
        ResilPolicy { hedge, ..self }
    }
}

/// What one attempt reported back to the decision core. `elapsed_s` is the
/// request-visible time the attempt consumed (real elapsed seconds in the
/// threaded server, virtual seconds in the sim).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt produced a valid answer.
    Done {
        /// Seconds the attempt took.
        elapsed_s: f64,
    },
    /// The attempt exceeded the hedge wait cap and was abandoned.
    TimedOut {
        /// Seconds waited before abandoning (the wait cap).
        elapsed_s: f64,
    },
    /// The replica crashed before answering.
    Crashed {
        /// Seconds until the crash was observed.
        elapsed_s: f64,
    },
    /// The replica answered with an invalid (non-finite) output.
    Corrupt {
        /// Seconds the attempt took.
        elapsed_s: f64,
    },
}

impl AttemptOutcome {
    /// Request-visible seconds this attempt consumed.
    pub fn elapsed_s(&self) -> f64 {
        match *self {
            AttemptOutcome::Done { elapsed_s }
            | AttemptOutcome::TimedOut { elapsed_s }
            | AttemptOutcome::Crashed { elapsed_s }
            | AttemptOutcome::Corrupt { elapsed_s } => elapsed_s,
        }
    }
}

/// Why a call gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUpReason {
    /// The retry budget is spent.
    Exhausted {
        /// Replica of the final failed attempt.
        last_replica: usize,
        /// Failed attempts consumed.
        attempts: u32,
    },
    /// No replica was available to try (all down or breaker-open).
    NoReplica,
}

/// What the engine should do next for one in-flight request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Run one attempt on `replica`, abandoning it (as
    /// [`AttemptOutcome::TimedOut`]) once it has consumed `wait_cap_s`
    /// seconds without answering.
    Try {
        /// Replica to dispatch on.
        replica: usize,
        /// Hedge wait cap for this attempt, seconds (∞ = never abandon).
        wait_cap_s: f64,
    },
    /// Back off for `seconds` before asking again.
    Wait {
        /// Seconds to wait.
        seconds: f64,
    },
    /// The request succeeded on `replica`; stop.
    Finish {
        /// Replica that answered.
        replica: usize,
    },
    /// The request failed; stop and answer with a typed error.
    GiveUp {
        /// Why the call is being abandoned.
        reason: GiveUpReason,
    },
}

/// Per-request resilience state machine — the decision core itself.
///
/// Drive it as: `loop { match call.next(..) { Try => run + observe, Wait =>
/// sleep/advance, Finish | GiveUp => break } }`. Both engines use exactly
/// this loop; see the module docs for the parity argument.
#[derive(Debug, Clone)]
pub struct ResilientCall {
    policy: ResilPolicy,
    tries: u32,
    failures: u32,
    hedges: u32,
    pending_wait: Option<f64>,
    avoid: Option<usize>,
    last: usize,
    finished: Option<usize>,
    gave_up: Option<GiveUpReason>,
}

impl ResilientCall {
    /// Fresh state for one request under `policy`. Resolve auto hedging
    /// ([`HedgePolicy::resolved`]) before constructing the call.
    pub fn new(policy: ResilPolicy) -> Self {
        ResilientCall {
            policy,
            tries: 0,
            failures: 0,
            hedges: 0,
            pending_wait: None,
            avoid: None,
            last: 0,
            finished: None,
            gave_up: None,
        }
    }

    /// Attempts issued so far (including hedges).
    pub fn tries(&self) -> u32 {
        self.tries
    }

    /// Failed attempts so far (crashes + corrupt outputs; hedged
    /// abandonments are not failures).
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Hedged re-dispatches so far.
    pub fn hedges(&self) -> u32 {
        self.hedges
    }

    /// Retries consumed: issued attempts beyond the first that were not
    /// hedges.
    pub fn retries(&self) -> u32 {
        self.tries.saturating_sub(1).saturating_sub(self.hedges)
    }

    /// Decide the next step at `now_s` against the replica-set state.
    pub fn next(&mut self, set: &mut ReplicaSetState, now_s: f64) -> Action {
        if let Some(replica) = self.finished {
            return Action::Finish { replica };
        }
        if let Some(reason) = self.gave_up {
            return Action::GiveUp { reason };
        }
        if let Some(seconds) = self.pending_wait.take() {
            return Action::Wait { seconds };
        }
        set.refresh(now_s);
        if self.failures >= self.policy.retry.max_attempts {
            let reason =
                GiveUpReason::Exhausted { last_replica: self.last, attempts: self.failures };
            self.gave_up = Some(reason);
            return Action::GiveUp { reason };
        }
        let Some(replica) = set.pick(now_s, self.avoid) else {
            let reason = GiveUpReason::NoReplica;
            self.gave_up = Some(reason);
            return Action::GiveUp { reason };
        };
        self.tries += 1;
        self.last = replica;
        let hedge = self.policy.hedge;
        let wait_cap_s = if self.hedges < hedge.max_hedges && hedge.delay_s > 0.0 {
            hedge.delay_s
        } else {
            f64::INFINITY
        };
        Action::Try { replica, wait_cap_s }
    }

    /// Report what the attempt on `replica` did, updating replica health,
    /// its breaker, and this call's retry/hedge budget. `now_s` is the
    /// clock *after* the attempt.
    pub fn observe(
        &mut self,
        set: &mut ReplicaSetState,
        replica: usize,
        outcome: AttemptOutcome,
        now_s: f64,
        rng: &mut Rng64,
    ) {
        match outcome {
            AttemptOutcome::Done { .. } => {
                set.on_success(replica, now_s);
                self.finished = Some(replica);
            }
            AttemptOutcome::TimedOut { .. } => {
                // A straggler, not a failure: hedge to another replica
                // without touching the breaker or the retry budget.
                self.hedges += 1;
                self.avoid = Some(replica);
            }
            AttemptOutcome::Crashed { .. } => {
                if self.policy.health_eviction {
                    set.mark_down(replica, now_s);
                }
                set.on_failure(replica, now_s);
                self.fail(replica, now_s, rng);
            }
            AttemptOutcome::Corrupt { .. } => {
                set.on_failure(replica, now_s);
                self.fail(replica, now_s, rng);
            }
        }
    }

    fn fail(&mut self, replica: usize, _now_s: f64, rng: &mut Rng64) {
        self.failures += 1;
        self.avoid = Some(replica);
        if self.failures < self.policy.retry.max_attempts {
            let backoff = self.policy.retry.backoff_s(self.failures, rng);
            if backoff > 0.0 {
                self.pending_wait = Some(backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let p = RetryPolicy::new(5, 1e-3, 4e-3, 0.0);
        let mut rng = Rng64::new(1);
        assert_eq!(p.backoff_s(1, &mut rng), 1e-3);
        assert_eq!(p.backoff_s(2, &mut rng), 2e-3);
        assert_eq!(p.backoff_s(3, &mut rng), 4e-3);
        assert_eq!(p.backoff_s(4, &mut rng), 4e-3, "must cap at max_backoff_s");

        let j = RetryPolicy::new(5, 1e-3, 4e-3, 0.5);
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        let xa = j.backoff_s(2, &mut a);
        let xb = j.backoff_s(2, &mut b);
        assert_eq!(xa, xb, "same stream position must give the same jitter");
        assert!(xa > 1e-3 && xa <= 2e-3, "jitter only shrinks the backoff: {xa}");
        assert_eq!(RetryPolicy::disabled().backoff_s(1, &mut a), 0.0);
    }

    #[test]
    fn hedge_auto_resolves_against_observed_p99() {
        let auto = HedgePolicy::auto(2);
        let r = auto.resolved(Some(0.012), 0.002);
        assert_eq!(r.delay_s, 0.012);
        assert_eq!(r.max_hedges, 2);
        assert_eq!(auto.resolved(None, 0.002).delay_s, 0.002, "cold histogram uses the floor");
        assert_eq!(auto.resolved(Some(1e-6), 0.002).delay_s, 0.002, "floor bounds from below");
        let fixed = HedgePolicy::after(0.05, 1);
        assert_eq!(fixed.resolved(Some(0.012), 0.002), fixed, "fixed delays pass through");
    }

    #[test]
    fn breaker_walks_closed_open_half_open() {
        let mut b = CircuitBreaker::new(BreakerPolicy::new(2, 1.0, 2));
        assert_eq!(b.state(0.0), BreakerState::Closed);
        assert!(!b.on_failure(0.0));
        assert!(b.allow(0.0));
        assert!(b.on_failure(0.1), "second failure must trip it");
        assert_eq!(b.state(0.2), BreakerState::Open);
        assert!(!b.allow(0.2));
        // After open_s it probes.
        assert_eq!(b.state(1.2), BreakerState::HalfOpen);
        assert!(b.allow(1.2));
        b.on_success(1.2);
        assert_eq!(b.state(1.3), BreakerState::HalfOpen, "needs 2 probe successes");
        b.on_success(1.3);
        assert_eq!(b.state(1.4), BreakerState::Closed);
        // Closed again: failures count from zero toward the threshold.
        assert!(!b.on_failure(1.5));
        assert!(b.on_failure(1.55), "threshold reached: fresh trip");
        assert!(!b.on_failure(1.6), "already open: not a fresh trip");
        assert_eq!(b.state(1.6), BreakerState::Open);
        assert!(b.on_failure(2.6), "half-open failure re-trips");
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = CircuitBreaker::new(BreakerPolicy::disabled());
        for i in 0..10_000 {
            assert!(!b.on_failure(i as f64 * 1e-3));
        }
        assert!(b.allow(100.0));
    }

    fn set(n: usize) -> ReplicaSetState {
        ReplicaSetState::new(n, BreakerPolicy::new(3, 0.25, 1), 0.25)
    }

    #[test]
    fn call_succeeds_first_try_under_no_faults() {
        let mut s = set(3);
        let mut rng = Rng64::new(1);
        let mut call =
            ResilientCall::new(ResilPolicy::standard().with_hedge(HedgePolicy::after(0.01, 1)));
        let Action::Try { replica, wait_cap_s } = call.next(&mut s, 0.0) else {
            panic!("fresh call must try");
        };
        assert_eq!(wait_cap_s, 0.01);
        call.observe(&mut s, replica, AttemptOutcome::Done { elapsed_s: 1e-3 }, 1e-3, &mut rng);
        assert_eq!(call.next(&mut s, 1e-3), Action::Finish { replica });
        assert_eq!(call.tries(), 1);
        assert_eq!(call.retries(), 0);
    }

    #[test]
    fn call_retries_crash_on_a_different_replica_with_backoff() {
        let mut s = set(3);
        let mut rng = Rng64::new(2);
        let mut call = ResilientCall::new(ResilPolicy::standard());
        let Action::Try { replica: r0, .. } = call.next(&mut s, 0.0) else { panic!("try") };
        call.observe(&mut s, r0, AttemptOutcome::Crashed { elapsed_s: 1e-4 }, 1e-4, &mut rng);
        let Action::Wait { seconds } = call.next(&mut s, 1e-4) else {
            panic!("crash must back off before retrying");
        };
        assert!(seconds > 0.0 && seconds <= 1e-3);
        let t = 1e-4 + seconds;
        let Action::Try { replica: r1, .. } = call.next(&mut s, t) else { panic!("retry") };
        assert_ne!(r1, r0, "retry must avoid the crashed replica");
        call.observe(&mut s, r1, AttemptOutcome::Done { elapsed_s: 1e-3 }, t + 1e-3, &mut rng);
        assert_eq!(call.next(&mut s, t + 1e-3), Action::Finish { replica: r1 });
        assert_eq!(call.retries(), 1);
        assert_eq!(call.failures(), 1);
    }

    #[test]
    fn call_exhausts_after_max_attempts() {
        let mut s = set(4);
        let mut rng = Rng64::new(3);
        let policy =
            ResilPolicy { retry: RetryPolicy::new(3, 0.0, 0.0, 0.0), ..ResilPolicy::standard() };
        let mut call = ResilientCall::new(policy);
        let mut last = 0;
        for _ in 0..3 {
            let Action::Try { replica, .. } = call.next(&mut s, 0.0) else { panic!("try") };
            last = replica;
            call.observe(
                &mut s,
                replica,
                AttemptOutcome::Corrupt { elapsed_s: 1e-3 },
                0.0,
                &mut rng,
            );
        }
        let Action::GiveUp { reason } = call.next(&mut s, 0.0) else { panic!("must give up") };
        assert_eq!(reason, GiveUpReason::Exhausted { last_replica: last, attempts: 3 });
        assert_eq!(call.failures(), 3);
    }

    #[test]
    fn call_hedges_a_straggler_without_spending_the_retry_budget() {
        let mut s = set(2);
        let mut rng = Rng64::new(4);
        let policy = ResilPolicy::standard().with_hedge(HedgePolicy::after(0.005, 1));
        let mut call = ResilientCall::new(policy);
        let Action::Try { replica: r0, wait_cap_s } = call.next(&mut s, 0.0) else { panic!() };
        assert_eq!(wait_cap_s, 0.005);
        call.observe(&mut s, r0, AttemptOutcome::TimedOut { elapsed_s: 0.005 }, 0.005, &mut rng);
        let Action::Try { replica: r1, wait_cap_s } = call.next(&mut s, 0.005) else {
            panic!("hedge must re-dispatch");
        };
        assert_ne!(r1, r0);
        assert!(wait_cap_s.is_infinite(), "hedge budget spent: second attempt runs to completion");
        call.observe(&mut s, r1, AttemptOutcome::Done { elapsed_s: 2e-3 }, 0.007, &mut rng);
        assert_eq!(call.hedges(), 1);
        assert_eq!(call.retries(), 0, "a hedge is not a retry");
        assert_eq!(call.failures(), 0, "a straggler is not a failure");
    }

    #[test]
    fn call_gives_up_when_every_replica_is_down() {
        let mut s = set(2);
        s.mark_down(0, 0.0);
        s.mark_down(1, 0.0);
        let mut call = ResilientCall::new(ResilPolicy::standard());
        assert_eq!(call.next(&mut s, 0.0), Action::GiveUp { reason: GiveUpReason::NoReplica });
        // After the respawn window the set heals and a fresh call proceeds.
        let mut call2 = ResilientCall::new(ResilPolicy::standard());
        assert!(matches!(call2.next(&mut s, 1.0), Action::Try { .. }));
    }
}
