//! Dataset container and splitting.

use dd_tensor::{Matrix, Rng64, Standardizer};

/// Supervised targets in the forms the driver workloads use.
#[derive(Debug, Clone)]
pub enum Target {
    /// Integer class labels (tumor type, resistance phenotype).
    Labels {
        /// One label per row of `x`.
        labels: Vec<usize>,
        /// Number of classes.
        classes: usize,
    },
    /// Real-valued regression targets, one or more columns.
    Regression(Matrix),
}

impl Target {
    /// Number of samples.
    pub fn len(&self) -> usize {
        match self {
            Target::Labels { labels, .. } => labels.len(),
            Target::Regression(m) => m.rows(),
        }
    }

    /// True when the target holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize as a training matrix: one-hot for labels, identity for
    /// regression.
    pub fn to_matrix(&self) -> Matrix {
        match self {
            Target::Labels { labels, classes } => dd_tensor::one_hot(labels, *classes),
            Target::Regression(m) => m.clone(),
        }
    }

    /// Class labels, if categorical.
    pub fn labels(&self) -> Option<&[usize]> {
        match self {
            Target::Labels { labels, .. } => Some(labels),
            Target::Regression(_) => None,
        }
    }

    /// Subset by row indices.
    pub fn gather(&self, idx: &[usize]) -> Target {
        match self {
            Target::Labels { labels, classes } => Target::Labels {
                labels: idx.iter().map(|&i| labels[i]).collect(),
                classes: *classes,
            },
            Target::Regression(m) => Target::Regression(m.gather_rows(idx)),
        }
    }
}

/// A feature matrix with its target and provenance metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// One sample per row.
    pub x: Matrix,
    /// Supervised target.
    pub y: Target,
    /// Human-readable source tag (e.g. "tumor-expression").
    pub name: String,
}

impl Dataset {
    /// Construct, checking row agreement.
    pub fn new(name: impl Into<String>, x: Matrix, y: Target) -> Self {
        assert_eq!(x.rows(), y.len(), "feature/target row mismatch");
        Dataset { x, y, name: name.into() }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Subset by row indices.
    pub fn gather(&self, idx: &[usize]) -> Dataset {
        Dataset { x: self.x.gather_rows(idx), y: self.y.gather(idx), name: self.name.clone() }
    }

    /// Deterministic shuffled train/val/test split; standardizes features
    /// with statistics fitted on the training portion only.
    pub fn split(&self, val_frac: f64, test_frac: f64, seed: u64, standardize: bool) -> Split {
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        Rng64::new(seed).shuffle(&mut idx);
        // dd-lint: allow(lossy-cast/float-to-int) -- split size: fraction-of-n rounds to a count in [0, n]
        let n_test = (n as f64 * test_frac).round() as usize;
        // dd-lint: allow(lossy-cast/float-to-int) -- split size: fraction-of-n rounds to a count in [0, n]
        let n_val = (n as f64 * val_frac).round() as usize;
        assert!(n_test + n_val < n, "split leaves no training data");
        let test_idx = &idx[n - n_test..];
        let val_idx = &idx[n - n_test - n_val..n - n_test];
        let train_idx = &idx[..n - n_test - n_val];
        let mut train = self.gather(train_idx);
        let mut val = self.gather(val_idx);
        let mut test = self.gather(test_idx);
        let scaler = if standardize {
            let sc = Standardizer::fit(&train.x);
            sc.transform(&mut train.x);
            sc.transform(&mut val.x);
            sc.transform(&mut test.x);
            Some(sc)
        } else {
            None
        };
        Split { train, val, test, scaler }
    }
}

/// The three partitions of a dataset plus the scaler fitted on train.
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Validation partition.
    pub val: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
    /// Standardizer fitted on the training features (when requested).
    pub scaler: Option<Standardizer>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f32);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Dataset::new("toy", x, Target::Labels { labels, classes: 2 })
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = toy(100);
        let s = d.split(0.2, 0.1, 7, false);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 10);
        // Rows are disjoint: collect first feature (unique per row).
        let mut firsts: Vec<f32> = s
            .train
            .x
            .iter_rows()
            .chain(s.val.x.iter_rows())
            .chain(s.test.x.iter_rows())
            .map(|r| r[0])
            .collect();
        firsts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        firsts.dedup();
        assert_eq!(firsts.len(), 100);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(50);
        let a = d.split(0.2, 0.2, 3, false);
        let b = d.split(0.2, 0.2, 3, false);
        assert_eq!(a.train.x, b.train.x);
        let c = d.split(0.2, 0.2, 4, false);
        assert_ne!(a.train.x, c.train.x);
    }

    #[test]
    fn standardization_fits_on_train_only() {
        let d = toy(100);
        let s = d.split(0.2, 0.2, 1, true);
        let means = s.train.x.col_means();
        for m in means {
            assert!(m.abs() < 1e-4);
        }
        // Val/test were transformed with train stats, so not exactly 0-mean.
        assert!(s.scaler.is_some());
    }

    #[test]
    fn labels_follow_rows() {
        let d = toy(10);
        let g = d.gather(&[9, 0]);
        assert_eq!(g.y.labels().unwrap(), &[1, 0]);
        assert_eq!(g.x.get(0, 0), 27.0);
    }

    #[test]
    fn one_hot_matrix_from_labels() {
        let d = toy(4);
        let m = d.y.to_matrix();
        assert_eq!(m.shape(), (4, 2));
        assert_eq!(m.sum(), 4.0);
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn overfull_split_panics() {
        let _ = toy(10).split(0.5, 0.5, 1, false);
    }
}
