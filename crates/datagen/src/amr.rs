//! W6 — antimicrobial resistance (AMR) prediction data.
//!
//! Genomes are summarized as k-mer count vectors (the standard reference-
//! free representation for bacterial genotype-to-phenotype models). A set of
//! *known* resistance k-mers contributes additively to the resistance logit;
//! one planted *epistatic pair* only confers resistance when both k-mers are
//! present — the "novel resistance mechanism" of the abstract, discoverable
//! by attribution on a nonlinear model but invisible to additive baselines.

use crate::dataset::{Dataset, Target};
use dd_tensor::{sigmoid, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmrConfig {
    /// Number of genomes.
    pub genomes: usize,
    /// Number of k-mer features.
    pub kmers: usize,
    /// Number of additive (known-mechanism) resistance k-mers.
    pub additive_kmers: usize,
    /// Effect size of each additive k-mer on the resistance logit.
    pub additive_effect: f32,
    /// Effect size of the epistatic pair (the "novel mechanism").
    pub epistasis_effect: f32,
    /// Background presence probability of each k-mer.
    pub presence: f64,
    /// Label noise on the phenotype.
    pub label_noise: f64,
}

impl Default for AmrConfig {
    fn default() -> Self {
        AmrConfig {
            genomes: 4000,
            kmers: 400,
            additive_kmers: 8,
            additive_effect: 1.5,
            epistasis_effect: 4.0,
            presence: 0.3,
            label_noise: 0.02,
        }
    }
}

/// Generated AMR dataset with the planted mechanism ground truth.
pub struct AmrData {
    /// Presence/absence k-mer features, binary resistance phenotype.
    pub dataset: Dataset,
    /// Indices of the additive resistance k-mers.
    pub additive: Vec<usize>,
    /// The epistatic pair (novel mechanism).
    pub epistatic_pair: (usize, usize),
}

/// Generate an AMR dataset.
pub fn generate(config: &AmrConfig, seed: u64) -> AmrData {
    assert!(config.additive_kmers + 2 <= config.kmers, "mechanism k-mers exceed feature count");
    let mut rng = Rng64::new(seed);
    let mut perm: Vec<usize> = (0..config.kmers).collect();
    rng.shuffle(&mut perm);
    let additive = perm[..config.additive_kmers].to_vec();
    let epistatic_pair = (perm[config.additive_kmers], perm[config.additive_kmers + 1]);

    let mut x = Matrix::zeros(config.genomes, config.kmers);
    let mut labels = Vec::with_capacity(config.genomes);
    // Center the logit so the classes are roughly balanced: each additive
    // k-mer is present with `presence`, so subtract the expected sum.
    let expected = config.additive_kmers as f32 * config.presence as f32 * config.additive_effect
        + config.presence as f32 * config.presence as f32 * config.epistasis_effect;

    for i in 0..config.genomes {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            if rng.bernoulli(config.presence) {
                *v = 1.0;
            }
        }
        let mut logit = -expected;
        for &k in &additive {
            logit += row[k] * config.additive_effect;
        }
        if row[epistatic_pair.0] == 1.0 && row[epistatic_pair.1] == 1.0 {
            logit += config.epistasis_effect;
        }
        let mut resistant = rng.bernoulli(sigmoid(logit) as f64);
        if rng.bernoulli(config.label_noise) {
            resistant = !resistant;
        }
        labels.push(usize::from(resistant));
    }
    AmrData {
        dataset: Dataset::new("amr", x, Target::Labels { labels, classes: 2 }),
        additive,
        epistatic_pair,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_binary() {
        let data = generate(&AmrConfig::default(), 1);
        assert_eq!(data.dataset.len(), 4000);
        assert_eq!(data.dataset.dim(), 400);
        assert!(data.dataset.x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        assert_eq!(data.additive.len(), 8);
    }

    #[test]
    fn classes_not_degenerate() {
        let data = generate(&AmrConfig::default(), 2);
        let pos: usize = data.dataset.y.labels().unwrap().iter().sum();
        let rate = pos as f64 / data.dataset.len() as f64;
        assert!((0.15..0.85).contains(&rate), "resistance rate {rate}");
    }

    #[test]
    fn additive_kmers_raise_resistance_rate() {
        let config = AmrConfig { label_noise: 0.0, ..Default::default() };
        let data = generate(&config, 3);
        let labels = data.dataset.y.labels().unwrap();
        let k = data.additive[0];
        let mut with = (0usize, 0usize);
        let mut without = (0usize, 0usize);
        for (i, &label) in labels.iter().enumerate() {
            if data.dataset.x.get(i, k) == 1.0 {
                with = (with.0 + label, with.1 + 1);
            } else {
                without = (without.0 + label, without.1 + 1);
            }
        }
        let r_with = with.0 as f64 / with.1 as f64;
        let r_without = without.0 as f64 / without.1 as f64;
        assert!(r_with > r_without + 0.1, "with {r_with} without {r_without}");
    }

    #[test]
    fn epistasis_is_non_additive() {
        // Effect of having both pair k-mers must exceed the sum of single
        // effects (which are ~0 since the pair is not additive).
        let config = AmrConfig {
            genomes: 20000,
            additive_kmers: 0,
            epistasis_effect: 5.0,
            label_noise: 0.0,
            ..Default::default()
        };
        let data = generate(&config, 4);
        let labels = data.dataset.y.labels().unwrap();
        let (a, b) = data.epistatic_pair;
        let mut both = (0usize, 0usize);
        let mut only_a = (0usize, 0usize);
        let mut neither = (0usize, 0usize);
        for (i, &label) in labels.iter().enumerate() {
            let ha = data.dataset.x.get(i, a) == 1.0;
            let hb = data.dataset.x.get(i, b) == 1.0;
            match (ha, hb) {
                (true, true) => both = (both.0 + label, both.1 + 1),
                (true, false) => only_a = (only_a.0 + label, only_a.1 + 1),
                (false, false) => neither = (neither.0 + label, neither.1 + 1),
                _ => {}
            }
        }
        let r_both = both.0 as f64 / both.1.max(1) as f64;
        let r_a = only_a.0 as f64 / only_a.1.max(1) as f64;
        let r_none = neither.0 as f64 / neither.1.max(1) as f64;
        assert!(r_both > r_a + 0.3, "both {r_both} vs single {r_a}");
        assert!((r_a - r_none).abs() < 0.1, "single k-mer should be ~neutral");
    }

    #[test]
    fn deterministic() {
        let a = generate(&AmrConfig::default(), 5);
        let b = generate(&AmrConfig::default(), 5);
        assert_eq!(a.dataset.x, b.dataset.x);
        assert_eq!(a.epistatic_pair, b.epistatic_pair);
    }
}
