//! W5 — medical-records treatment outcome data.
//!
//! Synthetic patient episodes: demographics, comorbidity flags and
//! biomarkers, plus an assigned treatment. The outcome depends on
//! treatment × biomarker interactions, so the *optimal* treatment varies by
//! patient — the "identify optimal treatment strategies" task from the
//! abstract is to recover that policy from observational data where the
//! logged treatment assignment is biased (physicians already partially know
//! the rules).

use crate::dataset::{Dataset, Target};
use dd_tensor::{sigmoid, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecordsConfig {
    /// Number of patient episodes.
    pub patients: usize,
    /// Number of comorbidity flags.
    pub comorbidities: usize,
    /// Number of continuous biomarkers.
    pub biomarkers: usize,
    /// Number of available treatments.
    pub treatments: usize,
    /// How strongly the logged assignment follows the true policy
    /// (0 = random assignment, 1 = physicians always right).
    pub assignment_bias: f64,
    /// Outcome observation noise (logit scale).
    pub noise: f32,
}

impl Default for RecordsConfig {
    fn default() -> Self {
        RecordsConfig {
            patients: 6000,
            comorbidities: 8,
            biomarkers: 6,
            treatments: 3,
            assignment_bias: 0.5,
            noise: 0.3,
        }
    }
}

/// Generated records with the generative ground truth needed to score
/// recovered policies.
pub struct RecordsData {
    /// Features `[age, sex, comorbidities…, biomarkers…, one-hot treatment]`,
    /// binary outcome (1 = good).
    pub dataset: Dataset,
    /// True outcome probability for every (patient, treatment) pair
    /// (`patients × treatments`), for policy evaluation.
    pub outcome_probs: Matrix,
    /// The treatment actually logged for each patient.
    pub logged_treatment: Vec<usize>,
    /// The truly optimal treatment for each patient.
    pub optimal_treatment: Vec<usize>,
    /// Width of the patient-covariate block (before the treatment one-hot).
    pub covariate_dim: usize,
}

/// Generate a medical-records dataset.
pub fn generate(config: &RecordsConfig, seed: u64) -> RecordsData {
    assert!(config.treatments >= 2, "need at least two treatments");
    let mut rng = Rng64::new(seed);
    let cov_dim = 2 + config.comorbidities + config.biomarkers;

    // Treatment effect model: each treatment has a base effect, a vector of
    // biomarker interactions and comorbidity penalties.
    let base: Vec<f32> = (0..config.treatments).map(|_| rng.normal(0.3, 0.3) as f32).collect();
    let biomarker_w = Matrix::randn(config.treatments, config.biomarkers, 0.0, 1.0, &mut rng);
    let comorbid_w = Matrix::randn(config.treatments, config.comorbidities, -0.3, 0.4, &mut rng);

    let feat_dim = cov_dim + config.treatments;
    let mut x = Matrix::zeros(config.patients, feat_dim);
    let mut labels = Vec::with_capacity(config.patients);
    let mut outcome_probs = Matrix::zeros(config.patients, config.treatments);
    let mut logged = Vec::with_capacity(config.patients);
    let mut optimal = Vec::with_capacity(config.patients);

    for i in 0..config.patients {
        let age = rng.range(20.0, 90.0) as f32 / 90.0;
        let sex = rng.below(2) as f32;
        let comorbid: Vec<f32> =
            (0..config.comorbidities).map(|_| f32::from(rng.bernoulli(0.2))).collect();
        let bio: Vec<f32> = (0..config.biomarkers).map(|_| rng.normal(0.0, 1.0) as f32).collect();

        // True success probability per treatment.
        let mut probs = vec![0f32; config.treatments];
        for (t, prob) in probs.iter_mut().enumerate() {
            let mut logit = base[t] - 0.8 * age;
            for (j, &b) in bio.iter().enumerate() {
                logit += biomarker_w.get(t, j) * b;
            }
            for (j, &c) in comorbid.iter().enumerate() {
                logit += comorbid_w.get(t, j) * c;
            }
            *prob = sigmoid(logit);
        }
        outcome_probs.row_mut(i).copy_from_slice(&probs);
        let best = probs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map_or(0, |(t, _)| t);
        optimal.push(best);

        // Logged assignment: physician picks the best with probability
        // `assignment_bias`, otherwise uniform.
        let t =
            if rng.bernoulli(config.assignment_bias) { best } else { rng.below(config.treatments) };
        logged.push(t);

        // Observed outcome.
        let noisy_logit =
            (probs[t].clamp(1e-6, 1.0 - 1e-6) / (1.0 - probs[t].clamp(1e-6, 1.0 - 1e-6))).ln()
                + rng.normal(0.0, config.noise as f64) as f32;
        let outcome = usize::from(rng.bernoulli(sigmoid(noisy_logit) as f64));
        labels.push(outcome);

        // Feature row.
        let row = x.row_mut(i);
        row[0] = age;
        row[1] = sex;
        row[2..2 + config.comorbidities].copy_from_slice(&comorbid);
        row[2 + config.comorbidities..cov_dim].copy_from_slice(&bio);
        row[cov_dim + t] = 1.0;
    }

    RecordsData {
        dataset: Dataset::new("medical-records", x, Target::Labels { labels, classes: 2 }),
        outcome_probs,
        logged_treatment: logged,
        optimal_treatment: optimal,
        covariate_dim: cov_dim,
    }
}

/// Expected success rate of following a policy (maps patient → treatment),
/// measured against the generative truth.
pub fn policy_value(data: &RecordsData, policy: &[usize]) -> f64 {
    assert_eq!(policy.len(), data.outcome_probs.rows());
    policy.iter().enumerate().map(|(i, &t)| data.outcome_probs.get(i, t) as f64).sum::<f64>()
        / policy.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let config = RecordsConfig { patients: 300, ..Default::default() };
        let data = generate(&config, 1);
        assert_eq!(data.dataset.len(), 300);
        assert_eq!(data.dataset.dim(), data.covariate_dim + config.treatments);
        assert_eq!(data.outcome_probs.shape(), (300, 3));
    }

    #[test]
    fn exactly_one_treatment_flag_set() {
        let data = generate(&RecordsConfig::default(), 2);
        for i in 0..data.dataset.len() {
            let row = data.dataset.x.row(i);
            let flags: f32 = row[data.covariate_dim..].iter().sum();
            assert_eq!(flags, 1.0);
        }
    }

    #[test]
    fn optimal_policy_beats_random_and_logged() {
        let data = generate(&RecordsConfig::default(), 3);
        let v_opt = policy_value(&data, &data.optimal_treatment);
        let v_logged = policy_value(&data, &data.logged_treatment);
        let fixed: Vec<usize> = vec![0; data.dataset.len()];
        let v_fixed = policy_value(&data, &fixed);
        assert!(v_opt > v_logged, "optimal {v_opt} <= logged {v_logged}");
        assert!(v_opt > v_fixed, "optimal {v_opt} <= fixed {v_fixed}");
        // Biased logging means logged policy is better than a fixed arm.
        assert!(v_logged > v_fixed - 0.02);
    }

    #[test]
    fn assignment_bias_moves_logged_toward_optimal() {
        let unbiased = generate(&RecordsConfig { assignment_bias: 0.0, ..Default::default() }, 4);
        let biased = generate(&RecordsConfig { assignment_bias: 0.9, ..Default::default() }, 4);
        let agree = |d: &RecordsData| {
            d.logged_treatment.iter().zip(&d.optimal_treatment).filter(|(a, b)| a == b).count()
                as f64
                / d.logged_treatment.len() as f64
        };
        assert!(agree(&biased) > agree(&unbiased) + 0.3);
    }

    #[test]
    fn outcomes_correlate_with_probs() {
        let data = generate(&RecordsConfig { noise: 0.01, ..Default::default() }, 5);
        let labels = data.dataset.y.labels().unwrap();
        // Mean outcome among high-prob assignments should beat low-prob.
        let mut high = (0usize, 0usize);
        let mut low = (0usize, 0usize);
        for (i, &t) in data.logged_treatment.iter().enumerate() {
            let p = data.outcome_probs.get(i, t);
            if p > 0.7 {
                high = (high.0 + labels[i], high.1 + 1);
            } else if p < 0.3 {
                low = (low.0 + labels[i], low.1 + 1);
            }
        }
        let rate_high = high.0 as f64 / high.1.max(1) as f64;
        let rate_low = low.0 as f64 / low.1.max(1) as f64;
        assert!(rate_high > rate_low + 0.3, "high {rate_high} low {rate_low}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&RecordsConfig::default(), 6);
        let b = generate(&RecordsConfig::default(), 6);
        assert_eq!(a.dataset.x, b.dataset.x);
        assert_eq!(a.optimal_treatment, b.optimal_treatment);
    }
}
