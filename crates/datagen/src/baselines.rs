//! Classical baselines the driver-workload DNNs are compared against.
//!
//! The abstract positions DNNs as "routinely outperforming" prior methods;
//! our experiments quantify that against these from-scratch classical
//! models: ridge regression (conjugate gradient on the normal equations),
//! logistic regression (full-batch gradient descent with momentum), k-NN,
//! and PCA via orthogonal power iteration (baseline for the autoencoder).

use dd_tensor::{matmul, matmul_tn, matvec, sigmoid, Matrix, Rng64};

/// Ridge regression solved by conjugate gradient on
/// `(XᵀX + λI) w = Xᵀy`; handles a single target column plus intercept.
pub struct Ridge {
    weights: Vec<f32>,
    intercept: f32,
}

impl Ridge {
    /// Fit with regularization strength `lambda`.
    pub fn fit(x: &Matrix, y: &[f32], lambda: f32) -> Self {
        assert_eq!(x.rows(), y.len(), "ridge row mismatch");
        assert!(x.rows() > 0, "empty design matrix");
        let d = x.cols();
        // Center targets; fit intercept separately (standard trick).
        let y_mean = y.iter().map(|&v| v as f64).sum::<f64>() as f32 / y.len() as f32;
        let yc: Vec<f32> = y.iter().map(|&v| v - y_mean).collect();

        // Gram matrix A = XᵀX + λI (d×d) and b = Xᵀ yc.
        let gram = matmul_tn(x, x);
        let ycm = Matrix::from_vec(yc.len(), 1, yc);
        let b = matmul_tn(x, &ycm).into_vec();

        // Conjugate gradient.
        let apply = |v: &[f32]| -> Vec<f32> {
            let mut out = matvec(&gram, v);
            for (o, &vi) in out.iter_mut().zip(v) {
                *o += lambda * vi;
            }
            out
        };
        let mut w = vec![0f32; d];
        let mut r = b.clone();
        let mut p = r.clone();
        let mut rs_old: f64 = r.iter().map(|&v| v as f64 * v as f64).sum();
        for _ in 0..(2 * d).max(50) {
            if rs_old.sqrt() < 1e-7 {
                break;
            }
            let ap = apply(&p);
            let p_ap: f64 = p.iter().zip(&ap).map(|(&a, &b)| a as f64 * b as f64).sum();
            if p_ap.abs() < 1e-30 {
                break;
            }
            let alpha = (rs_old / p_ap) as f32;
            for ((wi, &pi), (ri, &api)) in w.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
                *wi += alpha * pi;
                *ri -= alpha * api;
            }
            let rs_new: f64 = r.iter().map(|&v| v as f64 * v as f64).sum();
            let beta = (rs_new / rs_old) as f32;
            for (pi, &ri) in p.iter_mut().zip(&r) {
                *pi = ri + beta * *pi;
            }
            rs_old = rs_new;
        }
        Ridge { weights: w, intercept: y_mean }
    }

    /// Predict one value per row.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        let mut out = matvec(x, &self.weights);
        for v in &mut out {
            *v += self.intercept;
        }
        out
    }

    /// Fitted coefficient vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

/// L2-regularized logistic regression (binary), full-batch gradient descent
/// with momentum.
pub struct Logistic {
    weights: Vec<f32>,
    bias: f32,
}

impl Logistic {
    /// Fit on labels in {0, 1}.
    pub fn fit(x: &Matrix, labels: &[usize], lambda: f32, iters: usize, lr: f32) -> Self {
        assert_eq!(x.rows(), labels.len(), "logistic row mismatch");
        let n = x.rows();
        let d = x.cols();
        let mut w = vec![0f32; d];
        let mut b = 0f32;
        let mut vw = vec![0f32; d];
        let mut vb = 0f32;
        let momentum = 0.9f32;
        let y: Vec<f32> = labels.iter().map(|&l| l as f32).collect();
        for _ in 0..iters {
            // p = sigmoid(Xw + b); grad = Xᵀ(p - y)/n + λw.
            let mut p = matvec(x, &w);
            for (pi, _) in p.iter_mut().zip(0..n) {
                *pi = sigmoid(*pi + b);
            }
            let resid: Vec<f32> = p.iter().zip(&y).map(|(&pi, &yi)| pi - yi).collect();
            let rm = Matrix::from_vec(n, 1, resid.clone());
            let mut grad = matmul_tn(x, &rm).into_vec();
            let inv_n = 1.0 / n as f32;
            for (g, &wi) in grad.iter_mut().zip(&w) {
                *g = *g * inv_n + lambda * wi;
            }
            let gb = resid.iter().sum::<f32>() * inv_n;
            for ((wi, vi), &gi) in w.iter_mut().zip(&mut vw).zip(&grad) {
                *vi = momentum * *vi - lr * gi;
                *wi += *vi;
            }
            vb = momentum * vb - lr * gb;
            b += vb;
        }
        Logistic { weights: w, bias: b }
    }

    /// Multiclass one-vs-rest wrapper: returns per-class score matrix.
    pub fn fit_multiclass(
        x: &Matrix,
        labels: &[usize],
        classes: usize,
        lambda: f32,
        iters: usize,
        lr: f32,
    ) -> Vec<Logistic> {
        (0..classes)
            .map(|c| {
                let bin: Vec<usize> = labels.iter().map(|&l| usize::from(l == c)).collect();
                Logistic::fit(x, &bin, lambda, iters, lr)
            })
            .collect()
    }

    /// Probability of class 1 per row.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let mut out = matvec(x, &self.weights);
        for v in &mut out {
            *v = sigmoid(*v + self.bias);
        }
        out
    }

    /// Hard labels at threshold 0.5.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x).iter().map(|&p| usize::from(p > 0.5)).collect()
    }

    /// Fitted coefficient vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

/// Score matrix for a one-vs-rest classifier bank (rows = samples,
/// cols = classes), suitable for `dd_nn::metrics::accuracy`.
pub fn ovr_scores(models: &[Logistic], x: &Matrix) -> Matrix {
    let mut scores = Matrix::zeros(x.rows(), models.len());
    for (c, m) in models.iter().enumerate() {
        for (i, p) in m.predict_proba(x).into_iter().enumerate() {
            scores.set(i, c, p);
        }
    }
    scores
}

/// k-nearest-neighbour classifier (Euclidean, majority vote).
pub struct Knn {
    x: Matrix,
    labels: Vec<usize>,
    classes: usize,
    k: usize,
}

impl Knn {
    /// Store the training set.
    pub fn fit(x: Matrix, labels: Vec<usize>, classes: usize, k: usize) -> Self {
        assert_eq!(x.rows(), labels.len());
        assert!(k >= 1 && k <= x.rows(), "k must be in [1, n]");
        Knn { x, labels, classes, k }
    }

    /// Predict one label per query row.
    pub fn predict(&self, q: &Matrix) -> Vec<usize> {
        assert_eq!(q.cols(), self.x.cols(), "knn dimension mismatch");
        q.iter_rows()
            .map(|row| {
                // Partial selection of the k smallest distances.
                let mut dists: Vec<(f32, usize)> = self
                    .x
                    .iter_rows()
                    .zip(&self.labels)
                    .map(|(tr, &l)| {
                        let d: f32 = row.iter().zip(tr).map(|(&a, &b)| (a - b) * (a - b)).sum();
                        (d, l)
                    })
                    .collect();
                dists.select_nth_unstable_by(self.k - 1, |a, b| {
                    a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut votes = vec![0usize; self.classes];
                for &(_, l) in &dists[..self.k] {
                    votes[l] += 1;
                }
                votes.iter().enumerate().max_by_key(|(_, &v)| v).map_or(0, |(c, _)| c)
            })
            .collect()
    }
}

/// PCA by orthogonal power iteration; the classical baseline for the
/// expression autoencoder (reconstruction through the top-k subspace).
pub struct Pca {
    /// `components × dim`, orthonormal rows.
    components: Matrix,
    means: Vec<f32>,
}

impl Pca {
    /// Fit the top `k` principal components.
    pub fn fit(x: &Matrix, k: usize, iters: usize, seed: u64) -> Self {
        assert!(k >= 1 && k <= x.cols(), "component count out of range");
        let means = x.col_means();
        let mut xc = x.clone();
        for i in 0..xc.rows() {
            let row = xc.row_mut(i);
            for (v, &m) in row.iter_mut().zip(&means) {
                *v -= m;
            }
        }
        let cov = matmul_tn(&xc, &xc); // unnormalized covariance is fine
        let d = x.cols();
        let mut rng = Rng64::new(seed);
        let mut comp = Matrix::randn(k, d, 0.0, 1.0, &mut rng);
        for _ in 0..iters {
            // Power step: C ← C · Cov, then Gram-Schmidt orthonormalize.
            comp = matmul(&comp, &cov);
            gram_schmidt(&mut comp);
        }
        Pca { components: comp, means }
    }

    /// Project rows onto the component subspace (`n × k`).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut xc = x.clone();
        for i in 0..xc.rows() {
            let row = xc.row_mut(i);
            for (v, &m) in row.iter_mut().zip(&self.means) {
                *v -= m;
            }
        }
        dd_tensor::matmul_nt(&xc, &self.components)
    }

    /// Reconstruct from the subspace back to the original dimension.
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        let z = self.transform(x);
        let mut rec = matmul(&z, &self.components);
        for i in 0..rec.rows() {
            let row = rec.row_mut(i);
            for (v, &m) in row.iter_mut().zip(&self.means) {
                *v += m;
            }
        }
        rec
    }

    /// The orthonormal component matrix.
    pub fn components(&self) -> &Matrix {
        &self.components
    }
}

/// In-place modified Gram-Schmidt over matrix rows.
fn gram_schmidt(m: &mut Matrix) {
    let rows = m.rows();
    let cols = m.cols();
    for i in 0..rows {
        for j in 0..i {
            let proj = dd_tensor::dot(m.row(i), m.row(j));
            // Rows j < i are already unit length; split the buffer so row j
            // (immutable) and row i (mutable) can be held together.
            let (head, tail) = m.as_mut_slice().split_at_mut(i * cols);
            let rj = &head[j * cols..(j + 1) * cols];
            let ri = &mut tail[..cols];
            for (a, &b) in ri.iter_mut().zip(rj) {
                *a -= proj * b;
            }
        }
        let norm = dd_tensor::dot(m.row(i), m.row(i)).sqrt().max(1e-12);
        let inv = 1.0 / norm;
        for v in m.row_mut(i) {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_recovers_linear_coefficients() {
        let mut rng = Rng64::new(1);
        let x = Matrix::randn(400, 5, 0.0, 1.0, &mut rng);
        let true_w = [2.0f32, -1.0, 0.5, 0.0, 3.0];
        let y: Vec<f32> = (0..400)
            .map(|i| dd_tensor::dot(x.row(i), &true_w) + 1.0 + rng.normal(0.0, 0.01) as f32)
            .collect();
        let model = Ridge::fit(&x, &y, 1e-3);
        for (est, want) in model.weights().iter().zip(&true_w) {
            assert!((est - want).abs() < 0.05, "est {est} want {want}");
        }
        let preds = model.predict(&x);
        let r2 = dd_tensor::r2_score(&y, &preds);
        assert!(r2 > 0.99, "r2 {r2}");
    }

    #[test]
    fn ridge_regularization_shrinks() {
        let mut rng = Rng64::new(2);
        let x = Matrix::randn(100, 3, 0.0, 1.0, &mut rng);
        let y: Vec<f32> = (0..100).map(|i| 5.0 * x.get(i, 0)).collect();
        let loose = Ridge::fit(&x, &y, 1e-4);
        let tight = Ridge::fit(&x, &y, 1e3);
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs() * 0.5);
    }

    #[test]
    fn logistic_separates_linear_classes() {
        let mut rng = Rng64::new(3);
        let x = Matrix::randn(500, 4, 0.0, 1.0, &mut rng);
        let labels: Vec<usize> =
            (0..500).map(|i| usize::from(x.get(i, 0) - x.get(i, 1) > 0.0)).collect();
        let model = Logistic::fit(&x, &labels, 1e-4, 300, 0.5);
        let preds = model.predict(&x);
        let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 500.0;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn logistic_multiclass_ovr() {
        let mut rng = Rng64::new(4);
        // Three gaussian blobs along axes.
        let mut x = Matrix::zeros(300, 2);
        let mut labels = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            let (cx, cy) = [(3.0, 0.0), (-3.0, 3.0), (0.0, -3.0)][c];
            x.set(i, 0, cx + rng.normal(0.0, 0.5) as f32);
            x.set(i, 1, cy + rng.normal(0.0, 0.5) as f32);
            labels.push(c);
        }
        let models = Logistic::fit_multiclass(&x, &labels, 3, 1e-4, 200, 0.5);
        let scores = ovr_scores(&models, &x);
        let preds = scores.argmax_rows();
        let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 300.0;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn knn_classifies_blobs() {
        let mut rng = Rng64::new(5);
        let mut x = Matrix::zeros(200, 2);
        let mut labels = Vec::new();
        for i in 0..200 {
            let c = i % 2;
            let center = if c == 0 { 2.0 } else { -2.0 };
            x.set(i, 0, center + rng.normal(0.0, 0.5) as f32);
            x.set(i, 1, rng.normal(0.0, 0.5) as f32);
            labels.push(c);
        }
        let knn = Knn::fit(x.clone(), labels.clone(), 2, 5);
        let preds = knn.predict(&x);
        let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 200.0;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn knn_k1_memorizes() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let knn = Knn::fit(x.clone(), vec![0, 1, 0], 2, 1);
        assert_eq!(knn.predict(&x), vec![0, 1, 0]);
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // Data stretched along (1,1)/√2.
        let mut rng = Rng64::new(6);
        let mut x = Matrix::zeros(500, 2);
        for i in 0..500 {
            let t = rng.normal(0.0, 3.0) as f32;
            let n = rng.normal(0.0, 0.1) as f32;
            x.set(i, 0, t + n);
            x.set(i, 1, t - n);
        }
        let pca = Pca::fit(&x, 1, 30, 7);
        let c = pca.components().row(0);
        let alignment = (c[0] * c[1]).abs() / (c[0] * c[0] + c[1] * c[1]) * 2.0;
        assert!(alignment > 0.99, "component {c:?}");
    }

    #[test]
    fn pca_reconstruction_error_drops_with_k() {
        let mut rng = Rng64::new(8);
        // Rank-3 data in 10 dims plus tiny noise.
        let z = Matrix::randn(300, 3, 0.0, 1.0, &mut rng);
        let basis = Matrix::randn(3, 10, 0.0, 1.0, &mut rng);
        let mut x = matmul(&z, &basis);
        for v in x.as_mut_slice() {
            *v += rng.normal(0.0, 0.01) as f32;
        }
        let err = |k: usize| {
            let pca = Pca::fit(&x, k, 50, 9);
            let rec = pca.reconstruct(&x);
            rec.zip_map(&x, |a, b| (a - b) * (a - b)).mean()
        };
        let e1 = err(1);
        let e3 = err(3);
        assert!(e3 < e1 * 0.1, "k=1 err {e1}, k=3 err {e3}");
        assert!(e3 < 0.01, "rank-3 data should reconstruct, err {e3}");
    }

    #[test]
    fn pca_components_orthonormal() {
        let mut rng = Rng64::new(10);
        let x = Matrix::randn(200, 8, 0.0, 1.0, &mut rng);
        let pca = Pca::fit(&x, 4, 40, 11);
        let c = pca.components();
        for i in 0..4 {
            for j in 0..4 {
                let d = dd_tensor::dot(c.row(i), c.row(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-3, "<c{i},c{j}> = {d}");
            }
        }
    }
}
