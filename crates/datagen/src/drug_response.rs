//! W2 — drug response prediction data (P1B3-style).
//!
//! Cell lines carry latent pathway activities; drugs carry descriptor
//! vectors and target specific pathways with some potency. The measured
//! growth fraction follows a Hill dose-response curve whose IC50 depends on
//! the interaction between the drug's targets and the cell line's pathway
//! activities — a multiplicative structure linear models cannot capture,
//! which is exactly why the paper's DNNs earn their keep here.

use crate::dataset::{Dataset, Target};
use crate::expression::{ExpressionModel, ExpressionSampler};
use dd_tensor::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrugResponseConfig {
    /// Number of distinct cell lines.
    pub cell_lines: usize,
    /// Number of distinct drugs.
    pub drugs: usize,
    /// Number of (cell line, drug, dose) measurements to sample.
    pub measurements: usize,
    /// Drug descriptor dimensionality.
    pub descriptor_dim: usize,
    /// Observation noise on the growth fraction.
    pub noise: f32,
    /// Expression background for the cell lines.
    pub expression: ExpressionModel,
}

impl Default for DrugResponseConfig {
    fn default() -> Self {
        DrugResponseConfig {
            cell_lines: 60,
            drugs: 100,
            measurements: 4000,
            descriptor_dim: 64,
            noise: 0.05,
            expression: ExpressionModel { genes: 256, ..Default::default() },
        }
    }
}

/// Generated drug-response data with generative ground truth.
pub struct DrugResponseData {
    /// Features `[cell expression | drug descriptors | log-dose]`,
    /// target = growth fraction in [0, 1].
    pub dataset: Dataset,
    /// Expression profile per cell line (`cell_lines × genes`).
    pub cell_expression: Matrix,
    /// Descriptor vector per drug (`drugs × descriptor_dim`).
    pub drug_descriptors: Matrix,
    /// Which (cell, drug) pair produced each measurement row.
    pub pair_index: Vec<(usize, usize)>,
    /// The dose (raw, not log) for each measurement.
    pub doses: Vec<f32>,
    /// Latent pathway activity per cell line (generative ground truth).
    pub cell_factors: Matrix,
    /// Pathway target vector per drug (generative ground truth).
    pub drug_targets: Matrix,
    /// Per-drug baseline log10 IC50.
    pub base_log_ic50: Vec<f32>,
    /// Per-drug Hill coefficient.
    pub hills: Vec<f32>,
}

impl DrugResponseData {
    /// Ground-truth log10 IC50 of drug `d` against cell line `c`
    /// (clamped to the generator's working range).
    pub fn true_log_ic50(&self, c: usize, d: usize) -> f32 {
        let alignment: f32 = (0..self.drug_targets.cols())
            .map(|p| self.drug_targets.get(d, p) * self.cell_factors.get(c, p))
            .sum();
        (self.base_log_ic50[d] - 0.6 * alignment).clamp(-3.0, 3.0)
    }
}

/// Hill curve: growth fraction at `dose` for a drug with the given `ic50`
/// and Hill coefficient.
pub fn hill_growth(dose: f32, ic50: f32, hill: f32) -> f32 {
    let ratio = (dose / ic50).powf(hill);
    1.0 / (1.0 + ratio)
}

/// Generate a drug-response dataset.
pub fn generate(config: &DrugResponseConfig, seed: u64) -> DrugResponseData {
    assert!(config.cell_lines > 0 && config.drugs > 0 && config.measurements > 0);
    let mut rng = Rng64::new(seed);
    let sampler = ExpressionSampler::new(config.expression.clone(), &mut rng);

    // Cell lines: latent factors + rendered expression.
    let (cell_expression, cell_factors) = sampler.sample(config.cell_lines, &mut rng);

    // Drugs: each targets 1-3 pathways with signed potency; descriptors are
    // a noisy linear embedding of the target vector (so the descriptor is
    // informative but not trivially invertible).
    let pathways = config.expression.pathways;
    let mut drug_targets = Matrix::zeros(config.drugs, pathways);
    for d in 0..config.drugs {
        let k = 1 + rng.below(3);
        for _ in 0..k {
            let p = rng.below(pathways);
            drug_targets.set(d, p, rng.normal(0.0, 1.0) as f32);
        }
    }
    let embed = Matrix::randn(pathways, config.descriptor_dim, 0.0, 1.0, &mut rng);
    let mut drug_descriptors = dd_tensor::matmul(&drug_targets, &embed);
    for v in drug_descriptors.as_mut_slice() {
        *v += rng.normal(0.0, 0.2) as f32;
    }

    // Per-drug baseline potency.
    let base_log_ic50: Vec<f32> = (0..config.drugs).map(|_| rng.normal(0.0, 0.5) as f32).collect();
    let hills: Vec<f32> = (0..config.drugs).map(|_| rng.range(0.8, 2.5) as f32).collect();

    let feat_dim = config.expression.genes + config.descriptor_dim + 1;
    let mut x = Matrix::zeros(config.measurements, feat_dim);
    let mut y = Matrix::zeros(config.measurements, 1);
    let mut pair_index = Vec::with_capacity(config.measurements);
    let mut doses = Vec::with_capacity(config.measurements);

    for i in 0..config.measurements {
        let c = rng.below(config.cell_lines);
        let d = rng.below(config.drugs);
        // Log-uniform dose over 4 orders of magnitude.
        let log_dose = rng.range(-2.0, 2.0) as f32;
        let dose = 10f32.powf(log_dose);

        // Sensitivity: alignment between drug targets and cell pathway
        // activity shifts the IC50 (matched target ⇒ potent ⇒ low IC50).
        let alignment: f32 =
            (0..pathways).map(|p| drug_targets.get(d, p) * cell_factors.get(c, p)).sum();
        let log_ic50 = base_log_ic50[d] - 0.6 * alignment;
        let ic50 = 10f32.powf(log_ic50.clamp(-3.0, 3.0));
        let growth =
            hill_growth(dose, ic50, hills[d]) + rng.normal(0.0, config.noise as f64) as f32;

        let row = x.row_mut(i);
        row[..config.expression.genes].copy_from_slice(cell_expression.row(c));
        row[config.expression.genes..config.expression.genes + config.descriptor_dim]
            .copy_from_slice(drug_descriptors.row(d));
        row[feat_dim - 1] = log_dose;
        y.set(i, 0, growth.clamp(0.0, 1.0));
        pair_index.push((c, d));
        doses.push(dose);
    }

    DrugResponseData {
        dataset: Dataset::new("drug-response", x, Target::Regression(y)),
        cell_expression,
        drug_descriptors,
        pair_index,
        doses,
        cell_factors,
        drug_targets,
        base_log_ic50,
        hills,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hill_curve_properties() {
        // At dose = IC50, growth = 0.5 regardless of hill coefficient.
        for &h in &[0.5f32, 1.0, 2.0] {
            assert!((hill_growth(1.0, 1.0, h) - 0.5).abs() < 1e-6);
        }
        // Monotone decreasing in dose.
        let g_low = hill_growth(0.01, 1.0, 1.5);
        let g_high = hill_growth(100.0, 1.0, 1.5);
        assert!(g_low > 0.9 && g_high < 0.1);
    }

    #[test]
    fn shapes_and_ranges() {
        let config = DrugResponseConfig { measurements: 500, ..Default::default() };
        let data = generate(&config, 1);
        assert_eq!(data.dataset.len(), 500);
        assert_eq!(data.dataset.dim(), config.expression.genes + config.descriptor_dim + 1);
        if let Target::Regression(y) = &data.dataset.y {
            for &v in y.as_slice() {
                assert!((0.0..=1.0).contains(&v), "growth {v} out of range");
            }
        } else {
            panic!("expected regression target");
        }
        assert_eq!(data.pair_index.len(), 500);
    }

    #[test]
    fn dose_monotonicity_in_expectation() {
        // Split measurements by dose; high doses must suppress growth more.
        let config = DrugResponseConfig { measurements: 4000, noise: 0.0, ..Default::default() };
        let data = generate(&config, 2);
        let y = match &data.dataset.y {
            Target::Regression(m) => m,
            _ => unreachable!(),
        };
        let mut low = (0f64, 0usize);
        let mut high = (0f64, 0usize);
        for (i, &dose) in data.doses.iter().enumerate() {
            if dose < 0.1 {
                low = (low.0 + y.get(i, 0) as f64, low.1 + 1);
            } else if dose > 10.0 {
                high = (high.0 + y.get(i, 0) as f64, high.1 + 1);
            }
        }
        let mean_low = low.0 / low.1 as f64;
        let mean_high = high.0 / high.1 as f64;
        assert!(mean_low > mean_high + 0.2, "low-dose growth {mean_low} vs high-dose {mean_high}");
    }

    #[test]
    fn interaction_signal_exists() {
        // The same drug at the same dose must produce different growth on
        // different cell lines (sensitivity is cell-dependent).
        let config = DrugResponseConfig { measurements: 8000, noise: 0.0, ..Default::default() };
        let data = generate(&config, 3);
        let y = match &data.dataset.y {
            Target::Regression(m) => m,
            _ => unreachable!(),
        };
        // Group by drug; compute variance of growth across cells at
        // mid-range doses.
        let mut by_drug: std::collections::HashMap<usize, Vec<f32>> = Default::default();
        for (i, &(_, d)) in data.pair_index.iter().enumerate() {
            if (0.5..2.0).contains(&data.doses[i]) {
                by_drug.entry(d).or_default().push(y.get(i, 0));
            }
        }
        let mut any_variable = false;
        for (_, v) in by_drug {
            if v.len() >= 5 {
                let mean = v.iter().sum::<f32>() / v.len() as f32;
                let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
                if var > 0.01 {
                    any_variable = true;
                }
            }
        }
        assert!(any_variable, "growth shows no cell-line dependence");
    }

    #[test]
    fn deterministic() {
        let config = DrugResponseConfig { measurements: 100, ..Default::default() };
        let a = generate(&config, 7);
        let b = generate(&config, 7);
        assert_eq!(a.dataset.x, b.dataset.x);
    }

    #[test]
    fn true_ic50_predicts_measured_growth() {
        // Noiseless growth at the ground-truth IC50 dose must be ~0.5 —
        // i.e. `true_log_ic50` really is the generator's IC50.
        let config = DrugResponseConfig { measurements: 3000, noise: 0.0, ..Default::default() };
        let data = generate(&config, 8);
        let y = match &data.dataset.y {
            Target::Regression(m) => m,
            _ => unreachable!(),
        };
        let mut checked = 0;
        for (i, &(c, d)) in data.pair_index.iter().enumerate() {
            let log_dose = data.doses[i].log10();
            let diff = (log_dose - data.true_log_ic50(c, d)).abs();
            if diff < 0.05 {
                let g = y.get(i, 0);
                assert!((g - 0.5).abs() < 0.1, "growth at IC50 was {g}");
                checked += 1;
            }
        }
        assert!(checked > 3, "too few near-IC50 measurements ({checked})");
    }
}
