//! Latent-pathway gene-expression model.
//!
//! The shared generative substrate for the cancer workloads: expression
//! profiles are produced by a low-rank latent "pathway" factor model plus
//! per-gene noise — the structure that makes autoencoder compression (P1B1-
//! style) and expression-based prediction learnable, mirroring how real
//! tumor expression is dominated by a modest number of transcriptional
//! programs.

use dd_tensor::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Parameters of the latent factor model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpressionModel {
    /// Number of genes (feature dimensionality).
    pub genes: usize,
    /// Number of latent pathway factors.
    pub pathways: usize,
    /// Standard deviation of per-gene observation noise.
    pub noise: f32,
    /// Loading sparsity: fraction of genes participating in each pathway.
    pub loading_density: f64,
}

impl Default for ExpressionModel {
    fn default() -> Self {
        ExpressionModel { genes: 512, pathways: 12, noise: 0.3, loading_density: 0.15 }
    }
}

/// A sampled expression generator with fixed loadings.
pub struct ExpressionSampler {
    model: ExpressionModel,
    /// `pathways × genes` loading matrix (sparse rows).
    loadings: Matrix,
    /// Per-gene baseline expression.
    baseline: Vec<f32>,
}

impl ExpressionSampler {
    /// Draw loadings and baselines for a fixed gene universe.
    pub fn new(model: ExpressionModel, rng: &mut Rng64) -> Self {
        assert!(model.genes > 0 && model.pathways > 0, "model needs genes and pathways");
        let mut loadings = Matrix::zeros(model.pathways, model.genes);
        for p in 0..model.pathways {
            let row = loadings.row_mut(p);
            for v in row.iter_mut() {
                if rng.bernoulli(model.loading_density) {
                    *v = rng.normal(0.0, 1.0) as f32;
                }
            }
        }
        let baseline: Vec<f32> = (0..model.genes).map(|_| rng.normal(0.0, 0.5) as f32).collect();
        ExpressionSampler { model, loadings, baseline }
    }

    /// The generating parameters.
    pub fn model(&self) -> &ExpressionModel {
        &self.model
    }

    /// The pathway loading matrix (ground truth for factor-recovery tests).
    pub fn loadings(&self) -> &Matrix {
        &self.loadings
    }

    /// Sample latent pathway activities for one profile.
    pub fn sample_factors(&self, rng: &mut Rng64) -> Vec<f32> {
        (0..self.model.pathways).map(|_| rng.normal(0.0, 1.0) as f32).collect()
    }

    /// Render one expression profile from latent factors.
    pub fn render(&self, factors: &[f32], rng: &mut Rng64) -> Vec<f32> {
        assert_eq!(factors.len(), self.model.pathways);
        let mut profile = self.baseline.clone();
        for (p, &f) in factors.iter().enumerate() {
            for (g, &l) in profile.iter_mut().zip(self.loadings.row(p)) {
                *g += f * l;
            }
        }
        for g in &mut profile {
            *g += rng.normal(0.0, self.model.noise as f64) as f32;
        }
        profile
    }

    /// Sample a matrix of `n` profiles together with their latent factors.
    pub fn sample(&self, n: usize, rng: &mut Rng64) -> (Matrix, Matrix) {
        let mut x = Matrix::zeros(n, self.model.genes);
        let mut z = Matrix::zeros(n, self.model.pathways);
        for i in 0..n {
            let f = self.sample_factors(rng);
            z.row_mut(i).copy_from_slice(&f);
            let profile = self.render(&f, rng);
            x.row_mut(i).copy_from_slice(&profile);
        }
        (x, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let model = ExpressionModel { genes: 100, pathways: 5, ..Default::default() };
        let s1 = ExpressionSampler::new(model.clone(), &mut Rng64::new(1));
        let s2 = ExpressionSampler::new(model, &mut Rng64::new(1));
        assert_eq!(s1.loadings(), s2.loadings());
        let (x, z) = s1.sample(20, &mut Rng64::new(2));
        assert_eq!(x.shape(), (20, 100));
        assert_eq!(z.shape(), (20, 5));
    }

    #[test]
    fn low_rank_structure_dominates_noise() {
        // With low noise, profiles sharing factors correlate strongly.
        let model = ExpressionModel { genes: 300, pathways: 4, noise: 0.05, loading_density: 0.3 };
        let s = ExpressionSampler::new(model, &mut Rng64::new(3));
        let mut rng = Rng64::new(4);
        let f = s.sample_factors(&mut rng);
        let a = s.render(&f, &mut rng);
        let b = s.render(&f, &mut rng);
        let corr = dd_tensor::pearson(&a, &b);
        assert!(corr > 0.9, "same-factor profiles should correlate, got {corr}");
        // Independent factors correlate much less.
        let g = s.sample_factors(&mut rng);
        let c = s.render(&g, &mut rng);
        let cross = dd_tensor::pearson(&a, &c);
        assert!(cross.abs() < 0.9, "independent profiles correlate {cross}");
    }

    #[test]
    fn loading_density_respected() {
        let model = ExpressionModel { genes: 1000, pathways: 3, noise: 0.1, loading_density: 0.1 };
        let s = ExpressionSampler::new(model, &mut Rng64::new(5));
        let nonzero = s.loadings().as_slice().iter().filter(|&&v| v != 0.0).count();
        let frac = nonzero as f64 / (3.0 * 1000.0);
        assert!((frac - 0.1).abs() < 0.03, "density {frac}");
    }
}
