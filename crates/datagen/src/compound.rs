//! W3 — anti-cancer compound screening data.
//!
//! Compounds are binary fingerprint vectors (hashed substructure presence
//! bits, like ECFP). Activity requires the *conjunction* of a few
//! pharmacophore fragments plus the absence of a toxicophore — an AND/NOT
//! structure that makes the task non-linearly separable and heavily class-
//! imbalanced, matching real high-throughput screens.

use crate::dataset::{Dataset, Target};
use dd_tensor::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompoundConfig {
    /// Number of compounds.
    pub samples: usize,
    /// Fingerprint length in bits.
    pub bits: usize,
    /// Mean fraction of set bits per compound.
    pub density: f64,
    /// Number of pharmacophore patterns (any one grants activity).
    pub pharmacophores: usize,
    /// Bits per pharmacophore pattern (all must be set).
    pub bits_per_pattern: usize,
    /// Label flip noise.
    pub label_noise: f64,
}

impl Default for CompoundConfig {
    fn default() -> Self {
        CompoundConfig {
            samples: 4000,
            bits: 256,
            density: 0.12,
            pharmacophores: 3,
            bits_per_pattern: 3,
            label_noise: 0.02,
        }
    }
}

/// Generated screening data with ground-truth patterns.
pub struct CompoundData {
    /// Binary fingerprint features, binary activity label.
    pub dataset: Dataset,
    /// The planted pharmacophore bit sets.
    pub patterns: Vec<Vec<usize>>,
    /// The planted toxicophore bit (activity vetoed when set).
    pub toxicophore: usize,
}

/// Generate a compound screening dataset.
pub fn generate(config: &CompoundConfig, seed: u64) -> CompoundData {
    assert!(config.bits_per_pattern >= 1);
    assert!(
        config.pharmacophores * config.bits_per_pattern < config.bits,
        "patterns exceed fingerprint size"
    );
    let mut rng = Rng64::new(seed);

    let mut bit_perm: Vec<usize> = (0..config.bits).collect();
    rng.shuffle(&mut bit_perm);
    let patterns: Vec<Vec<usize>> = (0..config.pharmacophores)
        .map(|p| bit_perm[p * config.bits_per_pattern..(p + 1) * config.bits_per_pattern].to_vec())
        .collect();
    let toxicophore = bit_perm[config.pharmacophores * config.bits_per_pattern];

    let mut x = Matrix::zeros(config.samples, config.bits);
    let mut labels = Vec::with_capacity(config.samples);
    for i in 0..config.samples {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            if rng.bernoulli(config.density) {
                *v = 1.0;
            }
        }
        // Boost pattern completion for a fraction of compounds so actives
        // exist at realistic (low but workable) rates.
        if rng.bernoulli(0.25) {
            let p = rng.below(config.pharmacophores);
            for &b in &patterns[p] {
                row[b] = 1.0;
            }
        }
        let has_pattern = patterns.iter().any(|pat| pat.iter().all(|&b| row[b] == 1.0));
        let vetoed = row[toxicophore] == 1.0;
        let mut active = has_pattern && !vetoed;
        if rng.bernoulli(config.label_noise) {
            active = !active;
        }
        labels.push(usize::from(active));
    }
    CompoundData {
        dataset: Dataset::new("compound-screen", x, Target::Labels { labels, classes: 2 }),
        patterns,
        toxicophore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_binary_features() {
        let data = generate(&CompoundConfig::default(), 1);
        assert_eq!(data.dataset.len(), 4000);
        assert!(data.dataset.x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn active_rate_reasonable() {
        let data = generate(&CompoundConfig::default(), 2);
        let actives: usize = data.dataset.y.labels().unwrap().iter().sum();
        let rate = actives as f64 / data.dataset.len() as f64;
        // Imbalanced but learnable.
        assert!((0.03..0.6).contains(&rate), "active rate {rate}");
    }

    #[test]
    fn pattern_completion_implies_activity_mostly() {
        let config = CompoundConfig { label_noise: 0.0, ..Default::default() };
        let data = generate(&config, 3);
        let labels = data.dataset.y.labels().unwrap();
        let mut with_pattern_active = 0usize;
        let mut with_pattern_total = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            let row = data.dataset.x.row(i);
            let has = data.patterns.iter().any(|p| p.iter().all(|&b| row[b] == 1.0));
            let vetoed = row[data.toxicophore] == 1.0;
            if has && !vetoed {
                with_pattern_total += 1;
                with_pattern_active += label;
            }
        }
        assert!(with_pattern_total > 50, "too few pattern completions");
        assert_eq!(with_pattern_active, with_pattern_total, "noiseless labels must follow rule");
    }

    #[test]
    fn toxicophore_vetoes() {
        let config = CompoundConfig { label_noise: 0.0, ..Default::default() };
        let data = generate(&config, 4);
        let labels = data.dataset.y.labels().unwrap();
        for (i, &label) in labels.iter().enumerate() {
            if data.dataset.x.get(i, data.toxicophore) == 1.0 {
                assert_eq!(label, 0, "vetoed compound marked active");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&CompoundConfig::default(), 5);
        let b = generate(&CompoundConfig::default(), 5);
        assert_eq!(a.dataset.x, b.dataset.x);
        assert_eq!(a.patterns, b.patterns);
    }

    #[test]
    #[should_panic(expected = "exceed fingerprint")]
    fn oversized_patterns_panic() {
        let config = CompoundConfig {
            bits: 8,
            pharmacophores: 4,
            bits_per_pattern: 3,
            ..Default::default()
        };
        let _ = generate(&config, 1);
    }
}
