//! W1 — tumor type classification data (NT3-style).
//!
//! Each tumor type perturbs a signature set of genes on top of the shared
//! latent-pathway expression background. A 1-D CNN over the gene axis (or a
//! dense net) must recover the type from the profile; the classical baseline
//! is logistic regression. Difficulty is controlled by signature strength
//! and size.

use crate::dataset::{Dataset, Target};
use crate::expression::{ExpressionModel, ExpressionSampler};
use dd_tensor::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TumorConfig {
    /// Number of samples to draw.
    pub samples: usize,
    /// Number of tumor types (classes).
    pub types: usize,
    /// Genes per signature.
    pub signature_genes: usize,
    /// Mean shift applied to signature genes (difficulty knob; smaller =
    /// harder).
    pub signature_strength: f32,
    /// When > 0, each type's signature is a *contiguous* block of genes and
    /// every sample's block is shifted by a uniform offset in
    /// `[0, position_jitter]` — translation variance that position-fixed
    /// linear models cannot align but 1-D convolutions can (the regime that
    /// motivates the paper's convolutional tumor classifiers). 0 keeps the
    /// classic scattered, position-fixed signatures.
    pub position_jitter: usize,
    /// Underlying expression background.
    pub expression: ExpressionModel,
}

impl Default for TumorConfig {
    fn default() -> Self {
        TumorConfig {
            samples: 2000,
            types: 5,
            signature_genes: 20,
            signature_strength: 1.2,
            position_jitter: 0,
            expression: ExpressionModel::default(),
        }
    }
}

/// Generated dataset plus ground-truth signature indices per type.
pub struct TumorData {
    /// The labelled dataset (x: expression, y: tumor type).
    pub dataset: Dataset,
    /// For each type, the indices of its signature genes.
    pub signatures: Vec<Vec<usize>>,
}

/// Generate a tumor-type classification dataset.
pub fn generate(config: &TumorConfig, seed: u64) -> TumorData {
    assert!(config.types >= 2, "need at least two tumor types");
    assert!(
        config.signature_genes * config.types <= config.expression.genes,
        "signatures exceed gene universe"
    );
    let mut rng = Rng64::new(seed);
    let sampler = ExpressionSampler::new(config.expression.clone(), &mut rng);

    let genes = config.expression.genes;
    let signatures: Vec<Vec<usize>> = if config.position_jitter == 0 {
        // Disjoint scattered signature gene sets.
        let mut gene_perm: Vec<usize> = (0..genes).collect();
        rng.shuffle(&mut gene_perm);
        (0..config.types)
            .map(|t| {
                gene_perm[t * config.signature_genes..(t + 1) * config.signature_genes].to_vec()
            })
            .collect()
    } else {
        // Contiguous blocks, evenly spaced, leaving room for the jitter.
        let stride = genes / config.types;
        assert!(
            config.signature_genes + config.position_jitter <= stride,
            "jittered signature blocks overlap: need signature+jitter <= {stride}"
        );
        (0..config.types)
            .map(|t| (t * stride..t * stride + config.signature_genes).collect())
            .collect()
    };

    let mut x = Matrix::zeros(config.samples, genes);
    let mut labels = Vec::with_capacity(config.samples);
    for i in 0..config.samples {
        let t = rng.below(config.types);
        let factors = sampler.sample_factors(&mut rng);
        let mut profile = sampler.render(&factors, &mut rng);
        let offset =
            if config.position_jitter > 0 { rng.below(config.position_jitter + 1) } else { 0 };
        for (k, &g) in signatures[t].iter().enumerate() {
            // Signed, position-stable direction: alternate up/down regulation
            // within the signature so it is a pattern, not a uniform shift.
            let direction = if k % 2 == 0 { 1.0 } else { -1.0 };
            profile[(g + offset) % genes] += direction * config.signature_strength;
        }
        x.row_mut(i).copy_from_slice(&profile);
        labels.push(t);
    }
    TumorData {
        dataset: Dataset::new("tumor-type", x, Target::Labels { labels, classes: config.types }),
        signatures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_label_range() {
        let config = TumorConfig { samples: 100, ..Default::default() };
        let data = generate(&config, 1);
        assert_eq!(data.dataset.len(), 100);
        assert_eq!(data.dataset.dim(), config.expression.genes);
        assert!(data.dataset.y.labels().unwrap().iter().all(|&l| l < config.types));
        assert_eq!(data.signatures.len(), config.types);
    }

    #[test]
    fn signatures_are_disjoint() {
        let data = generate(&TumorConfig::default(), 2);
        let mut all: Vec<usize> = data.signatures.iter().flatten().copied().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "signature genes overlap");
    }

    #[test]
    fn classes_roughly_balanced() {
        let config = TumorConfig { samples: 5000, types: 4, ..Default::default() };
        let data = generate(&config, 3);
        let mut counts = vec![0usize; 4];
        for &l in data.dataset.y.labels().unwrap() {
            counts[l] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1250.0).abs() < 200.0, "counts {counts:?}");
        }
    }

    #[test]
    fn signature_genes_separate_types() {
        // Mean expression of type-t signature genes must differ between
        // samples of type t and others.
        let config =
            TumorConfig { samples: 1000, types: 3, signature_strength: 2.0, ..Default::default() };
        let data = generate(&config, 4);
        let labels = data.dataset.y.labels().unwrap();
        let sig = &data.signatures[0];
        // Even positions within the signature are up-regulated.
        let up: Vec<usize> =
            sig.iter().enumerate().filter(|(k, _)| k % 2 == 0).map(|(_, &g)| g).collect();
        let mean_for = |want: bool| -> f64 {
            let mut total = 0f64;
            let mut n = 0usize;
            for (i, &l) in labels.iter().enumerate() {
                if (l == 0) == want {
                    for &g in &up {
                        total += data.dataset.x.get(i, g) as f64;
                    }
                    n += up.len();
                }
            }
            total / n as f64
        };
        let in_type = mean_for(true);
        let out_type = mean_for(false);
        assert!(in_type - out_type > 1.0, "signature not expressed: in {in_type} out {out_type}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&TumorConfig::default(), 9);
        let b = generate(&TumorConfig::default(), 9);
        assert_eq!(a.dataset.x, b.dataset.x);
        assert_eq!(a.signatures, b.signatures);
    }

    #[test]
    fn jittered_signatures_are_contiguous_blocks() {
        let config = TumorConfig {
            samples: 50,
            types: 4,
            signature_genes: 10,
            position_jitter: 8,
            expression: ExpressionModel { genes: 128, ..Default::default() },
            ..Default::default()
        };
        let data = generate(&config, 11);
        for sig in &data.signatures {
            assert_eq!(sig.len(), 10);
            for w in sig.windows(2) {
                assert_eq!(w[1], w[0] + 1, "block must be contiguous");
            }
        }
        // Blocks + jitter stay disjoint across types (stride = 32).
        for pair in data.signatures.windows(2) {
            assert!(pair[0].last().unwrap() + 8 < *pair[1].first().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "blocks overlap")]
    fn oversized_jitter_panics() {
        let config = TumorConfig {
            types: 4,
            signature_genes: 30,
            position_jitter: 10,
            expression: ExpressionModel { genes: 128, ..Default::default() },
            ..Default::default()
        };
        let _ = generate(&config, 1);
    }

    #[test]
    #[should_panic(expected = "exceed gene universe")]
    fn oversized_signatures_panic() {
        let config = TumorConfig {
            types: 10,
            signature_genes: 100,
            expression: ExpressionModel { genes: 500, ..Default::default() },
            ..Default::default()
        };
        let _ = generate(&config, 1);
    }
}
