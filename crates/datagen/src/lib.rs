//! # dd-datagen — synthetic biomedical datasets and classical baselines
//!
//! The paper's driver problems run on data we cannot ship (NCI tumor
//! compendia, clinical records, bacterial genome collections). This crate
//! substitutes deterministic synthetic generators with *planted structure*
//! chosen so each workload exercises the same model shapes and exhibits the
//! same learnability gradients as the real task (see DESIGN.md's
//! substitution table):
//!
//! * [`expression`] — latent-pathway gene expression (shared substrate).
//! * [`tumor`] — W1 tumor-type classification (signature genes).
//! * [`drug_response`] — W2 dose-response regression with cell×drug
//!   interaction (Hill curves).
//! * [`compound`] — W3 fingerprint-based activity screening (conjunctive
//!   pharmacophores + toxicophore veto).
//! * [`records`] — W5 treatment outcomes with a recoverable optimal policy.
//! * [`amr`] — W6 antibiotic resistance with additive k-mers plus one
//!   epistatic "novel mechanism" pair.
//! * [`baselines`] — ridge / logistic / k-NN / PCA, all from scratch, the
//!   classical comparators for experiment E8.
//!
//! Every generator takes a config struct and a `u64` seed, and exposes its
//! generative ground truth (signatures, mechanisms, optimal policies) so
//! experiments can score *recovery*, not just prediction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amr;
pub mod baselines;
pub mod compound;
pub mod dataset;
pub mod drug_response;
pub mod expression;
pub mod records;
pub mod tumor;

pub use dataset::{Dataset, Split, Target};
