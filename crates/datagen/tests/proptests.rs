//! Property-based tests for the synthetic-data generators: every generator
//! must produce finite, well-formed, deterministic output for any valid
//! configuration, and splits must partition exactly.

use dd_datagen::amr::{self, AmrConfig};
use dd_datagen::compound::{self, CompoundConfig};
use dd_datagen::dataset::{Dataset, Target};
use dd_datagen::drug_response::hill_growth;
use dd_datagen::expression::{ExpressionModel, ExpressionSampler};
use dd_datagen::records::{self, policy_value, RecordsConfig};
use dd_datagen::tumor::{self, TumorConfig};
use dd_tensor::{Matrix, Rng64};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tumor_generator_well_formed(
        samples in 10usize..120,
        types in 2usize..5,
        seed in any::<u64>(),
    ) {
        let config = TumorConfig {
            samples,
            types,
            signature_genes: 4,
            expression: ExpressionModel { genes: 64, pathways: 4, ..Default::default() },
            ..Default::default()
        };
        let data = tumor::generate(&config, seed);
        prop_assert_eq!(data.dataset.len(), samples);
        prop_assert!(!data.dataset.x.has_non_finite());
        prop_assert!(data.dataset.y.labels().unwrap().iter().all(|&l| l < types));
        // Determinism.
        let again = tumor::generate(&config, seed);
        prop_assert_eq!(again.dataset.x, data.dataset.x);
    }

    #[test]
    fn hill_curve_bounded_and_monotone(
        ic50 in 0.01f32..100.0,
        hillc in 0.3f32..4.0,
        d1 in 0.001f32..1000.0,
        d2 in 0.001f32..1000.0,
    ) {
        let g1 = hill_growth(d1.min(d2), ic50, hillc);
        let g2 = hill_growth(d1.max(d2), ic50, hillc);
        prop_assert!((0.0..=1.0).contains(&g1));
        prop_assert!((0.0..=1.0).contains(&g2));
        prop_assert!(g2 <= g1 + 1e-6, "growth must not rise with dose");
    }

    #[test]
    fn compound_generator_respects_structure(seed in any::<u64>()) {
        let config = CompoundConfig { samples: 200, bits: 64, label_noise: 0.0, ..Default::default() };
        let data = compound::generate(&config, seed);
        // Rule check on every sample: active ⇔ some pattern complete ∧ no veto.
        let labels = data.dataset.y.labels().unwrap();
        for (i, &label) in labels.iter().enumerate() {
            let row = data.dataset.x.row(i);
            let has = data.patterns.iter().any(|p| p.iter().all(|&b| row[b] == 1.0));
            let vetoed = row[data.toxicophore] == 1.0;
            prop_assert_eq!(label == 1, has && !vetoed, "sample {}", i);
        }
    }

    #[test]
    fn records_policy_values_bounded(seed in any::<u64>(), bias in 0.0f64..1.0) {
        let config = RecordsConfig { patients: 300, assignment_bias: bias, ..Default::default() };
        let data = records::generate(&config, seed);
        let v_opt = policy_value(&data, &data.optimal_treatment);
        let v_log = policy_value(&data, &data.logged_treatment);
        prop_assert!((0.0..=1.0).contains(&v_opt));
        prop_assert!((0.0..=1.0).contains(&v_log));
        // The oracle is an upper bound on any policy.
        prop_assert!(v_opt >= v_log - 1e-12);
    }

    #[test]
    fn amr_generator_well_formed(seed in any::<u64>(), presence in 0.05f64..0.7) {
        let config = AmrConfig { genomes: 300, kmers: 80, presence, ..Default::default() };
        let data = amr::generate(&config, seed);
        prop_assert_eq!(data.dataset.dim(), 80);
        let (a, b) = data.epistatic_pair;
        prop_assert!(a != b && a < 80 && b < 80);
        prop_assert!(!data.additive.contains(&a) && !data.additive.contains(&b));
    }

    #[test]
    fn expression_sampler_finite_for_any_density(
        seed in any::<u64>(),
        density in 0.01f64..1.0,
        noise in 0.0f32..2.0,
    ) {
        let model = ExpressionModel { genes: 50, pathways: 5, noise, loading_density: density };
        let sampler = ExpressionSampler::new(model, &mut Rng64::new(seed));
        let (x, z) = sampler.sample(20, &mut Rng64::new(seed ^ 1));
        prop_assert!(!x.has_non_finite());
        prop_assert_eq!(z.shape(), (20, 5));
    }

    #[test]
    fn split_partitions_exactly(
        n in 20usize..200,
        val in 0.0f64..0.4,
        test in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let x = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f32);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let d = Dataset::new("p", x, Target::Labels { labels, classes: 2 });
        let n_test = (n as f64 * test).round() as usize;
        let n_val = (n as f64 * val).round() as usize;
        prop_assume!(n_test + n_val < n);
        let s = d.split(val, test, seed, false);
        prop_assert_eq!(s.train.len() + s.val.len() + s.test.len(), n);
        // Disjoint: first column is a unique row id.
        let mut ids: Vec<f32> = s
            .train
            .x
            .iter_rows()
            .chain(s.val.x.iter_rows())
            .chain(s.test.x.iter_rows())
            .map(|r| r[0])
            .collect();
        ids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }
}
