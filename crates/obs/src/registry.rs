//! The global metrics/trace registry and the RAII span API.
//!
//! One process-wide [`Registry`] collects everything; it starts *disabled*,
//! and while disabled every instrumentation call returns after a single
//! relaxed atomic load (plus, for spans, the `Instant::now()` the caller's
//! own timing needs anyway). Collection only allocates and locks once
//! recording is enabled, so instrumented library code can stay instrumented
//! in production hot paths.
//!
//! Spans nest: each thread keeps a depth counter, so the exported records
//! reconstruct the hierarchy (Chrome's trace viewer also infers nesting
//! from timestamps within a thread lane). Phase accounting
//! ([`Registry::time_in`]) intentionally sums *phased* spans only — the
//! convention is that phased spans are leaves (forward/backward/allreduce/
//! checkpoint), while structural parents (epoch, fit, trial) carry no phase,
//! keeping the per-phase total free of double counting.

// dd-lint: allow-file(error-policy/expect) -- a poisoned registry mutex means an instrumented thread already panicked; propagating that panic is the only sane behavior for a metrics sink
use crate::hist::{HistSummary, Histogram};
use crate::phase::Phase;
use crate::window::{SlidingWindow, WindowConfig};
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span, as exported.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span label (e.g. `forward`, `allreduce`, `epoch`).
    pub name: Cow<'static, str>,
    /// Phase for "where does the time go" accounting; `None` for structural
    /// parent spans.
    pub phase: Option<Phase>,
    /// Registry-assigned id of the recording thread.
    pub tid: u64,
    /// Nesting depth on that thread (0 = top level).
    pub depth: u32,
    /// Start time in microseconds since the registry epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// Immutable copy of everything the registry holds.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Completed spans in end order.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistSummary>,
    /// Sliding-window summaries, evaluated at snapshot time.
    pub windows: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// Total seconds spent in spans of one phase.
    pub fn time_in(&self, phase: Phase) -> f64 {
        self.spans.iter().filter(|s| s.phase == Some(phase)).map(|s| s.dur_us / 1e6).sum()
    }

    /// Counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// The process-wide collector. Normally used through the free functions in
/// the crate root, which operate on the global instance.
pub struct Registry {
    enabled: AtomicBool,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
    windows: Mutex<BTreeMap<String, SlidingWindow>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// The global registry (created on first use, disabled).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            windows: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turn recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off (already-collected data is kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Is recording on? This is the one atomic load every disabled
    /// instrumentation call pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Monotonic seconds since the registry epoch (process start, in
    /// practice). This is the workspace's *only* sanctioned wall-clock
    /// read outside span timing: the single-clock invariant
    /// (`single-clock/instant-now`) forbids `Instant::now()` elsewhere,
    /// so code that needs a raw timestamp — e.g. dd-serve enqueue times
    /// and request deadlines — takes it from here and stays on the same
    /// clock the trace uses. Always live, even while recording is off.
    #[inline]
    pub fn monotonic_seconds(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Drop all collected data (the enabled flag is left as-is).
    pub fn reset(&self) {
        self.spans.lock().expect("obs spans lock").clear();
        self.counters.lock().expect("obs counters lock").clear();
        self.gauges.lock().expect("obs gauges lock").clear();
        self.hists.lock().expect("obs hists lock").clear();
        self.windows.lock().expect("obs windows lock").clear();
    }

    /// Add to a monotonic counter (no-op while disabled).
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.counters.lock().expect("obs counters lock");
        match map.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                map.insert(name.to_string(), delta);
            }
        }
    }

    /// Set a gauge to a value (no-op while disabled).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.gauges.lock().expect("obs gauges lock");
        match map.get_mut(name) {
            Some(v) => *v = value,
            None => {
                map.insert(name.to_string(), value);
            }
        }
    }

    /// Record a histogram sample (no-op while disabled).
    #[inline]
    pub fn hist_record(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.hists.lock().expect("obs hists lock");
        match map.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                map.insert(name.to_string(), h);
            }
        }
    }

    /// Record a sample into a named sliding window at `now_s` (no-op while
    /// disabled — one relaxed atomic load, like every other record path).
    /// Windows created through this path use the default
    /// [`WindowConfig`] (1 s buckets, 60 s horizon); use
    /// [`Registry::window_record_cfg`] for a custom shape.
    #[inline]
    pub fn window_record(&self, name: &str, now_s: f64, value: f64) {
        self.window_record_cfg(name, now_s, value, WindowConfig::default());
    }

    /// Like [`Registry::window_record`], but a window created by this call
    /// takes `cfg` as its shape (an existing window keeps its original
    /// config — the first recorder wins).
    #[inline]
    pub fn window_record_cfg(&self, name: &str, now_s: f64, value: f64, cfg: WindowConfig) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.windows.lock().expect("obs windows lock");
        match map.get_mut(name) {
            Some(w) => w.record(now_s, value),
            None => {
                let mut w = SlidingWindow::new(cfg);
                w.record(now_s, value);
                map.insert(name.to_string(), w);
            }
        }
    }

    /// Windowed summary of one named sliding window evaluated at `now_s`;
    /// `None` when nothing was ever recorded under `name`.
    pub fn window_summary(&self, name: &str, now_s: f64) -> Option<HistSummary> {
        self.windows.lock().expect("obs windows lock").get(name).map(|w| w.summary(now_s))
    }

    /// Open a span. The guard records on drop (or [`SpanGuard::finish`]);
    /// while the registry is disabled the guard still measures time — so
    /// callers can derive their own elapsed-seconds from it — but records
    /// nothing.
    #[inline]
    pub fn span(&self, name: impl Into<Cow<'static, str>>, phase: Option<Phase>) -> SpanGuard {
        let recording = self.is_enabled();
        if recording {
            DEPTH.with(|d| d.set(d.get() + 1));
        }
        SpanGuard { start: Instant::now(), name: recording.then(|| name.into()), phase }
    }

    fn record_span(&self, name: Cow<'static, str>, phase: Option<Phase>, start: Instant) {
        let end = Instant::now();
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        let start_us = start.saturating_duration_since(self.epoch).as_secs_f64() * 1e6;
        let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
        let record = SpanRecord { name, phase, tid: thread_id(), depth, start_us, dur_us };
        self.spans.lock().expect("obs spans lock").push(record);
    }

    /// Total seconds recorded in spans of one phase.
    pub fn time_in(&self, phase: Phase) -> f64 {
        self.spans
            .lock()
            .expect("obs spans lock")
            .iter()
            .filter(|s| s.phase == Some(phase))
            .map(|s| s.dur_us / 1e6)
            .sum()
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().expect("obs counters lock").get(name).copied().unwrap_or(0)
    }

    /// Summary of one histogram; `None` when nothing was ever recorded
    /// under `name` (including while the registry is disabled). Lets
    /// adaptive policies (e.g. dd-serve's p99-derived hedge delay) read
    /// observed latency without copying the whole snapshot.
    pub fn hist_summary(&self, name: &str) -> Option<HistSummary> {
        self.hists.lock().expect("obs hists lock").get(name).map(Histogram::summary)
    }

    /// Copy out everything collected so far. Window summaries are
    /// evaluated at the current [`Registry::monotonic_seconds`].
    pub fn snapshot(&self) -> Snapshot {
        let now = self.monotonic_seconds();
        Snapshot {
            spans: self.spans.lock().expect("obs spans lock").clone(),
            counters: self.counters.lock().expect("obs counters lock").clone(),
            gauges: self.gauges.lock().expect("obs gauges lock").clone(),
            hists: self
                .hists
                .lock()
                .expect("obs hists lock")
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            windows: self
                .windows
                .lock()
                .expect("obs windows lock")
                .iter()
                .map(|(k, w)| (k.clone(), w.summary(now)))
                .collect(),
        }
    }
}

/// RAII span handle returned by [`Registry::span`]. Records its interval
/// into the registry when dropped or [`finish`](SpanGuard::finish)ed.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    start: Instant,
    /// `Some` only when the registry was enabled at creation.
    name: Option<Cow<'static, str>>,
    phase: Option<Phase>,
}

impl SpanGuard {
    /// Close the span now and return its elapsed wall-clock seconds. This is
    /// the one timing source instrumented code should report, so a span's
    /// trace entry and the caller's own `seconds` field can never disagree.
    pub fn finish(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        if let Some(name) = self.name.take() {
            global().record_span(name, self.phase, self.start);
        }
        elapsed
    }

    /// Elapsed seconds so far without closing the span.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            global().record_span(name, self.phase, self.start);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Tests share the one global registry; serialize them.
    pub(crate) fn lock_registry() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _l = lock_registry();
        let r = global();
        r.disable();
        r.reset();
        r.counter_add("c", 5);
        r.gauge_set("g", 1.0);
        r.hist_record("h", 1.0);
        r.window_record("w", 0.0, 1.0);
        let sp = r.span("s", Some(Phase::Compute));
        assert!(sp.finish() >= 0.0);
        let snap = r.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.windows.is_empty());
        assert!(r.window_summary("w", 0.0).is_none());
    }

    #[test]
    fn named_windows_record_and_expire_on_the_caller_clock() {
        let _l = lock_registry();
        let r = global();
        r.reset();
        r.enable();
        r.window_record_cfg("lat", 0.5, 0.010, WindowConfig::new(1.0, 4));
        r.window_record_cfg("lat", 2.5, 0.020, WindowConfig::new(1.0, 4));
        let s = r.window_summary("lat", 2.5).expect("recorded");
        assert_eq!(s.count, 2);
        let s = r.window_summary("lat", 4.5).expect("window still exists");
        assert_eq!(s.count, 1, "the t=0.5 sample left the 4 s horizon");
        let snap = r.snapshot();
        assert!(snap.windows.contains_key("lat"));
        r.disable();
        r.reset();
    }

    #[test]
    fn counters_gauges_hists_accumulate() {
        let _l = lock_registry();
        let r = global();
        r.reset();
        r.enable();
        r.counter_add("flops", 10);
        r.counter_add("flops", 32);
        r.gauge_set("loss", 0.5);
        r.gauge_set("loss", 0.25);
        r.hist_record("t", 1.0);
        r.hist_record("t", 3.0);
        let snap = r.snapshot();
        r.disable();
        assert_eq!(snap.counter("flops"), 42);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauges["loss"], 0.25);
        assert_eq!(snap.hists["t"].count, 2);
        assert_eq!(snap.hists["t"].sum, 4.0);
    }

    #[test]
    fn hist_summary_reads_one_histogram_without_a_snapshot() {
        let _l = lock_registry();
        let r = global();
        r.reset();
        r.enable();
        assert!(r.hist_summary("svc").is_none(), "unrecorded name has no summary");
        r.hist_record("svc", 0.010);
        r.hist_record("svc", 0.020);
        let s = r.hist_summary("svc").expect("recorded");
        r.disable();
        r.reset();
        assert_eq!(s.count, 2);
        assert!(s.p99 >= s.p50 && s.p50 > 0.0);
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let _l = lock_registry();
        let r = global();
        r.reset();
        r.enable();
        {
            let _outer = r.span("outer", None);
            {
                let _inner = r.span("inner", Some(Phase::Compute));
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _inner2 = r.span("inner2", Some(Phase::Comm));
            }
        }
        let snap = r.snapshot();
        r.disable();
        // End order: inner, inner2, outer.
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].depth, 1);
        assert_eq!(snap.spans[1].name, "inner2");
        assert_eq!(snap.spans[1].depth, 1);
        assert_eq!(snap.spans[2].name, "outer");
        assert_eq!(snap.spans[2].depth, 0);
        // The parent contains its children in time.
        let outer = &snap.spans[2];
        for child in &snap.spans[..2] {
            assert!(child.start_us + 1e-9 >= outer.start_us);
            assert!(child.start_us + child.dur_us <= outer.start_us + outer.dur_us + 1e-3);
        }
        // Phase accounting counts only phased (leaf) spans.
        assert!(snap.time_in(Phase::Compute) >= 0.002);
        assert!(snap.time_in(Phase::Io) == 0.0);
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let _l = lock_registry();
        let r = global();
        r.reset();
        r.enable();
        let sp = r.span("timed", Some(Phase::Io));
        std::thread::sleep(std::time::Duration::from_millis(3));
        let secs = sp.finish();
        let snap = r.snapshot();
        r.disable();
        assert!(secs >= 0.003, "elapsed {secs}");
        assert_eq!(snap.spans.len(), 1);
        let rec_secs = snap.spans[0].dur_us / 1e6;
        assert!((rec_secs - secs).abs() < 1e-3, "span {rec_secs} vs finish {secs}");
    }

    #[test]
    fn spans_from_multiple_threads_get_distinct_tids() {
        let _l = lock_registry();
        let r = global();
        r.reset();
        r.enable();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = global().span("worker", Some(Phase::Compute));
                });
            }
        });
        let snap = r.snapshot();
        r.disable();
        assert_eq!(snap.spans.len(), 3);
        let tids: std::collections::BTreeSet<u64> = snap.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 3, "each thread gets its own tid");
    }

    #[test]
    fn reset_clears_but_keeps_enabled_flag() {
        let _l = lock_registry();
        let r = global();
        r.enable();
        r.counter_add("x", 1);
        r.reset();
        assert!(r.is_enabled());
        assert_eq!(r.counter("x"), 0);
        r.counter_add("x", 2);
        assert_eq!(r.counter("x"), 2);
        r.disable();
        r.reset();
    }
}
