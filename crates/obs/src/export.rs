//! Exporters: Chrome `chrome://tracing` JSON, structured JSONL, and an
//! aligned text summary.
//!
//! The Chrome exporter emits the classic JSON-object format — a top-level
//! `{"traceEvents": [...]}` with complete (`"ph": "X"`) events carrying
//! microsecond `ts`/`dur` — which both `chrome://tracing` and Perfetto load
//! directly. The JSONL exporter writes one self-describing JSON object per
//! line (`type` ∈ span/counter/gauge/hist), the grep-and-jq-friendly form
//! for log pipelines.

use crate::phase::Phase;
use crate::registry::Snapshot;
use serde_json::{json, Value};
use std::fmt::Write as _;

/// Render a snapshot as Chrome trace JSON (`{"traceEvents": [...]}`).
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(snap.spans.len());
    for s in &snap.spans {
        events.push(json!({
            "name": s.name.as_ref(),
            "cat": s.phase.map(Phase::name).unwrap_or("span"),
            "ph": "X",
            "ts": s.start_us,
            "dur": s.dur_us,
            "pid": 1,
            "tid": s.tid,
            "args": {"depth": s.depth},
        }));
    }
    // Counter totals ride along as global instant events so the trace is
    // self-contained when viewed without the JSONL file.
    for (name, value) in &snap.counters {
        events.push(json!({
            "name": name, "cat": "counter", "ph": "C", "ts": 0.0, "pid": 1, "tid": 0,
            "args": {"value": value},
        }));
    }
    serde_json::to_string(&json!({ "traceEvents": events, "displayTimeUnit": "ms" }))
        // dd-lint: allow(error-policy/expect) -- serde_json on an in-memory json! value cannot fail
        .expect("chrome trace serialization cannot fail")
}

/// Render a snapshot as JSONL: one event object per line.
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for s in &snap.spans {
        let line = json!({
            "type": "span",
            "name": s.name.as_ref(),
            "phase": s.phase.map(Phase::name),
            "tid": s.tid,
            "depth": s.depth,
            "start_us": s.start_us,
            "dur_us": s.dur_us,
        });
        let _ = writeln!(out, "{line}");
    }
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "{}", json!({"type": "counter", "name": name, "value": value}));
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "{}", json!({"type": "gauge", "name": name, "value": value}));
    }
    for (name, h) in &snap.hists {
        let line = json!({
            "type": "hist", "name": name, "count": h.count, "sum": h.sum, "mean": h.mean,
            "min": h.min, "max": h.max, "p50": h.p50, "p95": h.p95, "p99": h.p99,
        });
        let _ = writeln!(out, "{line}");
    }
    for (name, h) in &snap.windows {
        let line = json!({
            "type": "window", "name": name, "count": h.count, "sum": h.sum, "mean": h.mean,
            "min": h.min, "max": h.max, "p50": h.p50, "p95": h.p95, "p99": h.p99,
        });
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Render an aligned human-readable summary: per-phase time, counters,
/// gauges and histogram quantiles.
pub fn summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== observability summary ==");
    let total: f64 = Phase::ALL.iter().map(|&p| snap.time_in(p)).sum();
    let _ = writeln!(out, "-- phases ({} spans) --", snap.spans.len());
    for &phase in &Phase::ALL {
        let t = snap.time_in(phase);
        let pct = if total > 0.0 { 100.0 * t / total } else { 0.0 };
        let _ = writeln!(out, "{:>12}  {:>12.6} s  {:>5.1}%", phase.name(), t, pct);
    }
    if !snap.counters.is_empty() {
        let w = snap.counters.keys().map(String::len).max().unwrap_or(0);
        let _ = writeln!(out, "-- counters --");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "{name:>w$}  {value}");
        }
    }
    if !snap.gauges.is_empty() {
        let w = snap.gauges.keys().map(String::len).max().unwrap_or(0);
        let _ = writeln!(out, "-- gauges --");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "{name:>w$}  {value:.6}");
        }
    }
    if !snap.hists.is_empty() {
        let w = snap.hists.keys().map(String::len).max().unwrap_or(0);
        let _ = writeln!(out, "-- histograms (seconds unless noted) --");
        for (name, h) in &snap.hists {
            let _ = writeln!(
                out,
                "{name:>w$}  n={:<6} p50={:.6} p95={:.6} p99={:.6} max={:.6}",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
    }
    if !snap.windows.is_empty() {
        let w = snap.windows.keys().map(String::len).max().unwrap_or(0);
        let _ = writeln!(out, "-- sliding windows (live horizon at snapshot time) --");
        for (name, h) in &snap.windows {
            let _ = writeln!(
                out,
                "{name:>w$}  n={:<6} p50={:.6} p95={:.6} p99={:.6} max={:.6}",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
    }
    out
}

/// Env-driven export session for binaries.
///
/// `DD_TRACE=<path>` requests a Chrome trace JSON and `DD_METRICS=<path>` a
/// JSONL event log; setting either also enables the global registry.
/// Dropping the session writes the requested files from a final snapshot
/// (best effort: failures warn on stderr rather than panic, matching the
/// experiment harness's CSV policy).
#[derive(Debug, Default)]
pub struct EnvSession {
    trace_path: Option<std::path::PathBuf>,
    metrics_path: Option<std::path::PathBuf>,
}

impl EnvSession {
    /// Read `DD_TRACE` / `DD_METRICS` and enable recording when either is
    /// set. Call once near the top of `main` and keep the guard alive.
    pub fn from_env() -> Self {
        let trace_path = std::env::var_os("DD_TRACE").map(std::path::PathBuf::from);
        let metrics_path = std::env::var_os("DD_METRICS").map(std::path::PathBuf::from);
        if trace_path.is_some() || metrics_path.is_some() {
            crate::enable();
        }
        EnvSession { trace_path, metrics_path }
    }

    /// Write the requested exports now (also runs on drop).
    pub fn flush(&self) {
        let snap = crate::snapshot();
        if let Some(path) = &self.trace_path {
            if let Err(err) = std::fs::write(path, chrome_trace(&snap)) {
                eprintln!("[warn] could not write DD_TRACE {}: {err}", path.display());
            } else {
                println!("[trace] {}", path.display());
            }
        }
        if let Some(path) = &self.metrics_path {
            if let Err(err) = std::fs::write(path, jsonl(&snap)) {
                eprintln!("[warn] could not write DD_METRICS {}: {err}", path.display());
            } else {
                println!("[metrics] {}", path.display());
            }
        }
    }
}

impl Drop for EnvSession {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{global, SpanRecord};
    use std::borrow::Cow;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.spans.push(SpanRecord {
            name: Cow::Borrowed("forward"),
            phase: Some(Phase::Compute),
            tid: 1,
            depth: 1,
            start_us: 10.0,
            dur_us: 100.0,
        });
        snap.spans.push(SpanRecord {
            name: Cow::Borrowed("epoch"),
            phase: None,
            tid: 1,
            depth: 0,
            start_us: 0.0,
            dur_us: 200.0,
        });
        snap.counters.insert("flops_total".into(), 1234);
        snap.gauges.insert("train_loss".into(), 0.5);
        let mut h = crate::hist::Histogram::new();
        h.record(0.1);
        h.record(0.2);
        snap.hists.insert("step_seconds".into(), h.summary());
        let mut w = crate::window::SlidingWindow::new(crate::window::WindowConfig::default());
        w.record(1.0, 0.05);
        snap.windows.insert("serve_e2e_seconds".into(), w.summary(1.0));
        snap
    }

    #[test]
    fn chrome_trace_schema_roundtrips() {
        let s = chrome_trace(&sample_snapshot());
        let v: Value = serde_json::from_str(&s).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("traceEvents array");
        // 2 spans + 1 counter event.
        assert_eq!(events.len(), 3);
        let span = &events[0];
        assert_eq!(span["ph"], "X");
        assert_eq!(span["name"], "forward");
        assert_eq!(span["cat"], "compute");
        assert_eq!(span["ts"].as_f64().unwrap(), 10.0);
        assert_eq!(span["dur"].as_f64().unwrap(), 100.0);
        assert!(span["tid"].is_u64() && span["pid"].is_u64());
        let counter = events.iter().find(|e| e["ph"] == "C").expect("counter event");
        assert_eq!(counter["args"]["value"].as_u64().unwrap(), 1234);
    }

    #[test]
    fn unphased_spans_export_cat_span() {
        let s = chrome_trace(&sample_snapshot());
        let v: Value = serde_json::from_str(&s).unwrap();
        let epoch = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"] == "epoch")
            .expect("epoch span");
        assert_eq!(epoch["cat"], "span");
    }

    #[test]
    fn jsonl_lines_each_parse_and_carry_types() {
        let s = jsonl(&sample_snapshot());
        let lines: Vec<&str> = s.lines().collect();
        // 2 spans + 1 counter + 1 gauge + 1 hist + 1 window.
        assert_eq!(lines.len(), 6);
        let mut types = std::collections::BTreeMap::new();
        for line in lines {
            let v: Value = serde_json::from_str(line).expect("each line is JSON");
            *types.entry(v["type"].as_str().unwrap().to_string()).or_insert(0) += 1;
        }
        assert_eq!(types["span"], 2);
        assert_eq!(types["counter"], 1);
        assert_eq!(types["gauge"], 1);
        assert_eq!(types["hist"], 1);
        assert_eq!(types["window"], 1);
    }

    #[test]
    fn jsonl_hist_has_quantiles() {
        let s = jsonl(&sample_snapshot());
        let hist_line = s.lines().find(|l| l.contains("\"hist\"")).unwrap();
        let v: Value = serde_json::from_str(hist_line).unwrap();
        assert_eq!(v["count"].as_u64().unwrap(), 2);
        for key in ["p50", "p95", "p99", "min", "max", "mean"] {
            assert!(v[key].is_f64(), "missing {key}");
        }
    }

    #[test]
    fn summary_mentions_every_phase_and_metric() {
        let text = summary(&sample_snapshot());
        for phase in Phase::ALL {
            assert!(text.contains(phase.name()), "missing {phase}");
        }
        assert!(text.contains("flops_total"));
        assert!(text.contains("train_loss"));
        assert!(text.contains("step_seconds"));
        assert!(text.contains("serve_e2e_seconds"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn env_session_writes_requested_files() {
        let _l = crate::registry::tests::lock_registry();
        let dir = std::env::temp_dir().join("dd-obs-envsession-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.jsonl");
        let r = global();
        r.reset();
        r.enable();
        {
            let session =
                EnvSession { trace_path: Some(trace.clone()), metrics_path: Some(metrics.clone()) };
            let _s = r.span("unit", Some(Phase::Io));
            drop(_s);
            r.counter_add("c", 1);
            drop(session);
        }
        r.disable();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let v: Value = serde_json::from_str(&trace_text).unwrap();
        assert!(!v["traceEvents"].as_array().unwrap().is_empty());
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(metrics_text.lines().count() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
