//! The shared phase vocabulary for "where does the time go" accounting.
//!
//! One enum serves both sides of the measured-vs-modeled comparison: the
//! `dd-hpcsim` simulator's analytic traces and the real instrumented
//! training stack label their time with the *same* four phases, so the two
//! reports line up row for row.

use serde::{Deserialize, Serialize};

/// What a span of time (simulated or measured) was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Arithmetic on the node (forward/backward/optimizer, simulated FLOPs).
    Compute,
    /// Fabric communication (allreduce, activation exchange).
    Comm,
    /// Storage I/O (training-data reads, staging, data generation).
    Io,
    /// Checkpoint save/restore traffic.
    Checkpoint,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 4] = [Phase::Compute, Phase::Comm, Phase::Io, Phase::Checkpoint];

    /// Timeline glyph used by text timelines.
    pub fn glyph(self) -> char {
        match self {
            Phase::Compute => '#',
            Phase::Comm => '~',
            Phase::Io => '.',
            Phase::Checkpoint => '+',
        }
    }

    /// Stable lower-case label used in tables, traces and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Comm => "comm",
            Phase::Io => "io",
            Phase::Checkpoint => "checkpoint",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_glyphs_are_distinct() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let glyphs: Vec<char> = Phase::ALL.iter().map(|p| p.glyph()).collect();
        for i in 0..Phase::ALL.len() {
            for j in 0..i {
                assert_ne!(names[i], names[j]);
                assert_ne!(glyphs[i], glyphs[j]);
            }
        }
    }

    #[test]
    fn serde_uses_variant_names() {
        let json = serde_json::to_string(&Phase::Checkpoint).unwrap();
        assert_eq!(json, "\"Checkpoint\"");
        let back: Phase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Phase::Checkpoint);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Phase::Comm.to_string(), "comm");
    }
}
