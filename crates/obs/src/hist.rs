//! Fixed-memory log-bucketed histograms with approximate quantiles.
//!
//! Step times span six orders of magnitude between a smoke test and a full
//! run, so buckets are geometric: `BUCKETS_PER_DECADE` buckets per factor of
//! ten across `[MIN_VALUE, MAX_VALUE)`. Quantile estimates carry a bounded
//! relative error of `10^(1/BUCKETS_PER_DECADE) - 1` (about 7.5%), which is
//! plenty for p50/p95/p99 reporting, and recording is O(1) with no
//! allocation after construction.

use serde::{Deserialize, Serialize};

/// Geometric buckets per decade.
const BUCKETS_PER_DECADE: usize = 32;
/// Smallest resolvable value; everything below lands in bucket 0.
const MIN_VALUE: f64 = 1e-9;
/// Decades covered above [`MIN_VALUE`].
const DECADES: usize = 15;
/// Total bucket count.
const NUM_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES;

/// A log-bucketed histogram of non-negative `f64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v <= MIN_VALUE {
            return 0;
        }
        // dd-lint: allow(lossy-cast/float-to-int) -- log-bucket index: floor() is the bucketing operation; clamped to the bucket range on the next line
        let idx = ((v / MIN_VALUE).log10() * BUCKETS_PER_DECADE as f64).floor() as isize;
        idx.clamp(0, NUM_BUCKETS as isize - 1) as usize
    }

    /// Geometric midpoint of a bucket (the quantile estimate it yields).
    fn bucket_mid(idx: usize) -> f64 {
        let lo = MIN_VALUE * 10f64.powf(idx as f64 / BUCKETS_PER_DECADE as f64);
        let hi = MIN_VALUE * 10f64.powf((idx + 1) as f64 / BUCKETS_PER_DECADE as f64);
        (lo * hi).sqrt()
    }

    /// Record one sample. Negative and NaN samples are clamped to zero.
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.counts[Self::bucket_index(v)] += 1;
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (0 when empty). The estimate is
    /// the geometric midpoint of the bucket holding the target rank, clamped
    /// to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // dd-lint: allow(lossy-cast/float-to-int) -- quantile rank: ceil'd count bounded by n; fits u64 by construction
        let target = ((q * self.n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Total number of log buckets — the hard size bound any per-bucket
    /// side table (e.g. exemplar request-ids) inherits.
    pub const fn num_buckets() -> usize {
        NUM_BUCKETS
    }

    /// Public bucket index of a sample, with the same clamping `record`
    /// applies (negative/NaN → bucket 0). Lets sliding windows attach
    /// exemplar request-ids to the bucket a latency sample landed in.
    pub fn bucket_of(v: f64) -> usize {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        Self::bucket_index(v)
    }

    /// Merge another histogram into this one bucket-by-bucket. Both share
    /// the fixed global bucket layout, so counts, extrema and every
    /// quantile merge exactly; only `sum`/`mean` depend on float summation
    /// order (last-ulp effects).
    pub fn merge(&mut self, other: &Histogram) {
        if other.n == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The p50/p95/p99 summary exported to JSONL and the text report.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.n,
            sum: self.sum,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Exported snapshot of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn quantiles_of_uniform_grid_are_accurate() {
        let mut h = Histogram::new();
        // 1..=1000 milliseconds.
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Bounded relative error from the geometric buckets.
        assert!((p50 - 0.5).abs() / 0.5 < 0.08, "p50 {p50}");
        assert!((p95 - 0.95).abs() / 0.95 < 0.08, "p95 {p95}");
        assert!((p99 - 0.99).abs() / 0.99 < 0.08, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let mut h = Histogram::new();
        h.record(0.125);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((v - 0.125).abs() / 0.125 < 0.08, "q{q} -> {v}");
        }
        assert_eq!(h.min(), 0.125);
        assert_eq!(h.max(), 0.125);
    }

    #[test]
    fn extreme_and_invalid_samples_are_clamped() {
        let mut h = Histogram::new();
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(0.0);
        h.record(1e30); // beyond the last bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e30);
        assert!(h.quantile(1.0) <= 1e30);
    }

    #[test]
    fn bimodal_distribution_separates_modes() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        assert!((p50 - 1e-3).abs() / 1e-3 < 0.08, "p50 {p50}");
        assert!((p95 - 1.0).abs() / 1.0 < 0.08, "p95 {p95}");
    }

    #[test]
    fn merge_is_exact_against_direct_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut direct = Histogram::new();
        for i in 1..=500 {
            let v = i as f64 * 1e-4;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            direct.record(v);
        }
        a.merge(&b);
        let (ms, ds) = (a.summary(), direct.summary());
        assert_eq!((ms.count, ms.min, ms.max), (ds.count, ds.min, ds.max));
        assert_eq!(
            (ms.p50, ms.p95, ms.p99),
            (ds.p50, ds.p95, ds.p99),
            "bucket counts merge exactly"
        );
        assert!((ms.sum - ds.sum).abs() < 1e-9, "sum differs only by summation order");
        let empty = Histogram::new();
        let before = a.summary();
        a.merge(&empty);
        assert_eq!(a.summary(), before, "merging an empty histogram is a no-op");
    }

    #[test]
    fn bucket_of_matches_record_placement() {
        assert_eq!(Histogram::bucket_of(-1.0), 0);
        assert_eq!(Histogram::bucket_of(f64::NAN), 0);
        assert!(Histogram::bucket_of(1e30) < Histogram::num_buckets());
        assert!(Histogram::bucket_of(1e-3) < Histogram::bucket_of(1.0));
    }

    #[test]
    fn summary_is_consistent() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }
}
