//! Streaming SLO monitors, tail-based trace sampling, and the chaos
//! flight recorder.
//!
//! All three are pure state machines over caller-supplied `(now_s, event)`
//! streams — no clock reads, no randomness — so the threaded server and
//! the virtual-time sim twin drive the same types and produce bit-identical
//! telemetry from identical event streams.
//!
//! * [`SloMonitor`] implements multi-window burn-rate alerting: an
//!   objective (availability, or p99-vs-deadline) defines an error budget,
//!   and an alert fires only when *both* a fast and a slow window burn
//!   that budget faster than `burn_threshold`. The fast window bounds
//!   detection latency; the slow window suppresses blips — the classic
//!   fast+slow pairing, here fully deterministic.
//! * [`TailSampler`] keeps full per-request traces only for the requests
//!   worth keeping: slow, errored, or shed. Ok-and-fast traces are counted
//!   and dropped, so capacity goes to the tail.
//! * [`FlightRecorder`] keeps a fixed-capacity ring of recent events per
//!   replica and renders them to JSON on demand — the post-mortem artifact
//!   dumped when a breaker opens or a replica is evicted.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Count ring: good/bad event counts over a lazy time-bucket ring, the
/// integer-only core both burn-rate windows share.
#[derive(Debug, Clone)]
struct CountRing {
    bucket_s: f64,
    len: i64,
    good: Vec<u64>,
    bad: Vec<u64>,
    epochs: Vec<i64>,
}

/// Sub-buckets per burn-rate window: enough granularity that a window
/// "slides" rather than jumps, while staying O(8) to total.
const SLO_SUB_BUCKETS: usize = 8;

impl CountRing {
    fn new(window_s: f64) -> Self {
        CountRing {
            bucket_s: window_s / SLO_SUB_BUCKETS as f64,
            len: SLO_SUB_BUCKETS as i64,
            good: vec![0; SLO_SUB_BUCKETS],
            bad: vec![0; SLO_SUB_BUCKETS],
            epochs: vec![i64::MIN; SLO_SUB_BUCKETS],
        }
    }

    fn abs_bucket(&self, now_s: f64) -> i64 {
        let now = if now_s.is_finite() && now_s > 0.0 { now_s } else { 0.0 };
        // dd-lint: allow(lossy-cast/float-to-int) -- time-bucket index: floor() is the bucketing operation; non-negative by the clamp above
        (now / self.bucket_s).floor() as i64
    }

    fn observe(&mut self, now_s: f64, ok: bool) {
        let cur = self.abs_bucket(now_s);
        // dd-lint: allow(lossy-cast/float-to-int) -- ring slot: modulo of a non-negative bucket index by the ring length
        let slot = cur.rem_euclid(self.len) as usize;
        if self.epochs[slot] != cur {
            self.good[slot] = 0;
            self.bad[slot] = 0;
            self.epochs[slot] = cur;
        }
        if ok {
            self.good[slot] += 1;
        } else {
            self.bad[slot] += 1;
        }
    }

    fn totals(&self, now_s: f64) -> (u64, u64) {
        let cur = self.abs_bucket(now_s);
        let oldest = cur - self.len;
        let mut good = 0u64;
        let mut bad = 0u64;
        for i in 0..self.epochs.len() {
            let e = self.epochs[i];
            if e != i64::MIN && e > oldest && e <= cur {
                good += self.good[i];
                bad += self.bad[i];
            }
        }
        (good, bad)
    }
}

/// What an SLO promises, and therefore what counts against its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObjective {
    /// Fraction of requests answered successfully must stay >= `target`;
    /// the error budget is `1 - target`.
    Availability {
        /// Success-fraction target in `(0, 1)`, e.g. `0.999`.
        target: f64,
    },
    /// The `1 - tolerated_fraction` quantile of latency must stay under
    /// `deadline_s` — "p99 under deadline" is `tolerated_fraction = 0.01`:
    /// at most that fraction of requests may run past the deadline.
    LatencyDeadline {
        /// Latency bound, seconds.
        deadline_s: f64,
        /// Budgeted fraction of requests allowed past the bound, `(0, 1)`.
        tolerated_fraction: f64,
    },
}

impl SloObjective {
    /// The error budget: the bad-event fraction the objective tolerates.
    pub fn budget(&self) -> f64 {
        match *self {
            SloObjective::Availability { target } => 1.0 - target,
            SloObjective::LatencyDeadline { tolerated_fraction, .. } => tolerated_fraction,
        }
    }
}

/// One SLO monitor's shape: objective, fast+slow windows, and the
/// burn-rate multiple both must exceed before an alert fires.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Monitor name, carried on every [`AlertEvent`].
    pub name: String,
    /// What counts as a bad event.
    pub objective: SloObjective,
    /// Fast window, seconds — bounds detection latency.
    pub fast_window_s: f64,
    /// Slow window, seconds — suppresses blips; must exceed the fast one.
    pub slow_window_s: f64,
    /// Burn-rate multiple (observed bad fraction / budget) both windows
    /// must exceed, e.g. `10.0`.
    pub burn_threshold: f64,
}

/// Did the alert fire or clear?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Both windows crossed the burn threshold.
    Fired,
    /// The fast window dropped back below the threshold.
    Cleared,
}

/// One deterministic alert edge (fire or clear) from an [`SloMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Name of the monitor that produced the event.
    pub slo: String,
    /// Fired or cleared.
    pub kind: AlertKind,
    /// Event time (caller clock), seconds.
    pub at_s: f64,
    /// Fast-window burn rate at the edge.
    pub fast_burn: f64,
    /// Slow-window burn rate at the edge.
    pub slow_burn: f64,
}

/// Multi-window burn-rate monitor over one [`SloObjective`].
#[derive(Debug, Clone)]
pub struct SloMonitor {
    cfg: SloConfig,
    fast: CountRing,
    slow: CountRing,
    active: bool,
}

impl SloMonitor {
    /// New monitor; windows must be positive with `fast < slow`, the
    /// budget and threshold positive.
    pub fn new(cfg: SloConfig) -> Self {
        assert!(cfg.fast_window_s > 0.0 && cfg.fast_window_s.is_finite(), "bad fast window");
        assert!(cfg.slow_window_s > cfg.fast_window_s, "slow window must exceed fast");
        assert!(cfg.objective.budget() > 0.0, "objective needs a positive error budget");
        assert!(cfg.burn_threshold > 0.0, "burn threshold must be positive");
        let fast = CountRing::new(cfg.fast_window_s);
        let slow = CountRing::new(cfg.slow_window_s);
        SloMonitor { cfg, fast, slow, active: false }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Feed one good/bad event at `now_s`.
    pub fn observe(&mut self, now_s: f64, ok: bool) {
        self.fast.observe(now_s, ok);
        self.slow.observe(now_s, ok);
    }

    /// Feed one latency sample; for a [`SloObjective::LatencyDeadline`]
    /// objective the event is bad iff it ran past the deadline. (For an
    /// availability objective this treats any finite latency as good.)
    pub fn observe_latency(&mut self, now_s: f64, latency_s: f64) {
        let ok = match self.cfg.objective {
            SloObjective::LatencyDeadline { deadline_s, .. } => latency_s <= deadline_s,
            SloObjective::Availability { .. } => latency_s.is_finite(),
        };
        self.observe(now_s, ok);
    }

    /// Burn rates (fast, slow) at `now_s`: observed bad fraction over the
    /// window divided by the error budget; 0 over an empty window.
    pub fn burn_rates(&self, now_s: f64) -> (f64, f64) {
        let budget = self.cfg.objective.budget();
        let rate = |(good, bad): (u64, u64)| {
            let n = good + bad;
            if n == 0 {
                0.0
            } else {
                (bad as f64 / n as f64) / budget
            }
        };
        (rate(self.fast.totals(now_s)), rate(self.slow.totals(now_s)))
    }

    /// Evaluate the alert edge at `now_s`. Edge-triggered: returns
    /// `Some(Fired)` on the inactive→active transition (both windows over
    /// threshold), `Some(Cleared)` when an active alert's fast window
    /// recovers, `None` otherwise.
    pub fn poll(&mut self, now_s: f64) -> Option<AlertEvent> {
        let (fast_burn, slow_burn) = self.burn_rates(now_s);
        let over = fast_burn > self.cfg.burn_threshold && slow_burn > self.cfg.burn_threshold;
        if over && !self.active {
            self.active = true;
            return Some(AlertEvent {
                slo: self.cfg.name.clone(),
                kind: AlertKind::Fired,
                at_s: now_s,
                fast_burn,
                slow_burn,
            });
        }
        if self.active && fast_burn < self.cfg.burn_threshold {
            self.active = false;
            return Some(AlertEvent {
                slo: self.cfg.name.clone(),
                kind: AlertKind::Cleared,
                at_s: now_s,
                fast_burn,
                slow_burn,
            });
        }
        None
    }

    /// Is the alert currently active?
    pub fn is_active(&self) -> bool {
        self.active
    }
}

/// Why a request trace was (or wasn't) worth keeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceVerdict {
    /// Completed under the slow threshold — counted, not kept.
    Ok,
    /// Completed, but slower than the sampler's threshold.
    Slow,
    /// Failed with an error.
    Error,
    /// Shed past its deadline.
    Shed,
}

/// One step inside a request trace (dispatch, attempt, retry, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Step time (caller clock), seconds.
    pub at_s: f64,
    /// Step label, e.g. `"attempt replica=2"`.
    pub label: String,
}

/// A captured per-request span: id, start/end, verdict, and the steps the
/// request went through.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Request id (also the exemplar id windows attach to buckets).
    pub request_id: u64,
    /// Enqueue time, seconds.
    pub start_s: f64,
    /// Final answer time, seconds.
    pub end_s: f64,
    /// How the request ended.
    pub verdict: TraceVerdict,
    /// Recorded steps, in time order.
    pub steps: Vec<TraceStep>,
}

impl RequestTrace {
    /// End-to-end duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Tail-sampler shape: what counts as slow, and how many traces to keep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSamplerConfig {
    /// Completed requests slower than this are kept as `Slow`.
    pub slow_threshold_s: f64,
    /// Maximum retained traces; older kept traces are evicted FIFO.
    pub capacity: usize,
}

/// Keeps full traces only for slow/error/shed requests, FIFO-bounded.
#[derive(Debug, Clone)]
pub struct TailSampler {
    cfg: TailSamplerConfig,
    kept: VecDeque<RequestTrace>,
    offered: u64,
    kept_total: u64,
    slow: u64,
    error: u64,
    shed: u64,
}

impl TailSampler {
    /// Empty sampler; capacity must be at least 1.
    pub fn new(cfg: TailSamplerConfig) -> Self {
        assert!(cfg.capacity >= 1, "tail sampler needs capacity >= 1");
        TailSampler {
            cfg,
            kept: VecDeque::with_capacity(cfg.capacity),
            offered: 0,
            kept_total: 0,
            slow: 0,
            error: 0,
            shed: 0,
        }
    }

    /// Offer one finished trace. An `Ok` trace slower than the threshold
    /// is reclassified `Slow`; `Ok`-and-fast traces are dropped. Returns
    /// the verdict actually assigned.
    pub fn offer(&mut self, mut trace: RequestTrace) -> TraceVerdict {
        self.offered += 1;
        if trace.verdict == TraceVerdict::Ok && trace.duration_s() > self.cfg.slow_threshold_s {
            trace.verdict = TraceVerdict::Slow;
        }
        match trace.verdict {
            TraceVerdict::Ok => return TraceVerdict::Ok,
            TraceVerdict::Slow => self.slow += 1,
            TraceVerdict::Error => self.error += 1,
            TraceVerdict::Shed => self.shed += 1,
        }
        if self.kept.len() == self.cfg.capacity {
            self.kept.pop_front();
        }
        let verdict = trace.verdict;
        self.kept.push_back(trace);
        self.kept_total += 1;
        verdict
    }

    /// Currently retained traces, oldest first.
    pub fn kept(&self) -> impl Iterator<Item = &RequestTrace> {
        self.kept.iter()
    }

    /// Traces offered so far (kept or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Traces ever kept (including since-evicted ones).
    pub fn kept_total(&self) -> u64 {
        self.kept_total
    }

    /// (slow, error, shed) keep counts.
    pub fn verdict_counts(&self) -> (u64, u64, u64) {
        (self.slow, self.error, self.shed)
    }
}

/// What happened to a replica, as the flight recorder sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A batch was dispatched at the replica.
    Dispatch,
    /// The attempt completed successfully.
    Done,
    /// The attempt crashed.
    Crash,
    /// The attempt straggled past its wait cap.
    Timeout,
    /// The attempt returned corrupt output.
    Corrupt,
    /// The replica's circuit breaker opened.
    BreakerOpen,
    /// The replica was evicted by health checking.
    Eviction,
    /// The replica respawned into rotation.
    Respawn,
}

impl FlightEventKind {
    /// Stable name used in the JSON dump.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::Dispatch => "Dispatch",
            FlightEventKind::Done => "Done",
            FlightEventKind::Crash => "Crash",
            FlightEventKind::Timeout => "Timeout",
            FlightEventKind::Corrupt => "Corrupt",
            FlightEventKind::BreakerOpen => "BreakerOpen",
            FlightEventKind::Eviction => "Eviction",
            FlightEventKind::Respawn => "Respawn",
        }
    }
}

/// One fixed-size flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Event time (caller clock), seconds.
    pub at_s: f64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Kind-specific detail: batch size for dispatches, elapsed seconds
    /// for outcomes, 0 otherwise.
    pub detail: f64,
}

/// JSON number: `Display` for finite floats is valid JSON; non-finite
/// values (which JSON cannot carry) become `null`.
fn jnum(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// JSON string literal with `"`/`\`/control-character escaping.
fn jstr(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A fixed-capacity ring of recent [`FlightEvent`]s per replica.
///
/// `capacity` is the declared per-replica bound: recording the
/// `capacity + 1`-th event evicts the oldest, so memory is
/// `replicas × capacity` events forever, no matter how long the run.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    rings: Vec<VecDeque<FlightEvent>>,
    recorded: u64,
}

impl FlightRecorder {
    /// New recorder for `replicas` replicas, each keeping at most
    /// `capacity` recent events.
    pub fn new(replicas: usize, capacity: usize) -> Self {
        assert!(replicas >= 1, "flight recorder needs at least one replica");
        assert!(capacity >= 1, "flight recorder ring needs a positive capacity bound");
        FlightRecorder {
            capacity,
            rings: (0..replicas).map(|_| VecDeque::with_capacity(capacity)).collect(),
            recorded: 0,
        }
    }

    /// The declared per-replica capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of replica rings.
    pub fn replicas(&self) -> usize {
        self.rings.len()
    }

    /// Events recorded over the recorder's lifetime (retained or evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Record one event at `replica` (out-of-range replicas are ignored —
    /// the recorder must never take the serving path down).
    pub fn record(&mut self, replica: usize, event: FlightEvent) {
        let Some(ring) = self.rings.get_mut(replica) else {
            return;
        };
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
        self.recorded += 1;
    }

    /// Retained events for one replica, oldest first (empty when out of
    /// range).
    pub fn events(&self, replica: usize) -> impl Iterator<Item = &FlightEvent> {
        self.rings.get(replica).into_iter().flatten()
    }

    /// Render the retained rings as one JSON document tagged with the dump
    /// `reason` and time — the post-mortem artifact written when a breaker
    /// opens or a replica is evicted. Hand-rolled writer (fixed keys, no
    /// reflection) so the recorder stays dependency-free and usable from
    /// crates that do not link a JSON library.
    pub fn dump_json(&self, reason: &str, at_s: f64) -> String {
        let mut out =
            String::with_capacity(64 + 48 * self.rings.iter().map(VecDeque::len).sum::<usize>());
        out.push_str("{\"reason\":");
        jstr(&mut out, reason);
        out.push_str(",\"at_s\":");
        jnum(&mut out, at_s);
        let _ = write!(out, ",\"capacity\":{},\"replicas\":[", self.capacity);
        for (r, ring) in self.rings.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('[');
            for (i, e) in ring.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"at_s\":");
                jnum(&mut out, e.at_s);
                let _ = write!(out, ",\"kind\":\"{}\",\"detail\":", e.kind.name());
                jnum(&mut out, e.detail);
                out.push('}');
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn availability_cfg(fast: f64, slow: f64) -> SloConfig {
        SloConfig {
            name: "availability".to_string(),
            objective: SloObjective::Availability { target: 0.999 },
            fast_window_s: fast,
            slow_window_s: slow,
            burn_threshold: 10.0,
        }
    }

    #[test]
    fn steady_state_never_alerts() {
        let mut m = SloMonitor::new(availability_cfg(0.2, 0.8));
        for i in 0..2000 {
            let t = i as f64 * 1e-3;
            m.observe(t, true);
            assert!(m.poll(t).is_none(), "all-good stream must not alert at t={t}");
        }
        assert_eq!(m.burn_rates(2.0), (0.0, 0.0));
    }

    #[test]
    fn sustained_badness_fires_then_recovery_clears() {
        let mut m = SloMonitor::new(availability_cfg(0.2, 0.8));
        let mut events = Vec::new();
        // 1 s of good traffic, then everything fails.
        let mut t = 0.0;
        for i in 0..1000 {
            t = i as f64 * 1e-3;
            m.observe(t, true);
            assert!(m.poll(t).is_none());
        }
        for i in 0..1000 {
            t = 1.0 + i as f64 * 1e-3;
            m.observe(t, false);
            if let Some(e) = m.poll(t) {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 1, "exactly one Fired edge: {events:?}");
        assert_eq!(events[0].kind, AlertKind::Fired);
        assert!(events[0].at_s >= 1.0 && events[0].at_s < 1.4, "detected within 2 fast windows");
        assert!(events[0].fast_burn > 10.0 && events[0].slow_burn > 10.0);
        assert!(m.is_active());
        // Recovery: good traffic until the fast window is clean again.
        let mut cleared = None;
        for i in 0..2000 {
            let tc = t + 1e-3 + i as f64 * 1e-3;
            m.observe(tc, true);
            if let Some(e) = m.poll(tc) {
                cleared = Some(e);
                break;
            }
        }
        let cleared = cleared.expect("recovery must clear the alert");
        assert_eq!(cleared.kind, AlertKind::Cleared);
        assert!(!m.is_active());
    }

    #[test]
    fn short_blip_does_not_fire_the_slow_window() {
        // A 4 ms error blip inside healthy traffic: the fast window spikes
        // past the threshold (a single-window monitor would have paged) but
        // the 0.8 s slow window dilutes the blip below budget, so no alert.
        let mut m = SloMonitor::new(availability_cfg(0.1, 0.8));
        let mut max_fast_burn = 0.0f64;
        for i in 0..3000 {
            let t = i as f64 * 1e-3;
            let blip = (1.0..1.004).contains(&t);
            m.observe(t, !blip);
            max_fast_burn = max_fast_burn.max(m.burn_rates(t).0);
            assert!(m.poll(t).is_none(), "blip must not fire at t={t}");
        }
        assert!(
            max_fast_burn > 10.0,
            "the fast window alone would have fired ({max_fast_burn}); the slow window is what suppressed it"
        );
    }

    #[test]
    fn latency_objective_counts_deadline_misses() {
        let mut m = SloMonitor::new(SloConfig {
            name: "p99-deadline".to_string(),
            objective: SloObjective::LatencyDeadline { deadline_s: 0.25, tolerated_fraction: 0.01 },
            fast_window_s: 0.2,
            slow_window_s: 0.8,
            burn_threshold: 10.0,
        });
        let mut fired = false;
        for i in 0..2000 {
            let t = i as f64 * 1e-3;
            let lat = if t < 1.0 { 0.01 } else { 0.5 }; // everything late after 1 s
            m.observe_latency(t, lat);
            if m.poll(t).is_some_and(|e| e.kind == AlertKind::Fired) {
                fired = true;
                assert!((1.0..1.4).contains(&t), "fired at {t}");
                break;
            }
        }
        assert!(fired, "sustained deadline misses must fire");
    }

    #[test]
    fn identical_event_streams_give_identical_alerts() {
        let drive = |cfg: SloConfig| {
            let mut m = SloMonitor::new(cfg);
            let mut out = Vec::new();
            for i in 0..4000 {
                let t = i as f64 * 5e-4;
                m.observe(t, !(1.0..1.5).contains(&t));
                if let Some(e) = m.poll(t) {
                    out.push(e);
                }
            }
            out
        };
        let a = drive(availability_cfg(0.2, 0.8));
        let b = drive(availability_cfg(0.2, 0.8));
        assert_eq!(a, b, "pure state machine: identical streams, identical alerts");
        assert!(!a.is_empty());
    }

    fn trace(id: u64, start: f64, end: f64, verdict: TraceVerdict) -> RequestTrace {
        RequestTrace { request_id: id, start_s: start, end_s: end, verdict, steps: Vec::new() }
    }

    #[test]
    fn tail_sampler_keeps_only_the_tail() {
        let mut s = TailSampler::new(TailSamplerConfig { slow_threshold_s: 0.1, capacity: 8 });
        assert_eq!(s.offer(trace(1, 0.0, 0.05, TraceVerdict::Ok)), TraceVerdict::Ok);
        assert_eq!(s.offer(trace(2, 0.0, 0.5, TraceVerdict::Ok)), TraceVerdict::Slow);
        assert_eq!(s.offer(trace(3, 0.0, 0.01, TraceVerdict::Error)), TraceVerdict::Error);
        assert_eq!(s.offer(trace(4, 0.0, 0.3, TraceVerdict::Shed)), TraceVerdict::Shed);
        assert_eq!(s.offered(), 4);
        assert_eq!(s.kept_total(), 3, "the fast Ok trace is dropped");
        assert_eq!(s.verdict_counts(), (1, 1, 1));
        let ids: Vec<u64> = s.kept().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn tail_sampler_capacity_is_a_fifo_bound() {
        let mut s = TailSampler::new(TailSamplerConfig { slow_threshold_s: 0.1, capacity: 3 });
        for id in 0..10u64 {
            s.offer(trace(id, 0.0, 1.0, TraceVerdict::Error));
        }
        assert_eq!(s.kept().count(), 3);
        let ids: Vec<u64> = s.kept().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![7, 8, 9], "oldest kept traces evicted first");
        assert_eq!(s.kept_total(), 10);
    }

    #[test]
    fn flight_recorder_ring_is_capacity_bounded() {
        let mut fr = FlightRecorder::new(2, 4);
        for i in 0..10 {
            fr.record(
                0,
                FlightEvent { at_s: i as f64, kind: FlightEventKind::Dispatch, detail: 16.0 },
            );
        }
        fr.record(1, FlightEvent { at_s: 1.0, kind: FlightEventKind::Crash, detail: 0.002 });
        fr.record(7, FlightEvent { at_s: 1.0, kind: FlightEventKind::Crash, detail: 0.0 });
        assert_eq!(fr.capacity(), 4);
        assert_eq!(fr.replicas(), 2);
        assert_eq!(fr.events(0).count(), 4, "ring holds only the declared capacity");
        assert_eq!(fr.events(0).next().map(|e| e.at_s), Some(6.0), "oldest evicted first");
        assert_eq!(fr.events(1).count(), 1);
        assert_eq!(fr.events(7).count(), 0, "out-of-range replica is ignored");
        assert_eq!(fr.recorded(), 11);
    }

    #[test]
    fn flight_recorder_dump_is_valid_json_with_reason() {
        let mut fr = FlightRecorder::new(2, 8);
        fr.record(0, FlightEvent { at_s: 0.5, kind: FlightEventKind::Dispatch, detail: 8.0 });
        fr.record(0, FlightEvent { at_s: 0.51, kind: FlightEventKind::Crash, detail: 0.01 });
        fr.record(1, FlightEvent { at_s: 0.52, kind: FlightEventKind::Eviction, detail: 0.0 });
        let json = fr.dump_json("breaker_open", 0.52);
        assert_eq!(
            json,
            concat!(
                "{\"reason\":\"breaker_open\",\"at_s\":0.52,\"capacity\":8,\"replicas\":[",
                "[{\"at_s\":0.5,\"kind\":\"Dispatch\",\"detail\":8},",
                "{\"at_s\":0.51,\"kind\":\"Crash\",\"detail\":0.01}],",
                "[{\"at_s\":0.52,\"kind\":\"Eviction\",\"detail\":0}]]}"
            ),
            "dump is the exact fixed-schema JSON document"
        );
    }

    #[test]
    fn flight_recorder_dump_escapes_reason_and_nonfinite_times() {
        let mut fr = FlightRecorder::new(1, 2);
        fr.record(
            0,
            FlightEvent { at_s: f64::NAN, kind: FlightEventKind::Done, detail: f64::INFINITY },
        );
        let json = fr.dump_json("say \"hi\"\\\n", 0.0);
        assert!(json.contains("\"reason\":\"say \\\"hi\\\"\\\\\\u000a\""), "escaped: {json}");
        assert!(json.contains("\"at_s\":null"), "NaN becomes null: {json}");
        assert!(json.contains("\"detail\":null"), "infinity becomes null: {json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
