#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dd-obs — workspace-wide observability
//!
//! Hierarchical spans, counters, gauges and log-bucketed histograms behind a
//! single process-global registry, with three exporters: Chrome
//! `chrome://tracing` JSON, structured JSONL, and an aligned text summary.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** The registry starts disabled and every
//!    instrumentation call first performs one relaxed atomic load; when it
//!    reads `false` the call returns without locking or allocating. Library
//!    crates (`dd-tensor`, `dd-nn`, `dd-parallel`, …) therefore keep their
//!    instrumentation unconditionally compiled in.
//! 2. **One timing source.** [`SpanGuard::finish`] returns the elapsed
//!    seconds it just recorded, so code that needs a duration (e.g. epoch
//!    stats) takes it *from the span* rather than keeping a parallel
//!    `Instant::now()` — the trace and the report can never disagree.
//! 3. **One phase vocabulary.** [`Phase`] is shared with the `dd-hpcsim`
//!    analytic simulator (which re-exports it), so measured and modeled
//!    compute/comm/io/checkpoint breakdowns line up row for row.
//! 4. **Streaming telemetry takes caller time.** The sliding windows
//!    ([`SlidingWindow`]), SLO burn-rate monitors ([`SloMonitor`]), tail
//!    sampler and flight recorder are pure state machines over a
//!    caller-supplied `now_s` — real engines pass [`monotonic_seconds`],
//!    virtual-time simulators pass event time — so identical event streams
//!    yield bit-identical telemetry in both worlds.
//!
//! ## Usage
//!
//! ```
//! dd_obs::enable();
//! {
//!     let _epoch = dd_obs::span("epoch"); // structural span: no phase
//!     let fwd = dd_obs::span_phase("forward", dd_obs::Phase::Compute);
//!     dd_obs::counter_add("flops_total", 1_000_000);
//!     let secs = fwd.finish(); // seconds, same number the trace records
//!     dd_obs::hist_record("step_seconds", secs);
//! }
//! let snap = dd_obs::snapshot();
//! assert!(snap.counter("flops_total") > 0);
//! println!("{}", dd_obs::summary());
//! # dd_obs::disable();
//! # dd_obs::reset();
//! ```
//!
//! Binaries opt in via the environment: [`EnvSession::from_env`] enables the
//! registry when `DD_TRACE=<path>` (Chrome trace) or `DD_METRICS=<path>`
//! (JSONL) is set and writes the files when the session guard drops.

mod export;
mod hist;
mod phase;
mod registry;
pub mod telemetry;
pub mod window;

pub use export::{chrome_trace, jsonl as jsonl_export, summary as summary_export, EnvSession};
pub use hist::{HistSummary, Histogram};
pub use phase::Phase;
pub use registry::{global, Registry, Snapshot, SpanGuard, SpanRecord};
pub use telemetry::{
    AlertEvent, AlertKind, FlightEvent, FlightEventKind, FlightRecorder, RequestTrace, SloConfig,
    SloMonitor, SloObjective, TailSampler, TailSamplerConfig, TraceStep, TraceVerdict,
};
pub use window::{SlidingWindow, WindowConfig, WindowedGauge};

/// Turn global recording on.
pub fn enable() {
    global().enable();
}

/// Turn global recording off (collected data is kept).
pub fn disable() {
    global().disable();
}

/// Is global recording on?
#[inline]
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Drop all collected data (the enabled flag is left as-is).
pub fn reset() {
    global().reset();
}

/// Open a structural span (no phase). See [`Registry::span`].
#[inline]
pub fn span(name: impl Into<std::borrow::Cow<'static, str>>) -> SpanGuard {
    global().span(name, None)
}

/// Open a leaf span attributed to a [`Phase`].
#[inline]
pub fn span_phase(name: impl Into<std::borrow::Cow<'static, str>>, phase: Phase) -> SpanGuard {
    global().span(name, Some(phase))
}

/// Add to a monotonic counter.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    global().counter_add(name, delta);
}

/// Set a gauge.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    global().gauge_set(name, value);
}

/// Record a histogram sample.
#[inline]
pub fn hist_record(name: &str, value: f64) {
    global().hist_record(name, value);
}

/// Record a sample into a named sliding window at caller time `now_s`.
/// See [`Registry::window_record`].
#[inline]
pub fn window_record(name: &str, now_s: f64, value: f64) {
    global().window_record(name, now_s, value);
}

/// Like [`window_record`], with an explicit [`WindowConfig`] used if the
/// window does not exist yet.
#[inline]
pub fn window_record_cfg(name: &str, now_s: f64, value: f64, cfg: WindowConfig) {
    global().window_record_cfg(name, now_s, value, cfg);
}

/// Windowed summary of one named sliding window evaluated at `now_s`
/// (`None` when nothing was recorded). See [`Registry::window_summary`].
pub fn window_summary(name: &str, now_s: f64) -> Option<HistSummary> {
    global().window_summary(name, now_s)
}

/// Monotonic seconds since the registry epoch — the workspace's single
/// sanctioned timestamp source outside span timing. See
/// [`Registry::monotonic_seconds`].
#[inline]
pub fn monotonic_seconds() -> f64 {
    global().monotonic_seconds()
}

/// Total recorded seconds in one phase.
pub fn time_in(phase: Phase) -> f64 {
    global().time_in(phase)
}

/// Current counter value (0 when never touched).
pub fn counter(name: &str) -> u64 {
    global().counter(name)
}

/// Summary of one histogram (`None` when nothing was recorded under
/// `name`). See [`Registry::hist_summary`].
pub fn hist_summary(name: &str) -> Option<HistSummary> {
    global().hist_summary(name)
}

/// Copy out everything collected so far.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Render the current snapshot as Chrome trace JSON.
pub fn chrome_trace_json() -> String {
    export::chrome_trace(&snapshot())
}

/// Render the current snapshot as JSONL.
pub fn jsonl() -> String {
    export::jsonl(&snapshot())
}

/// Render the current snapshot as an aligned text summary.
pub fn summary() -> String {
    export::summary(&snapshot())
}

/// Write the current snapshot as Chrome trace JSON to `path`.
pub fn write_chrome_trace(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Write the current snapshot as JSONL to `path`.
pub fn write_jsonl(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, jsonl())
}
