//! Sliding-window aggregation: a ring of time-bucketed sub-histograms.
//!
//! The cumulative [`Histogram`] answers "what happened since the run
//! started"; an SLO monitor needs "what happened in the last N seconds".
//! A [`SlidingWindow`] keeps a fixed ring of sub-histograms, one per time
//! bucket of `bucket_s` seconds, and summarizes by merging the buckets
//! still inside the horizon. Rotation is lazy and allocation-free: each
//! slot remembers which *absolute* bucket index it holds, so recording
//! into a slot whose epoch is stale simply clears and reuses it — a jump
//! of any length (idle period, virtual-time leap) costs O(ring) at most.
//!
//! Time is a caller-supplied `now_s`, *not* a clock read. The threaded
//! server passes `dd_obs::monotonic_seconds()` and the virtual-time sim
//! twin passes its event time; identical event streams therefore produce
//! bit-identical windowed telemetry — the invariant `tests/telemetry.rs`
//! pins.
//!
//! Boundary semantics (the rotation-boundary regression case): a sample at
//! exactly `t = k·bucket_s` lands in absolute bucket `k` (floor), and a
//! window queried at `now` covers absolute buckets `(cur − ring, cur]`
//! where `cur = floor(now / bucket_s)` — so a sample recorded on a bucket
//! edge stays visible for a full `ring` buckets after its edge.

use crate::hist::{HistSummary, Histogram};
use std::collections::BTreeMap;

/// Slot epoch sentinel: never a valid absolute bucket index.
const EMPTY: i64 = i64::MIN;

/// Shape of one sliding window: `buckets` ring slots of `bucket_s` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Width of one time bucket, seconds.
    pub bucket_s: f64,
    /// Ring length; the horizon is `buckets * bucket_s`.
    pub buckets: usize,
}

impl WindowConfig {
    /// New config; both knobs must be positive and `bucket_s` finite.
    pub fn new(bucket_s: f64, buckets: usize) -> Self {
        assert!(bucket_s.is_finite() && bucket_s > 0.0, "bucket_s must be positive");
        assert!(buckets >= 1, "ring needs at least one bucket");
        WindowConfig { bucket_s, buckets }
    }

    /// Total window horizon in seconds.
    pub fn horizon_s(&self) -> f64 {
        self.bucket_s * self.buckets as f64
    }
}

impl Default for WindowConfig {
    /// One-second buckets over a one-minute horizon.
    fn default() -> Self {
        WindowConfig::new(1.0, 60)
    }
}

fn abs_bucket(cfg: &WindowConfig, now_s: f64) -> i64 {
    let now = if now_s.is_finite() && now_s > 0.0 { now_s } else { 0.0 };
    // dd-lint: allow(lossy-cast/float-to-int) -- time-bucket index: floor() is the bucketing operation; non-negative by the clamp above
    (now / cfg.bucket_s).floor() as i64
}

/// A ring of time-bucketed sub-[`Histogram`]s with windowed quantiles,
/// rates, and per-bucket exemplar request-ids.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    cfg: WindowConfig,
    slots: Vec<Histogram>,
    epochs: Vec<i64>,
    /// Latency-bucket → (absolute time bucket, request id) of the most
    /// recent sample in that latency bucket. Size-bounded by the fixed
    /// histogram bucket count ([`Histogram::num_buckets`]).
    exemplars: BTreeMap<usize, (i64, u64)>,
}

impl SlidingWindow {
    /// Empty window.
    pub fn new(cfg: WindowConfig) -> Self {
        SlidingWindow {
            cfg,
            slots: (0..cfg.buckets).map(|_| Histogram::new()).collect(),
            epochs: vec![EMPTY; cfg.buckets],
            exemplars: BTreeMap::new(),
        }
    }

    /// The configured shape.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    fn slot_for(&mut self, now_s: f64) -> usize {
        let cur = abs_bucket(&self.cfg, now_s);
        // dd-lint: allow(lossy-cast/float-to-int) -- ring slot: modulo of a non-negative bucket index by the ring length
        let slot = (cur.rem_euclid(self.cfg.buckets as i64)) as usize;
        if self.epochs[slot] != cur {
            self.slots[slot] = Histogram::new();
            self.epochs[slot] = cur;
        }
        slot
    }

    /// Record one sample at time `now_s`.
    pub fn record(&mut self, now_s: f64, value: f64) {
        let slot = self.slot_for(now_s);
        self.slots[slot].record(value);
    }

    /// Record one sample and attach `request_id` as the exemplar for the
    /// latency bucket the sample lands in (most recent sample wins).
    pub fn record_with_id(&mut self, now_s: f64, value: f64, request_id: u64) {
        let cur = abs_bucket(&self.cfg, now_s);
        self.record(now_s, value);
        self.exemplars.insert(Histogram::bucket_of(value), (cur, request_id));
    }

    fn live(&self, now_s: f64) -> impl Iterator<Item = usize> + '_ {
        let cur = abs_bucket(&self.cfg, now_s);
        let oldest = cur - self.cfg.buckets as i64;
        (0..self.cfg.buckets).filter(move |&i| {
            let e = self.epochs[i];
            e != EMPTY && e > oldest && e <= cur
        })
    }

    /// Windowed p50/p95/p99 summary over samples still inside the horizon
    /// at `now_s` (all-zero when the window is empty).
    pub fn summary(&self, now_s: f64) -> HistSummary {
        let mut merged = Histogram::new();
        for i in self.live(now_s) {
            merged.merge(&self.slots[i]);
        }
        merged.summary()
    }

    /// Samples still inside the horizon at `now_s`.
    pub fn count(&self, now_s: f64) -> u64 {
        self.live(now_s).map(|i| self.slots[i].count()).sum()
    }

    /// Windowed event rate: live samples divided by the horizon.
    pub fn rate_per_s(&self, now_s: f64) -> f64 {
        self.count(now_s) as f64 / self.cfg.horizon_s()
    }

    /// Exemplar request-ids still inside the horizon, as sorted
    /// `(latency_bucket, request_id)` pairs.
    pub fn exemplars(&self, now_s: f64) -> Vec<(usize, u64)> {
        let cur = abs_bucket(&self.cfg, now_s);
        let oldest = cur - self.cfg.buckets as i64;
        self.exemplars
            .iter()
            .filter(|(_, &(epoch, _))| epoch > oldest && epoch <= cur)
            .map(|(&bucket, &(_, id))| (bucket, id))
            .collect()
    }
}

/// A windowed gauge: last/max/mean of a sampled level (queue depth, open
/// breakers) over the same lazy time-bucket ring as [`SlidingWindow`].
#[derive(Debug, Clone)]
pub struct WindowedGauge {
    cfg: WindowConfig,
    max: Vec<f64>,
    sum: Vec<f64>,
    n: Vec<u64>,
    epochs: Vec<i64>,
    latest: f64,
    latest_epoch: i64,
}

impl WindowedGauge {
    /// Empty gauge window.
    pub fn new(cfg: WindowConfig) -> Self {
        WindowedGauge {
            cfg,
            max: vec![f64::NEG_INFINITY; cfg.buckets],
            sum: vec![0.0; cfg.buckets],
            n: vec![0; cfg.buckets],
            epochs: vec![EMPTY; cfg.buckets],
            latest: 0.0,
            latest_epoch: EMPTY,
        }
    }

    /// Record the gauge level at `now_s`.
    pub fn set(&mut self, now_s: f64, value: f64) {
        let cur = abs_bucket(&self.cfg, now_s);
        // dd-lint: allow(lossy-cast/float-to-int) -- ring slot: modulo of a non-negative bucket index by the ring length
        let slot = (cur.rem_euclid(self.cfg.buckets as i64)) as usize;
        if self.epochs[slot] != cur {
            self.max[slot] = f64::NEG_INFINITY;
            self.sum[slot] = 0.0;
            self.n[slot] = 0;
            self.epochs[slot] = cur;
        }
        self.max[slot] = self.max[slot].max(value);
        self.sum[slot] += value;
        self.n[slot] += 1;
        self.latest = value;
        self.latest_epoch = cur;
    }

    /// The most recent level ever set (0 before the first set).
    pub fn last(&self) -> f64 {
        if self.latest_epoch == EMPTY {
            0.0
        } else {
            self.latest
        }
    }

    fn live(&self, now_s: f64) -> impl Iterator<Item = usize> + '_ {
        let cur = abs_bucket(&self.cfg, now_s);
        let oldest = cur - self.cfg.buckets as i64;
        (0..self.cfg.buckets).filter(move |&i| {
            let e = self.epochs[i];
            e != EMPTY && e > oldest && e <= cur
        })
    }

    /// Maximum level observed inside the horizon (0 when empty).
    pub fn max(&self, now_s: f64) -> f64 {
        let m = self.live(now_s).map(|i| self.max[i]).fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            0.0
        } else {
            m
        }
    }

    /// Mean of the levels sampled inside the horizon (0 when empty).
    pub fn mean(&self, now_s: f64) -> f64 {
        let (sum, n) = self
            .live(now_s)
            .map(|i| (self.sum[i], self.n[i]))
            .fold((0.0, 0u64), |(s, c), (bs, bc)| (s + bs, c + bc));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_summary_matches_cumulative_inside_horizon() {
        let mut w = SlidingWindow::new(WindowConfig::new(1.0, 10));
        let mut direct = Histogram::new();
        for i in 0..500 {
            let t = i as f64 * 0.01; // all within 5 s < 10 s horizon
            let v = 1e-3 * (1.0 + (i % 37) as f64);
            w.record(t, v);
            direct.record(v);
        }
        // Counts, extrema and quantiles are exact (bucket counts merge
        // exactly); sum/mean only to float summation order.
        let (ws, ds) = (w.summary(5.0), direct.summary());
        assert_eq!((ws.count, ws.min, ws.max), (ds.count, ds.min, ds.max));
        assert_eq!((ws.p50, ws.p95, ws.p99), (ds.p50, ds.p95, ds.p99));
        assert!((ws.sum - ds.sum).abs() < 1e-9 && (ws.mean - ds.mean).abs() < 1e-9);
        assert_eq!(w.count(5.0), 500);
    }

    #[test]
    fn old_samples_expire_as_the_window_slides() {
        let mut w = SlidingWindow::new(WindowConfig::new(1.0, 4));
        w.record(0.5, 1.0);
        w.record(2.5, 2.0);
        assert_eq!(w.count(2.5), 2);
        // At t=4.5 bucket 0 (epoch 0) has left the (0, 4] window.
        assert_eq!(w.count(4.5), 1);
        assert_eq!(w.summary(4.5).max, 2.0);
        // Far future: everything expired.
        assert_eq!(w.count(100.0), 0);
        assert_eq!(w.summary(100.0).count, 0);
    }

    #[test]
    fn rotation_boundary_samples_land_in_the_new_bucket() {
        // The regression case from the satellite: events exactly on bucket
        // edges. A sample at t = k·bucket_s belongs to bucket k and must
        // stay visible until now crosses (k + ring)·bucket_s.
        let cfg = WindowConfig::new(0.25, 4);
        let mut w = SlidingWindow::new(cfg);
        w.record(1.0, 7.0); // exactly on the bucket-4 edge
        assert_eq!(w.count(1.0), 1, "edge sample visible at its own timestamp");
        assert_eq!(w.count(1.999), 1, "still inside the 1 s horizon");
        assert_eq!(w.count(2.0), 0, "expires exactly when bucket 8 opens");
        // An edge sample and a mid-bucket sample in the same bucket expire
        // together.
        let mut w2 = SlidingWindow::new(cfg);
        w2.record(0.5, 1.0); // bucket 2
        w2.record(0.8, 2.0); // bucket 3
        assert_eq!(w2.count(1.49), 2);
        assert_eq!(w2.count(1.5), 1, "bucket 2 expires exactly at 1.5");
        assert_eq!(w2.count(1.75), 0, "bucket 3 expires exactly at 1.75");
    }

    #[test]
    fn ring_reuse_after_long_idle_gap() {
        let mut w = SlidingWindow::new(WindowConfig::new(1.0, 4));
        w.record(0.5, 1.0);
        // A jump of many ring lengths: the slot is lazily recycled.
        w.record(1000.5, 3.0);
        assert_eq!(w.count(1000.5), 1);
        assert_eq!(w.summary(1000.5).max, 3.0);
    }

    #[test]
    fn rate_counts_only_live_samples() {
        let mut w = SlidingWindow::new(WindowConfig::new(1.0, 2));
        for i in 0..10 {
            w.record(0.05 * i as f64, 1.0);
        }
        assert_eq!(w.rate_per_s(0.5), 5.0, "10 samples over a 2 s horizon");
        assert_eq!(w.rate_per_s(50.0), 0.0);
    }

    #[test]
    fn exemplars_attach_to_latency_buckets_and_expire() {
        let mut w = SlidingWindow::new(WindowConfig::new(1.0, 2));
        w.record_with_id(0.1, 1e-3, 41);
        w.record_with_id(0.2, 1e-3, 42); // same latency bucket: newest wins
        w.record_with_id(0.3, 1.0, 99);
        let ex = w.exemplars(0.5);
        assert_eq!(ex.len(), 2);
        assert!(ex.contains(&(Histogram::bucket_of(1e-3), 42)));
        assert!(ex.contains(&(Histogram::bucket_of(1.0), 99)));
        assert!(w.exemplars(10.0).is_empty(), "exemplars expire with their time bucket");
    }

    #[test]
    fn negative_and_nonfinite_now_clamp_to_zero() {
        let mut w = SlidingWindow::new(WindowConfig::new(1.0, 2));
        w.record(-5.0, 1.0);
        w.record(f64::NAN, 2.0);
        assert_eq!(w.count(0.0), 2, "bad timestamps clamp into bucket 0");
    }

    #[test]
    fn gauge_tracks_last_max_mean_over_horizon() {
        let mut g = WindowedGauge::new(WindowConfig::new(1.0, 2));
        assert_eq!(g.last(), 0.0);
        g.set(0.1, 4.0);
        g.set(0.2, 10.0);
        g.set(1.5, 1.0);
        assert_eq!(g.last(), 1.0);
        assert_eq!(g.max(1.5), 10.0);
        assert!((g.mean(1.5) - 5.0).abs() < 1e-12);
        // Bucket 0 expires at t=2.0; only the t=1.5 sample remains.
        assert_eq!(g.max(2.0), 1.0);
        assert_eq!(g.max(100.0), 0.0, "empty horizon reads zero");
        assert_eq!(g.last(), 1.0, "last survives expiry");
    }
}
