//! Property-based tests for the tensor substrate's algebraic invariants.

use dd_tensor::{matmul, matmul_nt, matmul_prec, matmul_tn, precision, Matrix, Precision, Rng64};
use proptest::prelude::*;

/// Strategy: a small matrix with shape in [1, 12] and bounded entries.
fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: matrices A (m×k) and B (k×n) with compatible shapes.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=10, 1usize..=10, 1usize..=10).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-10.0f32..10.0, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d)),
            proptest::collection::vec(-10.0f32..10.0, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d)),
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_shape(m in matrix(12)) {
        let t = m.transpose();
        prop_assert_eq!(t.shape(), (m.cols(), m.rows()));
    }

    #[test]
    fn matmul_identity_neutral(m in matrix(10)) {
        let left = matmul(&Matrix::eye(m.rows()), &m);
        let right = matmul(&m, &Matrix::eye(m.cols()));
        prop_assert!(left.approx_eq(&m, 1e-3));
        prop_assert!(right.approx_eq(&m, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in matmul_pair(), scale in -2.0f32..2.0) {
        // A·(B + sB) = A·B + s·(A·B)
        let mut b2 = b.clone();
        b2.scale(1.0 + scale);
        let lhs = matmul(&a, &b2);
        let mut rhs = matmul(&a, &b);
        rhs.scale(1.0 + scale);
        let tol = 1e-2 * (1.0 + lhs.max_abs());
        prop_assert!(lhs.approx_eq(&rhs, tol), "lhs vs rhs differ beyond {tol}");
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn nt_tn_consistent_with_explicit_transpose((a, b) in matmul_pair()) {
        let nt = matmul_nt(&a, &b.transpose());
        let direct = matmul(&a, &b);
        prop_assert!(nt.approx_eq(&direct, 1e-2));
        let tn = matmul_tn(&a.transpose(), &b);
        prop_assert!(tn.approx_eq(&direct, 1e-2));
    }

    #[test]
    fn precision_paths_approximate_f32((a, b) in matmul_pair()) {
        let reference = matmul(&a, &b);
        let denom = reference.max_abs().max(1.0);
        for p in [Precision::F64, Precision::Bf16, Precision::F16, Precision::Int8] {
            let approx = matmul_prec(&a, &b, p);
            let rel = approx.zip_map(&reference, |x, y| (x - y).abs()).max_abs() / denom;
            let bound = match p {
                Precision::F64 => 1e-5,
                Precision::Bf16 => 0.05,
                Precision::F16 => 0.01,
                Precision::Int8 => 0.12,
                Precision::F32 => unreachable!(),
            };
            prop_assert!(rel < bound, "{p}: relative error {rel}");
        }
    }

    #[test]
    fn bf16_roundtrip_idempotent(x in -1e30f32..1e30) {
        let once = precision::round_bf16(x);
        prop_assert_eq!(precision::round_bf16(once), once);
    }

    #[test]
    fn f16_roundtrip_idempotent(x in -60000.0f32..60000.0) {
        let once = precision::round_f16(x);
        prop_assert_eq!(precision::round_f16(once), once);
    }

    #[test]
    fn f16_conversion_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(precision::round_f16(lo) <= precision::round_f16(hi));
    }

    #[test]
    fn quantize_i8_bounded_error(values in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let (codes, scale) = precision::quantize_i8(&values);
        let mut back = vec![0f32; values.len()];
        precision::dequantize_i8(&codes, scale, &mut back);
        for (&v, &b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() <= 0.5 * scale + 1e-6);
        }
    }

    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = Rng64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_split_streams_reproducible(seed in any::<u64>(), label in any::<u64>()) {
        let parent = Rng64::new(seed);
        let mut a = parent.split(label);
        let mut b = parent.split(label);
        for _ in 0..10 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_preserves_multiset(mut v in proptest::collection::vec(any::<i32>(), 0..50), seed in any::<u64>()) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        Rng64::new(seed).shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }

    #[test]
    fn softmax_rows_is_distribution(m in matrix(10)) {
        let mut s = m.clone();
        dd_tensor::softmax_rows(&mut s);
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn standardizer_inverse_roundtrips(m in matrix(10)) {
        prop_assume!(m.rows() >= 2);
        let sc = dd_tensor::Standardizer::fit(&m);
        let mut t = m.clone();
        sc.transform(&mut t);
        sc.inverse_transform(&mut t);
        let tol = 1e-3 * (1.0 + m.max_abs());
        prop_assert!(t.approx_eq(&m, tol));
    }
}
