//! Dense row-major `f32` matrix — the workhorse value type of the workspace.
//!
//! Batches of samples are stored as one row per sample. The layout is plain
//! row-major `Vec<f32>` so kernels can use slice arithmetic and Rayon's
//! `par_chunks_mut` to parallelize over disjoint row blocks with no unsafe
//! code.

use crate::rng::Rng64;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense 2-D matrix of `f32` in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from an existing row-major buffer. Panics if the length does not
    /// match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build from a nested slice of rows (test/readability helper).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Build by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Gaussian-initialized matrix with the given mean and standard deviation.
    pub fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut Rng64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        rng.fill_gaussian(&mut m.data, mean, std);
        m
    }

    /// Uniform-initialized matrix in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        rng.fill_uniform(&mut m.data, lo, hi);
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the full row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the full row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Rayon parallel iterator over rows.
    pub fn par_iter_rows(&self) -> impl IndexedParallelIterator<Item = &[f32]> {
        self.data.par_chunks_exact(self.cols.max(1))
    }

    /// Rayon parallel iterator over mutable rows.
    pub fn par_iter_rows_mut(&mut self) -> impl IndexedParallelIterator<Item = &mut [f32]> {
        let cols = self.cols.max(1);
        self.data.par_chunks_exact_mut(cols)
    }

    /// Copy of a contiguous block of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice {start}..{end} out of {}", self.rows);
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gather rows by index into a new matrix (used for minibatch sampling).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Copy of a contiguous block of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "col slice {start}..{end} out of {}", self.cols);
        let mut out = Matrix::zeros(self.rows, end - start);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// Stack two matrices vertically (same column count).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Stack two matrices horizontally (same row count).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Apply a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Apply a function to every element in place (parallel over rows for
    /// large matrices, sequential below the threshold to avoid overhead).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.data.len() >= PAR_THRESHOLD {
            self.data.par_chunks_mut(self.cols.max(1)).for_each(|row| {
                for v in row {
                    *v = f(*v);
                }
            });
        } else {
            for v in &mut self.data {
                *v = f(*v);
            }
        }
    }

    /// Elementwise binary op into a new matrix; shapes must match.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut out = self.clone();
        if out.data.len() >= PAR_THRESHOLD {
            out.data.par_iter_mut().zip(other.data.par_iter()).for_each(|(a, &b)| *a = f(*a, b));
        } else {
            for (a, &b) in out.data.iter_mut().zip(&other.data) {
                *a = f(*a, b);
            }
        }
        out
    }

    /// `self += alpha * other` (fused AXPY; shapes must match).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply all elements by a scalar in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Add a row vector (bias) to every row in place.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Sum over rows, producing a length-`cols` vector (used for bias grads).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut acc = vec![0f32; self.cols];
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        acc
    }

    /// Mean of every column.
    pub fn col_means(&self) -> Vec<f32> {
        let mut m = self.sum_rows();
        let n = self.rows.max(1) as f32;
        for v in &mut m {
            *v /= n;
        }
        m
    }

    /// Per-column standard deviation (population), given precomputed means.
    pub fn col_stds(&self, means: &[f32]) -> Vec<f32> {
        assert_eq!(means.len(), self.cols);
        let mut acc = vec![0f32; self.cols];
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for ((a, &v), &m) in acc.iter_mut().zip(row).zip(means) {
                let d = v - m;
                *a += d * d;
            }
        }
        let n = self.rows.max(1) as f32;
        for v in &mut acc {
            *v = (*v / n).sqrt();
        }
        acc
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // Accumulate in f64 to keep the reduction stable for large matrices.
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.sum() / self.data.len() as f32
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() as f32
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0f32, |a, &v| a.max(v.abs()))
    }

    /// Index of the maximum element of each row (ties resolve to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold(
                        (0usize, f32::NEG_INFINITY),
                        |(bi, bv), (i, &v)| {
                            if v > bv {
                                (i, v)
                            } else {
                                (bi, bv)
                            }
                        },
                    )
                    .0
            })
            .collect()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Set all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Approximate element-wise equality within `tol` (absolute).
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// Element count below which elementwise kernels stay sequential; spawning
/// Rayon tasks for tiny matrices costs more than it saves.
pub(crate) const PAR_THRESHOLD: usize = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let f = Matrix::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));

        let e = Matrix::eye(3);
        assert_eq!(e.get(0, 0), 1.0);
        assert_eq!(e.get(1, 0), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Rng64::new(1);
        let m = Matrix::randn(37, 53, 0.0, 1.0, &mut rng);
        let t = m.transpose();
        assert_eq!(t.shape(), (53, 37));
        assert_eq!(t.get(10, 20), m.get(20, 10));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn slicing_and_gather() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 10 + j) as f32);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.row(0), m.row(1));

        let c = m.slice_cols(1, 3);
        assert_eq!(c.shape(), (5, 2));
        assert_eq!(c.get(2, 0), m.get(2, 1));

        let g = m.gather_rows(&[4, 0, 4]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), m.row(4));
        assert_eq!(g.row(2), m.row(4));
    }

    #[test]
    fn stacking() {
        let a = Matrix::full(2, 3, 1.0);
        let b = Matrix::full(1, 3, 2.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(2), &[2.0, 2.0, 2.0]);

        let c = Matrix::full(2, 1, 5.0);
        let h = a.hstack(&c);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.get(0, 3), 5.0);
    }

    #[test]
    fn map_and_zip_map() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        let abs = m.map(f32::abs);
        assert_eq!(abs.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let sum = m.zip_map(&abs, |a, b| a + b);
        assert_eq!(sum.as_slice(), &[2.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| v == 2.0));
        a.scale(-1.0);
        assert!(a.as_slice().iter().all(|&v| v == -2.0));
    }

    #[test]
    fn broadcast_and_reductions() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.sum_rows(), vec![3.0, 6.0]);
        assert_eq!(m.col_means(), vec![1.0, 2.0]);
        assert_eq!(m.col_stds(&[1.0, 2.0]), vec![0.0, 0.0]);
        assert_eq!(m.mean(), 1.5);
    }

    #[test]
    fn argmax_rows_ties_first() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 2.0], &[5.0, 5.0, 1.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(1, 1, f32::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::full(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0005);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-4));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let mut rng = Rng64::new(4);
        // Above PAR_THRESHOLD so the parallel path runs.
        let m = Matrix::randn(256, 128, 0.0, 1.0, &mut rng);
        let par = m.map(|v| v * 2.0 + 1.0);
        let mut seq = m.clone();
        for v in seq.as_mut_slice() {
            *v = *v * 2.0 + 1.0;
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn sum_stable_for_large() {
        let m = Matrix::full(1000, 1000, 0.1);
        assert!((m.sum() - 100_000.0).abs() < 1.0);
    }
}
