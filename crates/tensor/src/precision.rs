//! Software emulation of reduced-precision arithmetic.
//!
//! The paper observes that DNN workloads "rarely require 64bit or even 32bits
//! of precision", motivating hardware with native low-precision units. We do
//! not have such hardware here, so we emulate the *numerics* in software:
//! values are rounded to the target format before each multiply and products
//! are accumulated in f32 (mirroring how tensor-core-style units accumulate
//! in a wider type). This preserves the accuracy-vs-precision *shape* of the
//! experiment even though emulation is slower, not faster, than f32.
//!
//! Throughput for the low-precision formats is modelled separately by
//! `dd-hpcsim` (which knows the relative FLOP rates of each format on the
//! simulated accelerator); `dd-tensor` is responsible only for numerics.

use serde::{Deserialize, Serialize};

/// The numeric formats the simulated accelerator supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE 754 binary64 reference path (products accumulated in f64).
    F64,
    /// IEEE 754 binary32; the native path, no emulation applied.
    F32,
    /// bfloat16: 8-bit exponent, 7-bit mantissa. f32 dynamic range, coarse
    /// mantissa; round-to-nearest-even on the stored bits.
    Bf16,
    /// IEEE binary16: 5-bit exponent, 10-bit mantissa. Finer mantissa than
    /// bf16 but narrow dynamic range (overflows above 65504).
    F16,
    /// Symmetric per-row/per-column 8-bit integer quantization with i32
    /// accumulation, as used for inference and increasingly for training.
    Int8,
}

impl Precision {
    /// All supported formats, in decreasing width order.
    pub const ALL: [Precision; 5] =
        [Precision::F64, Precision::F32, Precision::Bf16, Precision::F16, Precision::Int8];

    /// Bits used to store one operand in this format.
    pub fn bits(self) -> u32 {
        match self {
            Precision::F64 => 64,
            Precision::F32 => 32,
            Precision::Bf16 | Precision::F16 => 16,
            Precision::Int8 => 8,
        }
    }

    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "fp64" | "double" => Ok(Precision::F64),
            "f32" | "fp32" | "single" => Ok(Precision::F32),
            "bf16" | "bfloat16" => Ok(Precision::Bf16),
            "f16" | "fp16" | "half" => Ok(Precision::F16),
            "int8" | "i8" => Ok(Precision::Int8),
            other => Err(format!("unknown precision '{other}'")),
        }
    }
}

/// Round an f32 to bfloat16 (round-to-nearest-even) and back.
#[inline]
pub fn round_bf16(x: f32) -> f32 {
    let bits = x.to_bits();
    // NaN must stay NaN: quiet it rather than risk rounding to infinity.
    if x.is_nan() {
        return f32::from_bits((bits | 0x0040_0000) & 0xFFFF_0000 | 0x0040_0000);
    }
    // Round to nearest even on bit 16.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    f32::from_bits((bits.wrapping_add(rounding_bias)) & 0xFFFF_0000)
}

/// Round an f32 to IEEE binary16 and back (round-to-nearest-even, with
/// overflow to infinity and gradual underflow to subnormals).
#[inline]
pub fn round_f16(x: f32) -> f32 {
    f16_to_f32(f32_to_f16_bits(x))
}

/// Convert f32 to binary16 bit pattern (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Re-bias exponent: f32 bias 127 -> f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal range: keep top 10 mantissa bits, round to nearest even.
        let mant16 = mant >> 13;
        let round_bits = mant & 0x1FFF;
        let mut h = sign | (((unbiased + 15) as u16) << 10) | mant16 as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant16 & 1) == 1) {
            h = h.wrapping_add(1); // may carry into exponent, which is correct
        }
        return h;
    }
    if unbiased >= -25 {
        // Subnormal f16.
        let full = mant | 0x0080_0000; // implicit leading one
        let shift = (-14 - unbiased) as u32 + 13;
        let mant16 = (full >> shift) as u16;
        let round_mask = 1u32 << (shift - 1);
        let rem = full & ((1u32 << shift) - 1);
        let mut h = sign | mant16;
        if rem > round_mask || (rem == round_mask && (mant16 & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return h;
    }
    sign // underflow to signed zero
}

/// Convert binary16 bit pattern to f32.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // inf / nan
    } else if exp == 0 {
        if mant == 0 {
            sign // zero
        } else {
            // Subnormal: normalize.
            let mut e = -1i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03FF;
            sign | (((114 + e) as u32) << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Symmetric int8 quantization of a slice: returns (codes, scale) such that
/// `value ≈ code * scale`. A zero slice quantizes with scale 1.0.
pub fn quantize_i8(values: &[f32]) -> (Vec<i8>, f32) {
    // Eight independent max lanes so the scan vectorizes; max is exact and
    // order-independent (and `f32::max` drops NaN from either side, like the
    // naive `if a > max_abs` scan), so the result is bit-identical to a
    // sequential pass.
    let mut lanes = [0f32; 8];
    let chunks = values.chunks_exact(8);
    let tail = chunks.remainder();
    for c in chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l = l.max(v.abs());
        }
    }
    let mut max_abs = lanes.iter().fold(0f32, |a, &l| a.max(l));
    for &v in tail {
        max_abs = max_abs.max(v.abs());
    }
    if max_abs == 0.0 || !max_abs.is_finite() {
        return (vec![0; values.len()], 1.0);
    }
    let scale = max_abs / 127.0;
    let inv = 1.0 / scale;
    let mut codes = vec![0i8; values.len()];
    quantize_codes_into(values, inv, &mut codes);
    (codes, scale)
}

/// The quantization inner loop: round to nearest (ties to even — the
/// hardware rounding mode, chosen over `f32::round`'s ties-away because the
/// latter has no x86 instruction and costs a libm call per element; either
/// mode keeps |v − dequantize(quantize(v))| ≤ scale/2), clamp to ±127,
/// narrow. On hosts where the SIMD backend is active this dispatches to the
/// AVX2-compiled copy of the *same expression* in `kernel::x86`, which is
/// bitwise-identical by construction — only the codegen differs.
fn quantize_codes_into(values: &[f32], inv: f32, out: &mut [i8]) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::active() == crate::kernel::Backend::Simd {
        crate::kernel::x86::quantize_codes_checked(values, inv, out);
        return;
    }
    for (o, &v) in out.iter_mut().zip(values) {
        // dd-lint: allow(lossy-cast/float-to-int) -- int8 quantization: value is rounded and clamped to [-127, 127] before the cast
        *o = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
    }
}

/// Dequantize one i32 GEMM accumulator back to f32 given the row scale of A
/// and the column scale of B: `acc · (sa · sb)`, with the scale product
/// rounded first. Both the fused kernel writeback and the unfused
/// quantize/GEMM/dequantize composition must go through this exact
/// expression — that single rounding order is what makes "fused output is
/// bitwise-equal to the composition" a testable contract rather than an
/// approximation.
#[inline]
pub fn dequantize_acc(acc: i32, sa: f32, sb: f32) -> f32 {
    acc as f32 * (sa * sb)
}

/// Dequantize int8 codes back to f32.
pub fn dequantize_i8(codes: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(codes.len(), out.len());
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = c as f32 * scale;
    }
}

/// Round every element of a slice in place to the given storage format.
/// `F64`/`F32`/`Int8` are identity here: f64 and f32 need no narrowing and
/// int8 quantization is scale-dependent, handled inside the matmul kernels.
pub fn round_slice(values: &mut [f32], precision: Precision) {
    match precision {
        Precision::F64 | Precision::F32 | Precision::Int8 => {}
        Precision::Bf16 => {
            for v in values.iter_mut() {
                *v = round_bf16(*v);
            }
        }
        Precision::F16 => {
            for v in values.iter_mut() {
                *v = round_f16(*v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_roundtrip_exact_values() {
        // Powers of two and values with <= 7 mantissa bits survive exactly.
        for &v in &[0.0f32, 1.0, -2.0, 0.5, 1.5, 96.0, -0.875] {
            assert_eq!(round_bf16(v), v, "value {v}");
        }
    }

    #[test]
    fn bf16_relative_error_bound() {
        let mut r = crate::rng::Rng64::new(1);
        for _ in 0..10_000 {
            let v = r.normal(0.0, 100.0) as f32;
            let q = round_bf16(v);
            let rel = ((q - v) / v.abs().max(1e-20)).abs();
            assert!(rel <= 1.0 / 128.0 + 1e-7, "v={v} q={q} rel={rel}");
        }
    }

    #[test]
    fn bf16_preserves_nan_and_inf() {
        assert!(round_bf16(f32::NAN).is_nan());
        assert_eq!(round_bf16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_bf16(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn f16_roundtrip_exact_values() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, -65504.0] {
            assert_eq!(round_f16(v), v, "value {v}");
        }
    }

    #[test]
    fn f16_overflow_to_infinity() {
        assert_eq!(round_f16(1e6), f32::INFINITY);
        assert_eq!(round_f16(-1e6), f32::NEG_INFINITY);
        // Largest normal f16.
        assert_eq!(round_f16(65504.0), 65504.0);
    }

    #[test]
    fn f16_subnormals() {
        // Smallest positive subnormal f16 is 2^-24.
        let tiny = 2f32.powi(-24);
        assert_eq!(round_f16(tiny), tiny);
        // Below half of it rounds to zero.
        assert_eq!(round_f16(tiny / 4.0), 0.0);
        // A subnormal value with a representable pattern survives.
        let sub = 3.0 * 2f32.powi(-24);
        assert_eq!(round_f16(sub), sub);
    }

    #[test]
    fn f16_relative_error_bound_normal_range() {
        let mut r = crate::rng::Rng64::new(2);
        for _ in 0..10_000 {
            let v = r.normal(0.0, 10.0) as f32;
            if v.abs() < 6.1e-5 {
                continue; // subnormal range has absolute, not relative bounds
            }
            let q = round_f16(v);
            let rel = ((q - v) / v.abs()).abs();
            assert!(rel <= 1.0 / 1024.0 + 1e-7, "v={v} q={q} rel={rel}");
        }
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10: ties to even -> 1.0.
        let half_ulp = 1.0 + 2f32.powi(-11);
        assert_eq!(round_f16(half_ulp), 1.0);
        // Slightly above the tie rounds up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-16);
        assert_eq!(round_f16(above), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn quantize_i8_roundtrip_error() {
        let mut r = crate::rng::Rng64::new(3);
        let values: Vec<f32> = (0..512).map(|_| r.normal(0.0, 2.0) as f32).collect();
        let (codes, scale) = quantize_i8(&values);
        let mut back = vec![0f32; values.len()];
        dequantize_i8(&codes, scale, &mut back);
        let max_abs = values.iter().fold(0f32, |a, &v| a.max(v.abs()));
        for (&v, &b) in values.iter().zip(&back) {
            assert!((v - b).abs() <= scale * 0.5 + 1e-6, "v={v} b={b} maxabs={max_abs}");
        }
    }

    #[test]
    fn quantize_i8_zero_slice() {
        let (codes, scale) = quantize_i8(&[0.0; 16]);
        assert!(codes.iter().all(|&c| c == 0));
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn precision_parse_and_display_roundtrip() {
        for p in Precision::ALL {
            let s = p.to_string();
            assert_eq!(s.parse::<Precision>().unwrap(), p);
        }
        assert!("f8".parse::<Precision>().is_err());
    }

    #[test]
    fn round_slice_dispatch() {
        let mut v = [1.0f32 + 2f32.powi(-20); 4];
        round_slice(&mut v, Precision::F32);
        assert_eq!(v[0], 1.0 + 2f32.powi(-20));
        round_slice(&mut v, Precision::Bf16);
        assert_eq!(v[0], 1.0);
    }
}
