//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the workspace (weight init, data generation,
//! dropout, searchers, simulators) draws from [`Rng64`], a xoshiro256**
//! generator seeded through SplitMix64. Determinism is a hard requirement:
//! experiments must be exactly reproducible from a single `u64` seed, and
//! parallel workers must be able to derive independent streams without
//! communicating (see [`Rng64::split`]).

use serde::{Deserialize, Serialize};

/// SplitMix64 step; used for seeding and for stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** pseudo-random generator.
///
/// Not cryptographically secure; chosen for speed, quality (passes BigCrush)
/// and a tiny, dependency-free implementation. The generator is `Clone` and
/// serializable so searcher state can be checkpointed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Create a generator from a seed. Two generators with the same seed
    /// produce identical streams on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng64 { s }
    }

    /// Derive an independent stream for a labelled child task.
    ///
    /// `label` should be unique per child (e.g. worker rank, sample index).
    /// The child stream is statistically independent of the parent and of
    /// siblings with different labels, and does not advance `self`.
    pub fn split(&self, label: u64) -> Self {
        // Mix the label into the full parent state via SplitMix64 so that
        // adjacent labels give unrelated streams.
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm2 = self.s[1] ^ self.s[3].rotate_left(29) ^ !label;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm2), splitmix64(&mut sm), splitmix64(&mut sm2)];
        Rng64 { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of entropy.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Fair coin / Bernoulli(p).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via the polar (Marsaglia) method.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal with given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Exponential with rate `lambda`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        -self.uniform().max(f64::MIN_POSITIVE).ln() / lambda
    }

    /// Gamma(shape, scale) via Marsaglia–Tsang, with Johnk boost for shape < 1.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let u = self.uniform().max(f64::MIN_POSITIVE);
            return self.gamma(shape + 1.0, scale) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.gaussian();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = self.uniform();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * scale;
            }
        }
    }

    /// Beta(a, b) via two gammas.
    pub fn beta(&mut self, a: f64, b: f64) -> f64 {
        let x = self.gamma(a, 1.0);
        let y = self.gamma(b, 1.0);
        x / (x + y)
    }

    /// Poisson via inversion (small lambda) or normal approximation.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.uniform();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            // dd-lint: allow(lossy-cast/float-to-int) -- Poisson normal-approximation tail: value is clamped to >= 0 and rounded before the cast
            x.max(0.0).round() as u64
        }
    }

    /// Sample an index according to unnormalized non-negative weights.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (order is random).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher–Yates over an index vector; O(n) setup is fine for
        // the dataset sizes used here. For tiny k relative to n use Floyd.
        if k * 8 < n {
            // Floyd's algorithm: O(k) expected, no O(n) allocation.
            let mut chosen = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.below(j + 1);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            self.shuffle(&mut chosen);
            chosen
        } else {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.below(n - i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        }
    }

    /// Fill a slice with standard normal samples scaled by `std`.
    pub fn fill_gaussian(&mut self, out: &mut [f32], mean: f32, std: f32) {
        for v in out.iter_mut() {
            *v = self.normal(mean as f64, std as f64) as f32;
        }
    }

    /// Fill a slice with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out.iter_mut() {
            *v = self.range(lo as f64, hi as f64) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let parent = Rng64::new(7);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        let mut c1b = parent.split(0);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        // Streams with different labels should not collide.
        let mut collisions = 0;
        for _ in 0..128 {
            if c1.next_u64() == c2.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(9);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape_times_scale() {
        let mut r = Rng64::new(13);
        let n = 100_000;
        let (shape, scale) = (2.5, 1.5);
        let mean = (0..n).map(|_| r.gamma(shape, scale)).sum::<f64>() / n as f64;
        assert!((mean - shape * scale).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gamma_small_shape_positive() {
        let mut r = Rng64::new(17);
        for _ in 0..1000 {
            assert!(r.gamma(0.3, 2.0) > 0.0);
        }
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut r = Rng64::new(19);
        let n = 50_000;
        for &lam in &[0.5, 4.0, 80.0] {
            let mean = (0..n).map(|_| r.poisson(lam) as f64).sum::<f64>() / n as f64;
            assert!((mean - lam).abs() < 0.15 * lam.max(1.0), "lambda {lam} mean {mean}");
        }
    }

    #[test]
    fn beta_in_unit_interval() {
        let mut r = Rng64::new(23);
        for _ in 0..1000 {
            let b = r.beta(0.5, 0.5);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Rng64::new(29);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(31);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_both_paths() {
        let mut r = Rng64::new(37);
        // Floyd path (k small relative to n) and Fisher–Yates path.
        for (n, k) in [(1000, 5), (20, 15)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng64::new(41);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
