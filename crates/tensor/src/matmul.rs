//! Public matrix-multiplication entry points with precision emulation.
//!
//! Three orientations cover everything a layer's forward/backward pass needs
//! without materializing extra transposes in the hot path:
//!
//! * [`matmul`]    — `C = A · B`    (forward pass: activations × weights)
//! * [`matmul_nt`] — `C = A · Bᵀ`   (backward data: δ × W, both row-major)
//! * [`matmul_tn`] — `C = Aᵀ · B`   (backward weights: Xᵀ × δ)
//!
//! Since PR 10 these are thin shims: every orientation × precision
//! combination routes through the cache-blocked packed-microkernel GEMM in
//! [`crate::kernel`] (see its module docs for the blocking scheme, the SIMD
//! backend dispatch, and the bitwise-determinism contract). This module owns
//! what the kernel should not know about: shape validation, the FLOP/byte
//! accounting hooks into dd-obs, and the [`seed`] reference kernel kept
//! around so benches and the perf gate can measure the blocked path against
//! the pre-PR-10 baseline.
//!
//! The `_prec` variants emulate reduced-precision hardware: operands are
//! rounded to the storage format (bf16/f16) while packing, or quantized
//! (int8) with products accumulated exactly in i32 — the same discipline
//! tensor-core-style units use.

use crate::kernel::{self, Orient};
use crate::matrix::Matrix;
use crate::pack::MatView;
use crate::precision::Precision;

/// Output elements below which kernels run sequentially. Public so the
/// testkit can generate shapes just below/above the parallel threshold.
pub const PAR_MIN_OUT: usize = 8 * 1024;

/// Static counter names per precision (avoids formatting in the hot path).
fn flops_counter(p: Precision) -> &'static str {
    match p {
        Precision::F64 => "flops_f64",
        Precision::F32 => "flops_f32",
        Precision::Bf16 => "flops_bf16",
        Precision::F16 => "flops_f16",
        Precision::Int8 => "flops_int8",
    }
}

fn bytes_counter(p: Precision) -> &'static str {
    match p {
        Precision::F64 => "bytes_f64",
        Precision::F32 => "bytes_f32",
        Precision::Bf16 => "bytes_bf16",
        Precision::F16 => "bytes_f16",
        Precision::Int8 => "bytes_int8",
    }
}

/// Record one `m×k · k×n` kernel invocation with the observability registry:
/// `2·m·k·n` FLOPs (multiply + add) and the operand/output traffic at the
/// storage width of `p`. Costs a single atomic load when recording is off.
///
/// Only the public *entry points* call this — the blocked kernel they all
/// delegate to never counts, so each logical multiply is recorded exactly
/// once.
#[inline]
fn note_matmul(m: usize, k: usize, n: usize, p: Precision) {
    if !dd_obs::is_enabled() {
        return;
    }
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    let bytes = ((m * k + k * n + m * n) as u64 * p.bits() as u64) / 8;
    dd_obs::counter_add("flops_total", flops);
    dd_obs::counter_add(flops_counter(p), flops);
    dd_obs::counter_add("bytes_total", bytes);
    dd_obs::counter_add(bytes_counter(p), bytes);
    dd_obs::counter_add("matmuls_total", 1);
}

/// `C = A · B` in f32.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_prec(a, b, Precision::F32)
}

/// `C = A · Bᵀ` in f32.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_nt_prec(a, b, Precision::F32)
}

/// `C = Aᵀ · B` in f32.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_tn_prec(a, b, Precision::F32)
}

/// `C = A · B` with the given precision emulation.
pub fn matmul_prec(a: &Matrix, b: &Matrix, p: Precision) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} x {:?}", a.shape(), b.shape());
    note_matmul(a.rows(), a.cols(), b.cols(), p);
    kernel::gemm_prec(a, b, Orient::Nn, p, kernel::active())
}

/// `C = A · Bᵀ` with the given precision emulation. The transpose is a
/// stride swap inside the kernel's packing pass — nothing is materialized,
/// and the reduction order is identical to [`matmul_prec`] over an
/// explicitly transposed `B` (bitwise, not just approximately).
pub fn matmul_nt_prec(a: &Matrix, b: &Matrix, p: Precision) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch: {:?} x {:?}ᵀ", a.shape(), b.shape());
    note_matmul(a.rows(), a.cols(), b.rows(), p);
    kernel::gemm_prec(a, b, Orient::Nt, p, kernel::active())
}

/// `C = Aᵀ · B` with the given precision emulation. Like [`matmul_nt_prec`],
/// the transpose is absorbed by packing strides; degenerate and tile-boundary
/// extents take the same guarded path as every other orientation rather than
/// a separate transpose-then-multiply code path.
pub fn matmul_tn_prec(a: &Matrix, b: &Matrix, p: Precision) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch: {:?}ᵀ x {:?}", a.shape(), b.shape());
    note_matmul(a.cols(), a.rows(), b.cols(), p);
    kernel::gemm_prec(a, b, Orient::Tn, p, kernel::active())
}

/// Matrix–vector product `y = A · x` in f32. Runs the same blocked kernel
/// over a `k×1` column view of `x`, so `matvec(a, x)` is bitwise-equal to
/// column 0 of `matmul(a, x_as_column)`.
pub fn matvec(a: &Matrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(a.cols(), x.len(), "matvec shape mismatch");
    note_matmul(a.rows(), a.cols(), 1, Precision::F32);
    kernel::gemm_views(MatView::of(a), MatView::col(x), Precision::F32, kernel::active()).into_vec()
}

/// Plain dot product with f32 accumulation, written so LLVM auto-vectorizes.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four independent accumulators break the dependency chain.
    let mut acc = [0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// The pre-PR-10 reference kernel, kept verbatim so the criterion bench and
/// the check.sh perf gate can measure the blocked path against the exact
/// baseline it replaced. Not used by any production path.
pub mod seed {
    use super::PAR_MIN_OUT;
    use crate::matrix::Matrix;
    use rayon::prelude::*;

    /// f32 `C = A · B` in i-k-j order: for each output row, accumulate
    /// scaled rows of B. The inner loop is a contiguous AXPY which LLVM
    /// vectorizes, but B streams from memory once per output row — no panel
    /// reuse, which is precisely the gap the blocked kernel closes.
    pub fn naive_f32(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} x {:?}", a.shape(), b.shape());
        let (m, _k) = a.shape();
        let n = b.cols();
        if m == 0 || a.cols() == 0 || n == 0 {
            return Matrix::zeros(m, n);
        }
        let mut c = Matrix::zeros(m, n);
        let body = |(c_row, a_row): (&mut [f32], &[f32])| {
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue; // sparse inputs (one-hot, ReLU outputs) are common
                }
                let b_row = b.row(kk);
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        };
        if m * n >= PAR_MIN_OUT && m > 1 {
            c.as_mut_slice()
                .par_chunks_mut(n)
                .zip(a.as_slice().par_chunks(a.cols()))
                .for_each(body);
        } else {
            c.as_mut_slice().chunks_mut(n).zip(a.as_slice().chunks(a.cols())).for_each(body);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0f64;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                }
                c.set(i, j, s as f32);
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = Rng64::new(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 31, 13), (64, 64, 64), (129, 65, 200)] {
            let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
            let c = matmul(&a, &b);
            let r = naive(&a, &b);
            assert!(c.approx_eq(&r, 1e-3 * k as f32), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn seed_kernel_matches_blocked() {
        let mut rng = Rng64::new(11);
        for &(m, k, n) in &[(5, 9, 7), (96, 96, 96), (130, 70, 200)] {
            let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
            let c = matmul(&a, &b);
            let s = seed::naive_f32(&a, &b);
            assert!(c.approx_eq(&s, 1e-3 * k as f32), "seed vs blocked at {m}x{k}x{n}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::new(2);
        let a = Matrix::randn(9, 9, 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &Matrix::eye(9)).approx_eq(&a, 1e-6));
        assert!(matmul(&Matrix::eye(9), &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn nt_and_tn_match_explicit_transpose() {
        let mut rng = Rng64::new(3);
        let a = Matrix::randn(20, 33, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(14, 33, 0.0, 1.0, &mut rng);
        let c = matmul_nt(&a, &b);
        let r = matmul(&a, &b.transpose());
        // The packed kernel absorbs orientation as strides, so these are
        // bitwise-equal, a stronger property than the old 1e-3 tolerance.
        assert_eq!(c.as_slice(), r.as_slice());

        let x = Matrix::randn(33, 20, 0.0, 1.0, &mut rng);
        let y = Matrix::randn(33, 7, 0.0, 1.0, &mut rng);
        let c2 = matmul_tn(&x, &y);
        let r2 = matmul(&x.transpose(), &y);
        assert_eq!(c2.as_slice(), r2.as_slice());
    }

    #[test]
    fn f64_path_at_least_as_accurate_as_f32() {
        // Summing many same-sign values of very different magnitude exposes
        // f32 accumulation error; the f64 path must do better.
        let k = 20_000;
        let a = Matrix::from_fn(1, k, |_, j| if j == 0 { 1e8 } else { 1.0 });
        let b = Matrix::full(k, 1, 1.0);
        let exact = 1e8 + (k - 1) as f64;
        let c64 = matmul_prec(&a, &b, Precision::F64).get(0, 0) as f64;
        assert!((c64 - exact).abs() <= (exact as f32 as f64 - exact).abs() + 1.0);
    }

    #[test]
    fn bf16_error_scales_with_mantissa() {
        let mut rng = Rng64::new(4);
        let a = Matrix::randn(16, 64, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(64, 16, 0.0, 1.0, &mut rng);
        let c32 = matmul(&a, &b);
        let cb = matmul_prec(&a, &b, Precision::Bf16);
        let ch = matmul_prec(&a, &b, Precision::F16);
        let err_b = cb.zip_map(&c32, |x, y| (x - y).abs()).mean();
        let err_h = ch.zip_map(&c32, |x, y| (x - y).abs()).mean();
        assert!(err_b > 0.0 && err_b < 0.5, "bf16 err {err_b}");
        // f16 has 3 more mantissa bits than bf16: error must be smaller here
        // (values are O(1), inside f16's range).
        assert!(err_h < err_b, "f16 {err_h} vs bf16 {err_b}");
    }

    #[test]
    fn int8_relative_error_moderate() {
        let mut rng = Rng64::new(5);
        let a = Matrix::randn(24, 96, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(96, 24, 0.0, 1.0, &mut rng);
        let c32 = matmul(&a, &b);
        let c8 = matmul_prec(&a, &b, Precision::Int8);
        let scale = c32.max_abs().max(1e-6);
        let rel = c8.zip_map(&c32, |x, y| (x - y).abs()).max_abs() / scale;
        assert!(rel < 0.08, "int8 relative error {rel}");
        assert!(rel > 0.0);
    }

    #[test]
    fn int8_nt_matches_int8_plain() {
        let mut rng = Rng64::new(6);
        let a = Matrix::randn(10, 40, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(12, 40, 0.0, 1.0, &mut rng);
        let via_nt = matmul_nt_prec(&a, &b, Precision::Int8);
        let via_t = matmul_prec(&a, &b.transpose(), Precision::Int8);
        // Same quantization inputs, same packed kernel: bitwise.
        assert_eq!(via_nt.as_slice(), via_t.as_slice());
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng64::new(7);
        let a = Matrix::randn(13, 29, 0.0, 1.0, &mut rng);
        let x: Vec<f32> = (0..29).map(|i| (i as f32).sin()).collect();
        let y = matvec(&a, &x);
        let xm = Matrix::from_vec(29, 1, x);
        let ym = matmul(&a, &xm);
        for (i, &yi) in y.iter().enumerate() {
            // The column view runs the same kernel: bitwise.
            assert_eq!(yi, ym.get(i, 0));
        }
    }

    #[test]
    fn degenerate_extents_are_zero_not_panic() {
        // m, k and n of zero in every orientation — the shapes that used to
        // rely on guards scattered per-kernel now hit the single guard in
        // the blocked driver.
        for p in Precision::ALL {
            assert_eq!(matmul_prec(&Matrix::zeros(0, 4), &Matrix::zeros(4, 3), p).shape(), (0, 3));
            assert_eq!(matmul_prec(&Matrix::zeros(2, 0), &Matrix::zeros(0, 3), p).shape(), (2, 3));
            assert_eq!(matmul_prec(&Matrix::zeros(2, 4), &Matrix::zeros(4, 0), p).shape(), (2, 0));
            assert_eq!(
                matmul_nt_prec(&Matrix::zeros(2, 0), &Matrix::zeros(3, 0), p).shape(),
                (2, 3)
            );
            assert_eq!(
                matmul_tn_prec(&Matrix::zeros(0, 2), &Matrix::zeros(0, 3), p).shape(),
                (2, 3)
            );
            let z = matmul_prec(&Matrix::zeros(2, 0), &Matrix::zeros(0, 3), p);
            assert!(z.as_slice().iter().all(|&v| v == 0.0));
        }
        assert_eq!(matvec(&Matrix::zeros(3, 0), &[]), vec![0.0; 3]);
        assert_eq!(matvec(&Matrix::zeros(0, 4), &[0.0; 4]), Vec::<f32>::new());
    }

    #[test]
    fn dot_handles_remainders() {
        for len in 0..10 {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i + 1) as f32).collect();
            let expect: f32 = (0..len).map(|i| (i * (i + 1)) as f32).sum();
            assert_eq!(dot(&a, &b), expect, "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Large enough to trigger the parallel branch.
        let mut rng = Rng64::new(8);
        let a = Matrix::randn(150, 80, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(80, 120, 0.0, 1.0, &mut rng);
        let c = matmul(&a, &b);
        let r = naive(&a, &b);
        assert!(c.approx_eq(&r, 1e-2));
    }
}
