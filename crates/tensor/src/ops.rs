//! Elementwise and row-wise numeric operations shared across the workspace.

use crate::matrix::Matrix;

/// Numerically stable softmax applied to each row in place.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for i in 0..m.rows() {
        let row = m.row_mut(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v));
        let mut sum = 0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Stable log-softmax of each row, into a new matrix.
pub fn log_softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v));
        let log_sum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
    out
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Avoid overflow of exp(-x) for very negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// One-hot encode integer class labels into an `n × classes` matrix.
pub fn one_hot(labels: &[usize], classes: usize) -> Matrix {
    let mut out = Matrix::zeros(labels.len(), classes);
    for (i, &c) in labels.iter().enumerate() {
        assert!(c < classes, "label {c} out of range 0..{classes}");
        out.set(i, c, 1.0);
    }
    out
}

/// Per-column standardization statistics, learned on training data and
/// applied to any split so test data never leaks into the scaler.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Standardizer {
    /// Fit means and standard deviations on `data`. Columns with zero
    /// variance get a unit scale so they map to exactly zero.
    pub fn fit(data: &Matrix) -> Self {
        let means = data.col_means();
        let mut stds = data.col_stds(&means);
        for s in &mut stds {
            if *s < 1e-8 {
                *s = 1.0;
            }
        }
        Standardizer { means, stds }
    }

    /// Apply `(x - mean) / std` column-wise in place.
    pub fn transform(&self, data: &mut Matrix) {
        assert_eq!(data.cols(), self.means.len(), "standardizer width mismatch");
        for i in 0..data.rows() {
            let row = data.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Invert the transform in place.
    pub fn inverse_transform(&self, data: &mut Matrix) {
        assert_eq!(data.cols(), self.means.len());
        for i in 0..data.rows() {
            let row = data.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = *v * s + m;
            }
        }
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Fitted per-column standard deviations.
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }
}

/// Clip every element of a slice to `[-limit, limit]`, returning the number
/// of elements that were clipped.
pub fn clip_slice(values: &mut [f32], limit: f32) -> usize {
    let mut clipped = 0;
    for v in values.iter_mut() {
        if *v > limit {
            *v = limit;
            clipped += 1;
        } else if *v < -limit {
            *v = -limit;
            clipped += 1;
        }
    }
    clipped
}

/// Global L2-norm gradient clipping across several tensors. Returns the norm
/// before clipping.
pub fn clip_global_norm(tensors: &mut [&mut Matrix], max_norm: f32) -> f32 {
    let total: f64 = tensors.iter().map(|t| t.norm_sq() as f64).sum();
    let norm = total.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for t in tensors.iter_mut() {
            t.scale(scale);
        }
    }
    norm
}

/// Pearson correlation of two equal-length slices; returns 0 when either
/// side has zero variance.
pub fn pearson(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mut cov = 0f64;
    let mut va = 0f64;
    let mut vb = 0f64;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - ma;
        let dy = y as f64 - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Coefficient of determination R² of predictions vs. targets.
pub fn r2_score(targets: &[f32], preds: &[f32]) -> f64 {
    assert_eq!(targets.len(), preds.len(), "r2 length mismatch");
    let n = targets.len();
    if n == 0 {
        return 0.0;
    }
    let mean = targets.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let ss_res: f64 = targets
        .iter()
        .zip(preds)
        .map(|(&t, &p)| {
            let d = t as f64 - p as f64;
            d * d
        })
        .sum();
    let ss_tot: f64 = targets
        .iter()
        .map(|&t| {
            let d = t as f64 - mean;
            d * d
        })
        .sum();
    if ss_tot <= 0.0 {
        return if ss_res <= 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        softmax_rows(&mut m);
        for i in 0..2 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(i).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn softmax_stable_under_large_inputs() {
        let mut m = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        softmax_rows(&mut m);
        assert!(!m.has_non_finite());
        assert!((m.get(0, 0) + m.get(0, 1) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let m = Matrix::from_rows(&[&[0.3, -1.2, 2.0]]);
        let mut sm = m.clone();
        softmax_rows(&mut sm);
        let lsm = log_softmax_rows(&m);
        for j in 0..3 {
            assert!((lsm.get(0, j).exp() - sm.get(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_extremes_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn one_hot_encoding() {
        let oh = one_hot(&[2, 0, 1], 3);
        assert_eq!(oh.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(oh.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(oh.sum(), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_bad_label_panics() {
        let _ = one_hot(&[3], 3);
    }

    #[test]
    fn standardizer_roundtrip_and_stats() {
        let mut rng = Rng64::new(1);
        let mut data = Matrix::randn(500, 4, 3.0, 2.0, &mut rng);
        let original = data.clone();
        let sc = Standardizer::fit(&data);
        sc.transform(&mut data);
        let means = data.col_means();
        let stds = data.col_stds(&means);
        for j in 0..4 {
            assert!(means[j].abs() < 1e-4, "mean {}", means[j]);
            assert!((stds[j] - 1.0).abs() < 1e-3, "std {}", stds[j]);
        }
        sc.inverse_transform(&mut data);
        assert!(data.approx_eq(&original, 1e-3));
    }

    #[test]
    fn standardizer_constant_column() {
        let data = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0], &[5.0, 3.0]]);
        let sc = Standardizer::fit(&data);
        let mut d = data.clone();
        sc.transform(&mut d);
        // Constant column maps to zero, not NaN.
        assert_eq!(d.get(0, 0), 0.0);
        assert!(!d.has_non_finite());
    }

    #[test]
    fn clip_slice_counts() {
        let mut v = [0.5, 2.0, -3.0, 1.0];
        let n = clip_slice(&mut v, 1.0);
        assert_eq!(n, 2);
        assert_eq!(v, [0.5, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn global_norm_clip() {
        let mut a = Matrix::full(1, 2, 3.0);
        let mut b = Matrix::full(1, 2, 4.0);
        // norm = sqrt(2*9 + 2*16) = sqrt(50)
        let norm = clip_global_norm(&mut [&mut a, &mut b], 1.0);
        assert!((norm - 50f32.sqrt()).abs() < 1e-4);
        let after = (a.norm_sq() + b.norm_sq()).sqrt();
        assert!((after - 1.0).abs() < 1e-4);
    }

    #[test]
    fn global_norm_clip_noop_below_limit() {
        let mut a = Matrix::full(1, 2, 0.1);
        let before = a.clone();
        clip_global_norm(&mut [&mut a], 10.0);
        assert_eq!(a, before);
    }

    #[test]
    fn pearson_known_values() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [2.0f32, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-9);
        let c = [8.0f32, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-9);
        let flat = [5.0f32; 4];
        assert_eq!(pearson(&a, &flat), 0.0);
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        let t = [1.0f32, 2.0, 3.0];
        assert!((r2_score(&t, &t) - 1.0).abs() < 1e-9);
        let mean_pred = [2.0f32; 3];
        assert!(r2_score(&t, &mean_pred).abs() < 1e-9);
        // Worse than mean gives negative R².
        let bad = [3.0f32, 1.0, 5.0];
        assert!(r2_score(&t, &bad) < 0.0);
    }
}
