//! # dd-tensor — tensor substrate for the DeepDriver workspace
//!
//! This crate provides the numeric foundation every other crate builds on:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with Rayon-parallel
//!   elementwise kernels.
//! * [`matmul()`]/[`matmul_nt`]/[`matmul_tn`] — parallel blocked matrix
//!   multiplication in the three orientations backprop needs, each with a
//!   `_prec` variant emulating reduced-precision hardware
//!   ([`Precision::Bf16`], [`Precision::F16`], [`Precision::Int8`]) — the
//!   abstract's observation that DNNs "rarely require 64bit or even 32bits
//!   of precision" made measurable.
//! * [`Rng64`] — deterministic, splittable randomness so every experiment is
//!   exactly reproducible from one `u64` seed.
//! * [`ops`] — softmax, standardization, clipping, correlation metrics.
//!
//! No unsafe code, no BLAS dependency: kernels are written so LLVM
//! auto-vectorizes, and parallelism comes from partitioning output rows into
//! disjoint mutable chunks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod precision;
pub mod rng;

pub use matmul::{
    dot, matmul, matmul_nt, matmul_nt_prec, matmul_prec, matmul_tn, matmul_tn_prec, matvec,
    PAR_MIN_OUT,
};
pub use matrix::Matrix;
pub use ops::{one_hot, pearson, r2_score, sigmoid, softmax_rows, Standardizer};
pub use precision::Precision;
pub use rng::Rng64;
