//! # dd-tensor — tensor substrate for the DeepDriver workspace
//!
//! This crate provides the numeric foundation every other crate builds on:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with Rayon-parallel
//!   elementwise kernels.
//! * [`matmul()`]/[`matmul_nt`]/[`matmul_tn`] — cache-blocked
//!   packed-microkernel matrix multiplication ([`kernel`]) in the three
//!   orientations backprop needs, each with a `_prec` variant emulating
//!   reduced-precision hardware ([`Precision::Bf16`], [`Precision::F16`],
//!   [`Precision::Int8`]) — the abstract's observation that DNNs "rarely
//!   require 64bit or even 32bits of precision" made measurable, and for
//!   int8 a measured throughput win via the fused
//!   quantize → i32-GEMM → dequantize path.
//! * [`Rng64`] — deterministic, splittable randomness so every experiment is
//!   exactly reproducible from one `u64` seed.
//! * [`ops`] — softmax, standardization, clipping, correlation metrics.
//!
//! No BLAS dependency. The only `unsafe` in the workspace is the AVX2+FMA
//! microkernel in [`kernel`], gated behind runtime feature detection with a
//! bitwise-identical scalar fallback (`DD_SIMD=off` forces it); every block
//! carries a `// SAFETY:` comment and dd-lint enforces that rule
//! workspace-wide. Parallelism comes from partitioning output rows into
//! disjoint mutable chunks.

#![deny(unsafe_code)] // allowed *only* in kernel::x86, see there
#![warn(missing_docs)]

pub mod kernel;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod pack;
pub mod precision;
pub mod rng;

pub use matmul::{
    dot, matmul, matmul_nt, matmul_nt_prec, matmul_prec, matmul_tn, matmul_tn_prec, matvec,
    PAR_MIN_OUT,
};
pub use matrix::Matrix;
pub use ops::{one_hot, pearson, r2_score, sigmoid, softmax_rows, Standardizer};
pub use precision::Precision;
pub use rng::Rng64;
