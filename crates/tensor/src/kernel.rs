//! Cache-blocked packed GEMM: the one kernel every matmul orientation and
//! precision variant routes through.
//!
//! ## Blocking scheme
//!
//! The driver walks `C = A·B` (`m×k · k×n`) in the classic three-level
//! BLIS-style decomposition:
//!
//! * the contraction is split into depth-[`KC`] panels; each B panel is
//!   packed **once** into [`NR`]-column strips and reused by every block of
//!   output rows (the B-panel reuse that the naive row-sweep kernel lacks);
//! * output rows are walked in blocks of [`MC`]; each block packs its A
//!   panel into [`MR`]-row tiles that stay L1/L2-resident while the block's
//!   strips stream past;
//! * the innermost unit is a register-blocked `MR×NR` microkernel: the
//!   accumulator tile lives entirely in registers for the whole panel depth
//!   and touches `C` once per panel.
//!
//! ## Determinism contract
//!
//! Every floating-point microkernel computes element `(r, j)` as a single
//! fused-multiply-add chain over `kk` in panel order, seeded at zero, then
//! adds the panel total into `C` — and both backends implement *exactly*
//! that recurrence: the AVX2 path with `vfmadd` lanes, the scalar path with
//! [`f32::mul_add`] (also a single rounding). Lanes are independent
//! elements, so vectorizing over `j` cannot reorder any element's
//! reduction: **the two backends are bitwise identical**, which
//! `tests/determinism.rs` pins. The int8 path accumulates in `i32`, which
//! is exact, so its determinism is unconditional. Rayon parallelism
//! partitions disjoint [`MC`]-row blocks whose panel loop runs sequentially
//! inside each block, so thread count never affects reduction order either.
//!
//! ## Precision variants
//!
//! bf16/f16 round operands elementwise while packing, then run the f32
//! microkernel — the same numerics as the old clone-and-round path without
//! the clones. f64 runs the scalar microkernel with an `f64` accumulator
//! over a single full-depth panel (`kc = k`), preserving the reference
//! path's accumulate-wide-store-once semantics. int8 is the fused
//! quantize → integer-GEMM → dequantize path: logical rows of A and
//! columns of B are quantized symmetrically ([`crate::precision::quantize_i8`]),
//! the widened `i16` codes are packed in `k`-pairs, the microkernel
//! accumulates `i32` exactly (via `_mm256_madd_epi16` on the SIMD backend),
//! and writeback dequantizes with [`crate::precision::dequantize_acc`] in
//! the same pass — one sweep over memory instead of three.

use crate::matrix::Matrix;
use crate::pack::{self, MatView};
use crate::precision::{self, Precision};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Microkernel register tile: rows of C per tile. Six rows × two 8-lane
/// vectors = 12 independent FMA chains, enough to hide 4-5-cycle FMA
/// latency at 2 FMA/cycle, while 12 accumulators + 2 B registers + 1
/// broadcast register still fit the 16 YMM registers.
pub const MR: usize = 6;
/// Microkernel register tile: columns of C per tile (two 8-lane vectors).
pub const NR: usize = 16;
/// Contraction-panel depth: one packed B strip is `KC·NR` floats (16 KiB),
/// sized to stay L1-resident across a block's row tiles.
pub const KC: usize = 256;
/// Output-row block height: one packed A panel is at most `MC·KC` floats
/// (64 KiB), sized for L2. Also the unit of Rayon parallelism.
pub const MC: usize = 64;

/// Deepest int8 contraction with guaranteed-exact `i32` accumulation:
/// every product is bounded by `127²`, so `k ≤ i32::MAX / 127²` can never
/// wrap. (≈ 133k — far above any shape in this workspace.)
pub const I8_MAX_K: usize = (i32::MAX / (127 * 127)) as usize;

/// Which microkernel implementation drives the blocked GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar microkernel (`f32::mul_add` chains / `i32` loops).
    Scalar,
    /// Runtime-detected AVX2+FMA microkernel. Bitwise identical to
    /// [`Backend::Scalar`] by construction (see module docs).
    Simd,
}

impl Backend {
    /// Short name for benches and reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        }
    }
}

/// Is the SIMD microkernel usable on this host?
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend the public matmul entry points dispatch to: AVX2+FMA when
/// the CPU has it, unless `DD_SIMD=off|scalar|0` forces the scalar path
/// (the escape hatch the determinism suite and A/B benches use). Decided
/// once per process.
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if matches!(std::env::var("DD_SIMD").as_deref(), Ok("off" | "scalar" | "0")) {
            return Backend::Scalar;
        }
        if simd_available() {
            Backend::Simd
        } else {
            Backend::Scalar
        }
    })
}

/// Kernel orientation: which operand is logically transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orient {
    /// `A[m×k] · B[k×n]`.
    Nn,
    /// `A[m×k] · B[n×k]ᵀ`.
    Nt,
    /// `A[k×m]ᵀ · B[k×n]`.
    Tn,
}

/// Run the blocked GEMM with an explicit orientation, precision and
/// backend. This is the test-facing face of the kernel — the public
/// `matmul*` entry points call it with [`active`]'s backend after doing
/// their shape checks and FLOP accounting; the determinism suite calls it
/// with both backends to pin their bitwise equality.
///
/// Degenerate extents (`m`, `k` or `n` of zero) return an all-zero result
/// of the correct shape. A [`Backend::Simd`] request on a host without
/// AVX2+FMA silently runs the scalar backend (they are bitwise identical,
/// and the downgrade keeps the unsafe microkernels unreachable without
/// their target features).
pub fn gemm_prec(a: &Matrix, b: &Matrix, orient: Orient, p: Precision, backend: Backend) -> Matrix {
    let (av, bv) = match orient {
        Orient::Nn => (MatView::of(a), MatView::of(b)),
        Orient::Nt => (MatView::of(a), MatView::of_t(b)),
        Orient::Tn => (MatView::of_t(a), MatView::of(b)),
    };
    gemm_views(av, bv, p, backend)
}

/// Blocked GEMM over prebuilt views (also the matvec path, which wraps its
/// vector operand in a column view instead of materializing a matrix).
pub(crate) fn gemm_views(
    av: MatView<'_>,
    bv: MatView<'_>,
    p: Precision,
    backend: Backend,
) -> Matrix {
    debug_assert_eq!(av.cols, bv.rows, "gemm contraction mismatch");
    let (m, k, n) = (av.rows, av.cols, bv.cols);
    if m == 0 || n == 0 || k == 0 {
        return Matrix::zeros(m, n);
    }
    let backend =
        if backend == Backend::Simd && !simd_available() { Backend::Scalar } else { backend };
    match p {
        Precision::Int8 => gemm_i8(av, bv, backend),
        _ => gemm_float(av, bv, p, backend),
    }
}

/// The float paths: f32 directly, bf16/f16 via rounding-at-pack, f64 via
/// the wide-accumulator scalar microkernel over one full-depth panel.
fn gemm_float(av: MatView<'_>, bv: MatView<'_>, p: Precision, backend: Backend) -> Matrix {
    let (m, k, n) = (av.rows, av.cols, bv.cols);
    let map: Option<fn(f32) -> f32> = match p {
        Precision::Bf16 => Some(precision::round_bf16),
        Precision::F16 => Some(precision::round_f16),
        _ => None,
    };
    // f64 accumulates the whole contraction in the wide type and narrows
    // once at writeback, so it must see a single panel.
    let kc_step = if p == Precision::F64 { k } else { KC };
    let panels: Vec<std::ops::Range<usize>> =
        (0..k).step_by(kc_step).map(|s| s..(s + kc_step).min(k)).collect();
    let packed_b: Vec<Vec<f32>> =
        panels.iter().map(|kr| pack::pack_b_f32(&bv, kr.clone(), map)).collect();
    let n_strips = n.div_ceil(NR);

    let mut c = Matrix::zeros(m, n);
    let body = |(blk, chunk): (usize, &mut [f32])| {
        let row0 = blk * MC;
        let rows = chunk.len() / n;
        let mut abuf: Vec<f32> = Vec::new();
        for (pi, kr) in panels.iter().enumerate() {
            pack::pack_a_f32(&av, row0..row0 + rows, kr.clone(), map, &mut abuf);
            let kc = kr.len();
            let bp = &packed_b[pi];
            let tiles = rows.div_ceil(MR);
            for s in 0..n_strips {
                let bstrip = &bp[s * kc * NR..(s + 1) * kc * NR];
                let col0 = s * NR;
                let cols_v = NR.min(n - col0);
                for t in 0..tiles {
                    let atile = &abuf[t * MR * kc..(t + 1) * MR * kc];
                    let r0 = t * MR;
                    let rows_v = MR.min(rows - r0);
                    if p == Precision::F64 {
                        let mut acc = [0f64; MR * NR];
                        mk_f64(atile, bstrip, kc, &mut acc);
                        for r in 0..rows_v {
                            let base = (r0 + r) * n + col0;
                            let dst = &mut chunk[base..base + cols_v];
                            let src = &acc[r * NR..r * NR + cols_v];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d = (*d as f64 + s) as f32;
                            }
                        }
                    } else {
                        let mut acc = [0f32; MR * NR];
                        match backend {
                            #[cfg(target_arch = "x86_64")]
                            Backend::Simd => x86::mk_f32_checked(atile, bstrip, kc, &mut acc),
                            _ => mk_f32_scalar(atile, bstrip, kc, &mut acc),
                        }
                        // Slice-zip writeback so LLVM vectorizes the `C += acc`
                        // clip instead of bounds-checking every element.
                        for r in 0..rows_v {
                            let base = (r0 + r) * n + col0;
                            let dst = &mut chunk[base..base + cols_v];
                            let src = &acc[r * NR..r * NR + cols_v];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                    }
                }
            }
        }
    };

    if m * n >= crate::matmul::PAR_MIN_OUT && m > 1 {
        c.as_mut_slice().par_chunks_mut(MC * n).enumerate().for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(MC * n).enumerate().for_each(body);
    }
    c
}

/// The fused int8 path: quantize → exact i32 GEMM → dequantize, one pass.
fn gemm_i8(av: MatView<'_>, bv: MatView<'_>, backend: Backend) -> Matrix {
    let (m, k, n) = (av.rows, av.cols, bv.cols);
    assert!(
        k <= I8_MAX_K,
        "int8 GEMM: contraction depth {k} could overflow exact i32 accumulation"
    );
    // Per-logical-row scales for A, per-logical-column scales for B̂ —
    // over the *full* contraction, exactly as the unfused composition
    // quantizes, so fused output is bitwise-reproducible from the parts.
    let (qa, sa) = pack::quantize_view_rows(&av);
    let bt = MatView { data: bv.data, rows: bv.cols, cols: bv.rows, rs: bv.cs, cs: bv.rs };
    let (qb, sb) = pack::quantize_view_rows(&bt);
    let packed_b = pack::pack_b_i8(&qb, k, n);
    let k2 = k.div_ceil(2);
    let n_strips = n.div_ceil(NR);

    let mut c = Matrix::zeros(m, n);
    let body = |(blk, chunk): (usize, &mut [f32])| {
        let row0 = blk * MC;
        let rows = chunk.len() / n;
        let mut abuf: Vec<i16> = Vec::new();
        pack::pack_a_i8(&qa, k, row0..row0 + rows, &mut abuf);
        let tiles = rows.div_ceil(MR);
        for s in 0..n_strips {
            let bstrip = &packed_b[s * NR * 2 * k2..(s + 1) * NR * 2 * k2];
            let col0 = s * NR;
            let cols_v = NR.min(n - col0);
            for t in 0..tiles {
                let atile = &abuf[t * MR * 2 * k2..(t + 1) * MR * 2 * k2];
                let r0 = t * MR;
                let rows_v = MR.min(rows - r0);
                let mut acc = [0i32; MR * NR];
                match backend {
                    #[cfg(target_arch = "x86_64")]
                    Backend::Simd => x86::mk_i8_checked(atile, bstrip, k2, &mut acc),
                    _ => mk_i8_scalar(atile, bstrip, k2, &mut acc),
                }
                for r in 0..rows_v {
                    let base = (r0 + r) * n + col0;
                    let dst = &mut chunk[base..base + cols_v];
                    let src = &acc[r * NR..r * NR + cols_v];
                    let sbr = &sb[col0..col0 + cols_v];
                    let sar = sa[row0 + r0 + r];
                    for ((d, &s), &sbj) in dst.iter_mut().zip(src).zip(sbr) {
                        *d = precision::dequantize_acc(s, sar, sbj);
                    }
                }
            }
        }
    };

    if m * n >= crate::matmul::PAR_MIN_OUT && m > 1 {
        c.as_mut_slice().par_chunks_mut(MC * n).enumerate().for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(MC * n).enumerate().for_each(body);
    }
    c
}

/// Calibration helper: run the f32 microkernel `iters` times over one
/// L1-resident packed tile/strip pair and return the FLOPs executed. Timing
/// this loop measures the *compute roof* of the blocked GEMM on this host —
/// the rate the microkernel sustains when packing and memory traffic are
/// out of the picture — which is the denominator of the
/// achieved-fraction-of-roofline numbers E12 reports.
pub fn calibrate_mk_f32(backend: Backend, iters: usize) -> u64 {
    let backend =
        if backend == Backend::Simd && !simd_available() { Backend::Scalar } else { backend };
    let a = vec![1.0f32; MR * KC];
    let b = vec![0.5f32; NR * KC];
    let mut acc = [0f32; MR * NR];
    for _ in 0..iters {
        acc.fill(0.0);
        match backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Simd => x86::mk_f32_checked(&a, &b, KC, &mut acc),
            _ => mk_f32_scalar(&a, &b, KC, &mut acc),
        }
        std::hint::black_box(&mut acc);
    }
    2 * (MR * NR * KC * iters) as u64
}

/// Int8 counterpart of [`calibrate_mk_f32`]: the integer compute roof, in
/// multiply-accumulate op pairs (so rates are comparable to f32 FLOPs).
pub fn calibrate_mk_i8(backend: Backend, iters: usize) -> u64 {
    let backend =
        if backend == Backend::Simd && !simd_available() { Backend::Scalar } else { backend };
    let k2 = KC / 2;
    let a = vec![3i16; MR * 2 * k2];
    let b = vec![5i16; NR * 2 * k2];
    let mut acc = [0i32; MR * NR];
    for _ in 0..iters {
        acc.fill(0);
        match backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Simd => x86::mk_i8_checked(&a, &b, k2, &mut acc),
            _ => mk_i8_scalar(&a, &b, k2, &mut acc),
        }
        std::hint::black_box(&mut acc);
    }
    2 * (MR * NR * KC * iters) as u64
}

/// Portable f32 microkernel: one `mul_add` chain per element, the exact
/// recurrence the AVX2 lanes implement.
fn mk_f32_scalar(a_tile: &[f32], b_strip: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    for kk in 0..kc {
        let a = &a_tile[kk * MR..kk * MR + MR];
        let b = &b_strip[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let ar = a[r];
            for j in 0..NR {
                acc[r * NR + j] = ar.mul_add(b[j], acc[r * NR + j]);
            }
        }
    }
}

/// f64-accumulator microkernel for the reference precision path.
fn mk_f64(a_tile: &[f32], b_strip: &[f32], kc: usize, acc: &mut [f64; MR * NR]) {
    for kk in 0..kc {
        let a = &a_tile[kk * MR..kk * MR + MR];
        let b = &b_strip[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let ar = a[r] as f64;
            for j in 0..NR {
                acc[r * NR + j] += ar * b[j] as f64;
            }
        }
    }
}

/// Portable int8 microkernel over the packed `k`-pair layout. `i32`
/// arithmetic is exact, so this is unconditionally bitwise-equal to the
/// `madd`-based SIMD kernel regardless of summation order.
fn mk_i8_scalar(a_tile: &[i16], b_strip: &[i16], k2: usize, acc: &mut [i32; MR * NR]) {
    for kk2 in 0..k2 {
        let a = &a_tile[kk2 * MR * 2..kk2 * MR * 2 + MR * 2];
        let b = &b_strip[kk2 * NR * 2..kk2 * NR * 2 + NR * 2];
        for r in 0..MR {
            let a0 = a[r * 2] as i32;
            let a1 = a[r * 2 + 1] as i32;
            for j in 0..NR {
                let base = (j / 8) * 16 + (j % 8) * 2;
                acc[r * NR + j] += a0 * b[base] as i32 + a1 * b[base + 1] as i32;
            }
        }
    }
}

/// AVX2 microkernels. The only unsafe code in the workspace: kept to raw
/// loads/stores over buffers whose layout the packers in [`crate::pack`]
/// guarantee, behind the runtime-detection guard in [`gemm_views`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod x86 {
    use super::{simd_available, MR, NR};
    use core::arch::x86_64::*;

    /// Safe f32 dispatch: re-checks feature detection, then enters the
    /// `target_feature` kernel.
    pub(super) fn mk_f32_checked(
        a_tile: &[f32],
        b_strip: &[f32],
        kc: usize,
        acc: &mut [f32; MR * NR],
    ) {
        assert!(simd_available(), "SIMD backend dispatched without AVX2+FMA");
        assert!(a_tile.len() >= MR * kc && b_strip.len() >= NR * kc);
        // SAFETY: AVX2+FMA presence was just asserted (and `gemm_views`
        // already downgrades Simd to Scalar on hosts without it), and the
        // slice-length contract of `mk_f32` was asserted above.
        unsafe { mk_f32(a_tile, b_strip, kc, acc) }
    }

    /// Safe int8 dispatch: re-checks feature detection, then enters the
    /// `target_feature` kernel.
    pub(super) fn mk_i8_checked(
        a_tile: &[i16],
        b_strip: &[i16],
        k2: usize,
        acc: &mut [i32; MR * NR],
    ) {
        assert!(simd_available(), "SIMD backend dispatched without AVX2+FMA");
        assert!(a_tile.len() >= MR * 2 * k2 && b_strip.len() >= NR * 2 * k2);
        // SAFETY: AVX2 presence was just asserted and the slice-length
        // contract of `mk_i8` was asserted above.
        unsafe { mk_i8(a_tile, b_strip, k2, acc) }
    }

    /// Safe quantization dispatch for [`crate::precision::quantize_i8`]:
    /// re-checks feature detection, then enters the `target_feature` loop.
    pub(crate) fn quantize_codes_checked(values: &[f32], inv: f32, out: &mut [i8]) {
        assert!(simd_available(), "SIMD quantization dispatched without AVX2+FMA");
        assert_eq!(values.len(), out.len());
        // SAFETY: AVX2 presence was just asserted; the body is ordinary
        // safe iteration — `unsafe` only discharges the `target_feature`
        // contract.
        unsafe { quantize_codes(values, inv, out) }
    }

    /// Quantization inner loop, compiled with AVX2 enabled so the
    /// round/clamp/narrow chain auto-vectorizes (`vroundps` + saturating
    /// `fptosi`). The body is the *same source expression* as the scalar
    /// fallback in `precision::quantize_i8`, so results are
    /// bitwise-identical by construction — only the codegen differs
    /// (baseline x86-64 lowers `round_ties_even` to a per-element
    /// `roundevenf` libcall, which measured as the largest single overhead
    /// of the fused int8 GEMM).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    unsafe fn quantize_codes(values: &[f32], inv: f32, out: &mut [i8]) {
        for (o, &v) in out.iter_mut().zip(values) {
            // dd-lint: allow(lossy-cast/float-to-int) -- int8 quantization: value is rounded and clamped to [-127, 127] before the cast
            *o = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
    }

    /// f32 microkernel: 4×16 accumulator tile in eight YMM registers, one
    /// `vfmadd` chain per element (bitwise-equal to the scalar `mul_add`
    /// chain).
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available and that
    /// `a_tile.len() ≥ MR·kc`, `b_strip.len() ≥ NR·kc`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn mk_f32(
        a_tile: &[f32],
        b_strip: &[f32],
        kc: usize,
        acc: &mut [f32; MR * NR],
    ) {
        debug_assert!(a_tile.len() >= MR * kc && b_strip.len() >= NR * kc);
        let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let mut pa = a_tile.as_ptr();
        let mut pb = b_strip.as_ptr();
        for _ in 0..kc {
            // SAFETY: pb walks NR floats per step for kc steps, inside
            // b_strip by the length contract above.
            let (b0, b1) = unsafe { (_mm256_loadu_ps(pb), _mm256_loadu_ps(pb.add(8))) };
            for (r, cr) in c.iter_mut().enumerate() {
                // SAFETY: pa walks MR floats per step for kc steps, inside
                // a_tile by the length contract above.
                let ar = unsafe { _mm256_set1_ps(*pa.add(r)) };
                cr[0] = _mm256_fmadd_ps(ar, b0, cr[0]);
                cr[1] = _mm256_fmadd_ps(ar, b1, cr[1]);
            }
            // SAFETY: the final increments land exactly one-past-the-end.
            unsafe {
                pa = pa.add(MR);
                pb = pb.add(NR);
            }
        }
        for (r, cr) in c.iter().enumerate() {
            // SAFETY: acc is exactly MR*NR floats; row r spans NR of them.
            unsafe {
                _mm256_storeu_ps(acc.as_mut_ptr().add(r * NR), cr[0]);
                _mm256_storeu_ps(acc.as_mut_ptr().add(r * NR + 8), cr[1]);
            }
        }
    }

    /// int8 microkernel: `_mm256_madd_epi16` over `k`-pair-interleaved
    /// `i16` codes, accumulated in eight `i32x8` registers. Exact integer
    /// arithmetic — bitwise-equal to the scalar kernel by construction.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and that
    /// `a_tile.len() ≥ MR·2·k2`, `b_strip.len() ≥ NR·2·k2`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mk_i8(
        a_tile: &[i16],
        b_strip: &[i16],
        k2: usize,
        acc: &mut [i32; MR * NR],
    ) {
        debug_assert!(a_tile.len() >= MR * 2 * k2 && b_strip.len() >= NR * 2 * k2);
        let mut c: [[__m256i; 2]; MR] = [[_mm256_setzero_si256(); 2]; MR];
        let mut pa = a_tile.as_ptr();
        let mut pb = b_strip.as_ptr();
        for _ in 0..k2 {
            // SAFETY: pb walks NR·2 i16s per step for k2 steps, inside
            // b_strip by the length contract above; loadu tolerates the
            // 2-byte alignment of an i16 buffer.
            let (b0, b1) = unsafe {
                (
                    _mm256_loadu_si256(pb as *const __m256i),
                    _mm256_loadu_si256(pb.add(16) as *const __m256i),
                )
            };
            for (r, cr) in c.iter_mut().enumerate() {
                // SAFETY: pa walks MR·2 i16s per step for k2 steps, inside
                // a_tile; read_unaligned handles the 2-byte alignment of
                // the (a0, a1) pair being read as one i32.
                let pair = unsafe { std::ptr::read_unaligned(pa.add(r * 2) as *const i32) };
                let ar = _mm256_set1_epi32(pair);
                cr[0] = _mm256_add_epi32(cr[0], _mm256_madd_epi16(ar, b0));
                cr[1] = _mm256_add_epi32(cr[1], _mm256_madd_epi16(ar, b1));
            }
            // SAFETY: the final increments land exactly one-past-the-end.
            unsafe {
                pa = pa.add(MR * 2);
                pb = pb.add(NR * 2);
            }
        }
        for (r, cr) in c.iter().enumerate() {
            // The madd lane order is (j/8, j%8): lane jj of half v holds
            // column v·8 + jj, matching the pack interleave directly.
            // SAFETY: acc is exactly MR*NR i32s; row r spans NR of them.
            unsafe {
                _mm256_storeu_si256(acc.as_mut_ptr().add(r * NR) as *mut __m256i, cr[0]);
                _mm256_storeu_si256(acc.as_mut_ptr().add(r * NR + 8) as *mut __m256i, cr[1]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    #[ignore = "profiling aid, run manually with --ignored --nocapture"]
    fn profile_int8_phases() {
        let mut rng = Rng64::new(7);
        let n = 512;
        let a = Matrix::randn(n, n, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(n, n, 0.0, 1.0, &mut rng);
        let av = MatView::of(&a);
        let bv = MatView::of(&b);
        let reps = 5;
        let mut t_qa = 0.0;
        let mut t_qb = 0.0;
        let mut t_pb = 0.0;
        let mut t_full = 0.0;
        for _ in 0..reps {
            let g = dd_obs::span("qa");
            let (qa, sa) = pack::quantize_view_rows(&av);
            std::hint::black_box((&qa, &sa));
            t_qa += g.finish();
            let bt = MatView { data: bv.data, rows: bv.cols, cols: bv.rows, rs: bv.cs, cs: bv.rs };
            let g = dd_obs::span("qb");
            let (qb, sb) = pack::quantize_view_rows(&bt);
            std::hint::black_box((&qb, &sb));
            t_qb += g.finish();
            let g = dd_obs::span("pb");
            let pb = pack::pack_b_i8(&qb, n, n);
            std::hint::black_box(&pb);
            t_pb += g.finish();
            let g = dd_obs::span("full");
            let c = gemm_i8(av, bv, Backend::Simd);
            std::hint::black_box(&c);
            t_full += g.finish();
        }
        let r = reps as f64;
        println!(
            "quantize A {:.3}ms  quantize B^T {:.3}ms  pack_b {:.3}ms  full {:.3}ms  (kernel+pack_a+writeback ~{:.3}ms)",
            1e3 * t_qa / r,
            1e3 * t_qb / r,
            1e3 * t_pb / r,
            1e3 * t_full / r,
            1e3 * (t_full - t_qa - t_qb - t_pb) / r
        );
    }

    fn naive_f64(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0f64;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                }
                c.set(i, j, s as f32);
            }
        }
        c
    }

    #[test]
    fn blocked_matches_naive_across_block_boundaries() {
        let mut rng = Rng64::new(0xB10C);
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR, KC, NR),
            (MC + 1, KC + 1, NR + 1),
            (MC - 1, KC - 1, NR - 1),
            (130, 300, 70),
        ] {
            let a = Matrix::randn(m, k, 0.0, 0.5, &mut rng);
            let b = Matrix::randn(k, n, 0.0, 0.5, &mut rng);
            let c = gemm_prec(&a, &b, Orient::Nn, Precision::F32, Backend::Scalar);
            let r = naive_f64(&a, &b);
            let tol = 1e-4 * (k as f32).sqrt().max(1.0);
            assert!(c.approx_eq(&r, tol), "blocked f32 diverged at {m}x{k}x{n}");
        }
    }

    #[test]
    fn backends_are_bitwise_identical() {
        if !simd_available() {
            return; // pinned properly (with a loud skip) in tests/determinism.rs
        }
        let mut rng = Rng64::new(0x51D);
        for &(m, k, n) in &[(3, 5, 2), (MC + 3, KC + 7, 2 * NR + 5), (65, 17, 129)] {
            let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
            for p in [Precision::F32, Precision::Bf16, Precision::F16, Precision::Int8] {
                let s = gemm_prec(&a, &b, Orient::Nn, p, Backend::Scalar);
                let v = gemm_prec(&a, &b, Orient::Nn, p, Backend::Simd);
                assert_eq!(s.as_slice(), v.as_slice(), "{p:?} backends diverged at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn orientations_share_one_reduction_order() {
        // Packing absorbs the orientation, so tn/nt are bitwise equal to
        // nn over explicitly transposed operands — a stronger guarantee
        // than the old kernels made (nt used to run a different order).
        let mut rng = Rng64::new(0x7E57);
        let a = Matrix::randn(33, 47, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(47, 21, 0.0, 1.0, &mut rng);
        for p in [Precision::F32, Precision::F64, Precision::Int8] {
            let nn = gemm_prec(&a, &b, Orient::Nn, p, active());
            let nt = gemm_prec(&a, &b.transpose(), Orient::Nt, p, active());
            let tn = gemm_prec(&a.transpose(), &b, Orient::Tn, p, active());
            assert_eq!(nn.as_slice(), nt.as_slice(), "{p:?} nt");
            assert_eq!(nn.as_slice(), tn.as_slice(), "{p:?} tn");
        }
    }

    #[test]
    fn int8_scalar_and_simd_agree_with_odd_k() {
        // Odd k exercises the zero-padded final pair in both kernels.
        let mut rng = Rng64::new(0x0DD);
        let a = Matrix::randn(9, 31, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(31, 18, 0.0, 1.0, &mut rng);
        let s = gemm_prec(&a, &b, Orient::Nn, Precision::Int8, Backend::Scalar);
        if simd_available() {
            let v = gemm_prec(&a, &b, Orient::Nn, Precision::Int8, Backend::Simd);
            assert_eq!(s.as_slice(), v.as_slice());
        }
        // And both must be close to the float product.
        let r = naive_f64(&a, &b);
        let scale = r.max_abs().max(1e-6);
        assert!(s.zip_map(&r, |x, y| (x - y).abs()).max_abs() / scale < 0.1);
    }
}
