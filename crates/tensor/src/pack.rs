//! Panel packing for the blocked GEMM in [`crate::kernel`].
//!
//! The microkernels stream operands out of small contiguous buffers with a
//! fixed interleave, so the cache behaviour of the inner loop is independent
//! of the caller's memory layout. Packing is where all layout diversity is
//! absorbed:
//!
//! * **orientation** — [`MatView`] describes a logical `rows×cols` operand
//!   over a row-major buffer with arbitrary row/column strides, so `A·B`,
//!   `A·Bᵀ` and `Aᵀ·B` all pack through the same code with zero transposes
//!   materialized;
//! * **precision** — bf16/f16 operand rounding happens element-by-element
//!   while packing (one pass, no cloned matrices), and the int8 path
//!   quantizes whole logical rows/columns and packs the widened `i16` codes
//!   in the `k`-pair interleave `_mm256_madd_epi16` consumes;
//! * **edges** — tiles are zero-padded to full `MR`-row / `NR`-column
//!   width, which is numerically exact (a zero operand contributes nothing)
//!   and lets the microkernels run without bounds logic; writeback clips to
//!   the valid region.
//!
//! Layouts (all row-padded, `kc` = panel depth):
//!
//! * A panel: tiles of `MR` rows, element `(tile, kk, r)` at
//!   `tile·(MR·kc) + kk·MR + r`.
//! * B panel: strips of `NR` columns, element `(strip, kk, j)` at
//!   `strip·(kc·NR) + kk·NR + j`.
//! * int8 A panel (`i16` codes, `k` padded to pairs): `(tile, kk2, r, p)` at
//!   `tile·(MR·2·kc2) + kk2·(MR·2) + r·2 + p`.
//! * int8 B panel: `(strip, kk2, v, jj, p)` at
//!   `strip·(NR·2·kc2) + kk2·(NR·2) + v·16 + jj·2 + p`, where `v = j/8`
//!   selects the 256-bit half and `jj = j%8` the column pair within it.

use crate::kernel::{MR, NR};
use crate::matrix::Matrix;
use crate::precision;
use std::ops::Range;

/// A logical `rows×cols` view over a row-major `f32` buffer. Element
/// `(i, j)` lives at `data[i·rs + j·cs]`; a transposed view just swaps the
/// strides, so packing never materializes a transpose.
#[derive(Clone, Copy)]
pub(crate) struct MatView<'a> {
    /// Backing buffer.
    pub data: &'a [f32],
    /// Logical row count.
    pub rows: usize,
    /// Logical column count.
    pub cols: usize,
    /// Stride between consecutive rows.
    pub rs: usize,
    /// Stride between consecutive columns.
    pub cs: usize,
}

impl<'a> MatView<'a> {
    /// View of a matrix as stored.
    pub fn of(m: &'a Matrix) -> MatView<'a> {
        MatView { data: m.as_slice(), rows: m.rows(), cols: m.cols(), rs: m.cols(), cs: 1 }
    }

    /// Transposed view of a matrix (no copy).
    pub fn of_t(m: &'a Matrix) -> MatView<'a> {
        MatView { data: m.as_slice(), rows: m.cols(), cols: m.rows(), rs: 1, cs: m.cols() }
    }

    /// A `len×1` column view over a plain slice (for matvec).
    pub fn col(x: &'a [f32]) -> MatView<'a> {
        MatView { data: x, rows: x.len(), cols: 1, rs: 1, cs: 0 }
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Pack the `rows` × `kr` block of `view` into MR-row tiles, applying `map`
/// (`None` = identity, or `Some` bf16/f16 rounding) to every element. Rows
/// past the edge pad with zeros. `buf` is cleared and refilled (capacity is
/// reused across panels).
///
/// Contiguous views (`cs == 1`, the untransposed orientations) take a fast
/// path that walks each source row once as a slice — packing is O(m·k)
/// against the kernel's O(m·k·n), but with per-element `at()` indexing it
/// still measured as several percent of a 512³ GEMM. Rounding maps apply to
/// the whole packed buffer afterwards; pad zeros round to zero, so this is
/// exact.
pub(crate) fn pack_a_f32(
    view: &MatView<'_>,
    rows: Range<usize>,
    kr: Range<usize>,
    map: Option<fn(f32) -> f32>,
    buf: &mut Vec<f32>,
) {
    let kc = kr.len();
    let tiles = rows.len().div_ceil(MR);
    buf.clear();
    buf.resize(tiles * MR * kc, 0.0);
    for t in 0..tiles {
        let tile = &mut buf[t * MR * kc..(t + 1) * MR * kc];
        let r0 = rows.start + t * MR;
        let rv = MR.min(rows.end - r0);
        if view.cs == 1 {
            for r in 0..rv {
                let base = (r0 + r) * view.rs + kr.start;
                let src = &view.data[base..base + kc];
                for (kk, &v) in src.iter().enumerate() {
                    tile[kk * MR + r] = v;
                }
            }
        } else {
            for (kk, k) in kr.clone().enumerate() {
                for r in 0..rv {
                    tile[kk * MR + r] = view.at(r0 + r, k);
                }
            }
        }
    }
    if let Some(f) = map {
        for v in buf.iter_mut() {
            *v = f(*v);
        }
    }
}

/// Pack the `kr` × all-columns panel of `view` into NR-column strips, with
/// the same elementwise `map` convention as [`pack_a_f32`]. Columns past
/// the edge pad with zeros. Contiguous views copy 16-element row segments
/// straight into the strips.
pub(crate) fn pack_b_f32(
    view: &MatView<'_>,
    kr: Range<usize>,
    map: Option<fn(f32) -> f32>,
) -> Vec<f32> {
    let kc = kr.len();
    let n = view.cols;
    let strips = n.div_ceil(NR);
    let mut buf = vec![0.0; strips * kc * NR];
    if view.cs == 1 {
        for (kk, k) in kr.clone().enumerate() {
            let src = &view.data[k * view.rs..k * view.rs + n];
            for s in 0..strips {
                let j0 = s * NR;
                let jv = NR.min(n - j0);
                buf[s * kc * NR + kk * NR..][..jv].copy_from_slice(&src[j0..j0 + jv]);
            }
        }
    } else {
        for s in 0..strips {
            let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
            let j0 = s * NR;
            let jv = NR.min(n - j0);
            for (kk, k) in kr.clone().enumerate() {
                for j in 0..jv {
                    strip[kk * NR + j] = view.at(k, j0 + j);
                }
            }
        }
    }
    if let Some(f) = map {
        for v in buf.iter_mut() {
            *v = f(*v);
        }
    }
    buf
}

/// Symmetric int8 quantization of every logical row of `view` (the full
/// `cols`-length vector, exactly as the unfused composition quantizes), via
/// [`precision::quantize_i8`]. Returns the codes row-major plus one scale
/// per row.
///
/// Contiguous rows (`cs == 1`) quantize straight from the backing buffer.
/// Strided views — a transposed operand, i.e. quantizing logical *columns*
/// — first gather into a row-major scratch with a blocked transpose;
/// walking the strides element-by-element would take one cache miss per
/// element, which measured as the dominant cost of the whole int8 path.
pub(crate) fn quantize_view_rows(view: &MatView<'_>) -> (Vec<i8>, Vec<f32>) {
    let (rows, cols) = (view.rows, view.cols);
    let mut codes = vec![0i8; rows * cols];
    let mut scales = vec![1f32; rows];
    let mut quantize_contiguous = |data: &[f32], row_stride: usize| {
        for i in 0..rows {
            let (q, s) = precision::quantize_i8(&data[i * row_stride..i * row_stride + cols]);
            codes[i * cols..(i + 1) * cols].copy_from_slice(&q);
            scales[i] = s;
        }
    };
    if view.cs == 1 {
        quantize_contiguous(view.data, view.rs);
    } else {
        let mut scratch = vec![0f32; rows * cols];
        const B: usize = 32;
        for ib in (0..rows).step_by(B) {
            for jb in (0..cols).step_by(B) {
                for i in ib..(ib + B).min(rows) {
                    for j in jb..(jb + B).min(cols) {
                        scratch[i * cols + j] = view.at(i, j);
                    }
                }
            }
        }
        quantize_contiguous(&scratch, cols);
    }
    (codes, scales)
}

/// Pack quantized A rows (`codes` is `m×k` row-major `i8`) for the block
/// `rows`, widened to `i16` and interleaved in `k`-pairs per tile row (the
/// layout the `madd`-based microkernel broadcasts from). Odd `k` pads the
/// final pair with a zero code, which is exact.
pub(crate) fn pack_a_i8(codes: &[i8], k: usize, rows: Range<usize>, buf: &mut Vec<i16>) {
    let k2 = k.div_ceil(2);
    let tiles = rows.len().div_ceil(MR);
    buf.clear();
    buf.resize(tiles * MR * 2 * k2, 0);
    for t in 0..tiles {
        let tile = &mut buf[t * MR * 2 * k2..(t + 1) * MR * 2 * k2];
        let r0 = rows.start + t * MR;
        let rv = MR.min(rows.end - r0);
        for r in 0..rv {
            let row = &codes[(r0 + r) * k..(r0 + r + 1) * k];
            for (kk2, pair) in row.chunks_exact(2).enumerate() {
                let base = kk2 * MR * 2 + r * 2;
                tile[base] = pair[0] as i16;
                tile[base + 1] = pair[1] as i16;
            }
            if let [last] = row.chunks_exact(2).remainder() {
                tile[(k / 2) * MR * 2 + r * 2] = *last as i16;
            }
        }
    }
}

/// Pack quantized B̂ columns (`codes` is `n×k` row-major `i8`: one row per
/// logical *column* of B̂) into NR-column strips with the `k`-pair column
/// interleave described in the module docs.
pub(crate) fn pack_b_i8(codes: &[i8], k: usize, n: usize) -> Vec<i16> {
    let k2 = k.div_ceil(2);
    let strips = n.div_ceil(NR);
    let mut buf = vec![0i16; strips * NR * 2 * k2];
    for s in 0..strips {
        let strip = &mut buf[s * NR * 2 * k2..(s + 1) * NR * 2 * k2];
        let j0 = s * NR;
        let jv = NR.min(n - j0);
        for j in 0..jv {
            let col = &codes[(j0 + j) * k..(j0 + j + 1) * k];
            let off = (j / 8) * 16 + (j % 8) * 2;
            for (kk2, pair) in col.chunks_exact(2).enumerate() {
                let base = kk2 * NR * 2 + off;
                strip[base] = pair[0] as i16;
                strip[base + 1] = pair[1] as i16;
            }
            if let [last] = col.chunks_exact(2).remainder() {
                strip[(k / 2) * NR * 2 + off] = *last as i16;
            }
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn views_agree_with_matrix_indexing() {
        let mut rng = Rng64::new(1);
        let m = Matrix::randn(5, 7, 0.0, 1.0, &mut rng);
        let v = MatView::of(&m);
        let vt = MatView::of_t(&m);
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(v.at(i, j), m.get(i, j));
                assert_eq!(vt.at(j, i), m.get(i, j));
            }
        }
    }

    #[test]
    fn packed_a_roundtrips_with_zero_padding() {
        let mut rng = Rng64::new(2);
        let m = Matrix::randn(5, 9, 0.0, 1.0, &mut rng);
        let v = MatView::of(&m);
        let mut buf = Vec::new();
        pack_a_f32(&v, 0..5, 2..9, None, &mut buf);
        let kc = 7;
        let tiles = 5usize.div_ceil(MR);
        assert_eq!(buf.len(), tiles * MR * kc);
        for t in 0..tiles {
            for kk in 0..kc {
                for r in 0..MR {
                    let got = buf[t * MR * kc + kk * MR + r];
                    let row = t * MR + r;
                    let want = if row < 5 { m.get(row, 2 + kk) } else { 0.0 };
                    assert_eq!(got, want, "tile {t} kk {kk} r {r}");
                }
            }
        }
    }

    #[test]
    fn packed_b_strips_cover_and_pad_columns() {
        let mut rng = Rng64::new(3);
        let m = Matrix::randn(6, NR + 3, 0.0, 1.0, &mut rng);
        let v = MatView::of(&m);
        let buf = pack_b_f32(&v, 1..6, None);
        let kc = 5;
        assert_eq!(buf.len(), 2 * kc * NR);
        for s in 0..2 {
            for kk in 0..kc {
                for j in 0..NR {
                    let got = buf[s * kc * NR + kk * NR + j];
                    let col = s * NR + j;
                    let want = if col < NR + 3 { m.get(1 + kk, col) } else { 0.0 };
                    assert_eq!(got, want, "strip {s} kk {kk} j {j}");
                }
            }
        }
    }

    #[test]
    fn int8_pack_interleaves_k_pairs() {
        let k = 5; // odd: last pair padded
        let codes: Vec<i8> = (0..2 * k).map(|i| i as i8 - 4).collect();
        let mut a = Vec::new();
        pack_a_i8(&codes, k, 0..2, &mut a);
        let k2 = k.div_ceil(2);
        // Row r, element kk lives at kk2*MR*2 + r*2 + (kk % 2).
        for r in 0..2 {
            for kk in 0..k {
                let got = a[(kk / 2) * MR * 2 + r * 2 + kk % 2];
                assert_eq!(got, codes[r * k + kk] as i16, "r {r} kk {kk}");
            }
            // Odd-k pad slot is zero.
            assert_eq!(a[(k2 - 1) * MR * 2 + r * 2 + 1], 0);
        }
        let b = pack_b_i8(&codes, k, 2);
        for j in 0..2 {
            for kk in 0..k {
                let got = b[(kk / 2) * NR * 2 + (j / 8) * 16 + (j % 8) * 2 + kk % 2];
                assert_eq!(got, codes[j * k + kk] as i16, "j {j} kk {kk}");
            }
        }
    }

    #[test]
    fn quantize_view_rows_matches_direct_quantization() {
        let mut rng = Rng64::new(4);
        let m = Matrix::randn(4, 11, 0.0, 1.0, &mut rng);
        let (codes, scales) = quantize_view_rows(&MatView::of(&m));
        for i in 0..4 {
            let (q, s) = precision::quantize_i8(m.row(i));
            assert_eq!(&codes[i * 11..(i + 1) * 11], &q[..]);
            assert_eq!(scales[i], s);
        }
    }
}
