//! Central finite-difference gradient checker for layers and losses.
//!
//! The scalar probe loss is `L = ⟨G, forward(x)⟩` with a fixed random
//! projection `G` drawn from a seeded RNG: its analytic gradient w.r.t. the
//! layer output is exactly `G`, so one `backward(&G)` call yields analytic
//! gradients for every parameter and for the input, while `L` itself is
//! cheap to re-evaluate under centered parameter perturbations.
//!
//! Tolerances are a per-precision policy ([`Tolerance::for_precision`]):
//! the f32 path is held to a 1e-3 relative error with a 1e-2 step (the
//! sweet spot between truncation error ~eps² and f32 roundoff ~2⁻²⁴/eps);
//! the 16-bit paths only make sense with steps above their own resolution
//! and correspondingly loose bounds; int8 forward passes are quantization
//! staircases and are documented as not finite-difference checkable.

use dd_nn::{Layer, Loss};
use dd_tensor::{Matrix, Precision, Rng64};

/// Finite-difference step and acceptance bound for one precision path.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Centered-difference step size.
    pub eps: f32,
    /// Maximum accepted relative error.
    pub max_rel: f64,
    /// Denominator floor in the relative error (absolute regime below it).
    pub floor: f64,
}

impl Tolerance {
    /// The per-dtype tolerance policy (see DESIGN.md, "Testing strategy").
    pub fn for_precision(p: Precision) -> Tolerance {
        match p {
            // The f64 path still stores outputs in f32, so it checks at the
            // same tolerance as the native f32 path.
            Precision::F64 | Precision::F32 => Tolerance { eps: 1e-2, max_rel: 1e-3, floor: 1.0 },
            // Step must clear the bf16 resolution (2⁻⁸ relative).
            Precision::Bf16 => Tolerance { eps: 0.25, max_rel: 0.25, floor: 1.0 },
            // f16 resolves 2⁻¹¹ relative; a 0.05 step stays above it.
            Precision::F16 => Tolerance { eps: 0.05, max_rel: 0.1, floor: 1.0 },
            // Quantization staircase: indicative only, not a real check.
            Precision::Int8 => Tolerance { eps: 0.5, max_rel: 1.0, floor: 1.0 },
        }
    }
}

/// Successful check summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct GradReport {
    /// Largest relative error seen across all checked coordinates.
    pub max_rel_err: f64,
    /// Number of coordinates checked (parameters + inputs).
    pub checked: usize,
}

/// A coordinate whose numerical and analytic gradients disagree.
#[derive(Debug, Clone)]
pub struct GradFailure {
    /// Which coordinate: `param[i]` or `input[r,c]`.
    pub site: String,
    /// Centered-difference estimate.
    pub numeric: f64,
    /// Backward-pass value.
    pub analytic: f64,
    /// Relative error under the policy's floor.
    pub rel_err: f64,
}

impl std::fmt::Display for GradFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradient mismatch at {}: numeric {:.6e} vs analytic {:.6e} (rel err {:.3e})",
            self.site, self.numeric, self.analytic, self.rel_err
        )
    }
}

/// Flatten a single layer's parameters via `visit_params` (row-major, in
/// visit order). The trainer-side helpers operate on whole models; these
/// operate on one layer so the checker can perturb it in isolation.
pub fn layer_params(layer: &mut dyn Layer) -> Vec<f32> {
    let mut flat = Vec::new();
    layer.visit_params(&mut |p, _| flat.extend_from_slice(p.as_slice()));
    flat
}

/// Flatten a single layer's gradient buffers in the same order.
pub fn layer_grads(layer: &mut dyn Layer) -> Vec<f32> {
    let mut flat = Vec::new();
    layer.visit_params(&mut |_, g| flat.extend_from_slice(g.as_slice()));
    flat
}

/// Write a flat vector back into a layer's parameters (inverse of
/// [`layer_params`]).
pub fn set_layer_params(layer: &mut dyn Layer, flat: &[f32]) {
    let mut offset = 0;
    layer.visit_params(&mut |p, _| {
        let n = p.len();
        debug_assert!(offset + n <= flat.len(), "set_layer_params: flat vector too short");
        p.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    });
    debug_assert_eq!(offset, flat.len(), "set_layer_params: flat vector too long");
}

fn rel_err(numeric: f64, analytic: f64, floor: f64) -> f64 {
    (numeric - analytic).abs() / numeric.abs().max(analytic.abs()).max(floor)
}

/// Check one layer's backward pass against centered finite differences, for
/// both parameter gradients and the input gradient.
///
/// `train` selects the forward mode; pass `false` for stochastic layers
/// (dropout), whose train-mode forward is not a deterministic function of
/// the input. BatchNorm *is* checkable in train mode: its train forward
/// reads only batch statistics (running stats are written, never read).
pub fn check_layer(
    layer: &mut dyn Layer,
    x: &Matrix,
    train: bool,
    prec: Precision,
    tol: &Tolerance,
    probe_seed: u64,
) -> Result<GradReport, Box<GradFailure>> {
    // Probe forward to learn the output shape, then fix the projection G.
    let y0 = layer.forward(x, train, prec);
    let mut probe_rng = Rng64::new(probe_seed);
    let g = Matrix::randn(y0.rows(), y0.cols(), 0.0, 1.0, &mut probe_rng);

    // One backward gives every analytic gradient at once.
    let dx = layer.backward(&g, prec);
    let analytic_params = layer_grads(layer);
    let params0 = layer_params(layer);

    let loss = |layer: &mut dyn Layer, x: &Matrix| -> f64 {
        let y = layer.forward(x, train, prec);
        y.as_slice().iter().zip(g.as_slice()).map(|(&yv, &gv)| yv as f64 * gv as f64).sum()
    };

    let eps = tol.eps;
    let mut report = GradReport::default();
    let mut record = |site: String, numeric: f64, analytic: f64| -> Result<(), Box<GradFailure>> {
        let rel = rel_err(numeric, analytic, tol.floor);
        report.max_rel_err = report.max_rel_err.max(rel);
        report.checked += 1;
        if rel > tol.max_rel {
            return Err(Box::new(GradFailure { site, numeric, analytic, rel_err: rel }));
        }
        Ok(())
    };

    // Parameter gradients.
    let mut perturbed = params0.clone();
    for i in 0..params0.len() {
        // Use the *achieved* step (plus minus minus, in f32) as the
        // denominator: eps is not exactly representable around every value.
        let (pv, mv) = (params0[i] + eps, params0[i] - eps);
        perturbed[i] = pv;
        set_layer_params(layer, &perturbed);
        let lp = loss(layer, x);
        perturbed[i] = mv;
        set_layer_params(layer, &perturbed);
        let lm = loss(layer, x);
        perturbed[i] = params0[i];
        let numeric = (lp - lm) / (pv - mv) as f64;
        record(format!("param[{i}]"), numeric, analytic_params[i] as f64)?;
    }
    set_layer_params(layer, &params0);

    // Input gradient.
    let mut xp = x.clone();
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let x0 = x.get(r, c);
            let (pv, mv) = (x0 + eps, x0 - eps);
            xp.set(r, c, pv);
            let lp = loss(layer, &xp);
            xp.set(r, c, mv);
            let lm = loss(layer, &xp);
            xp.set(r, c, x0);
            let numeric = (lp - lm) / (pv - mv) as f64;
            record(format!("input[{r},{c}]"), numeric, dx.get(r, c) as f64)?;
        }
    }
    Ok(report)
}

/// Check a loss function's gradient w.r.t. predictions against centered
/// finite differences. The loss value is already a scalar, so no projection
/// is needed.
pub fn check_loss(
    loss: Loss,
    pred: &Matrix,
    target: &Matrix,
    tol: &Tolerance,
) -> Result<GradReport, Box<GradFailure>> {
    let (_, analytic) = loss.compute(pred, target);
    let eps = tol.eps;
    let mut report = GradReport::default();
    let mut pp = pred.clone();
    for r in 0..pred.rows() {
        for c in 0..pred.cols() {
            let p0 = pred.get(r, c);
            let (pv, mv) = (p0 + eps, p0 - eps);
            pp.set(r, c, pv);
            let (lp, _) = loss.compute(&pp, target);
            pp.set(r, c, mv);
            let (lm, _) = loss.compute(&pp, target);
            pp.set(r, c, p0);
            let numeric = (lp - lm) / (pv - mv) as f64;
            let ana = analytic.get(r, c) as f64;
            let rel = rel_err(numeric, ana, tol.floor);
            report.max_rel_err = report.max_rel_err.max(rel);
            report.checked += 1;
            if rel > tol.max_rel {
                return Err(Box::new(GradFailure {
                    site: format!("pred[{r},{c}]"),
                    numeric,
                    analytic: ana,
                    rel_err: rel,
                }));
            }
        }
    }
    Ok(report)
}
