//! Deterministic property-based test runner with shrinking.
//!
//! A property is checked over a fixed number of generated cases. Every case
//! is derived from a [`Rng64`] stream split off the configured seed, so a
//! failing run reproduces exactly from the seed alone — there is no ambient
//! entropy anywhere in the pipeline. When a case fails (returns `Err` or
//! panics), the runner greedily shrinks it: it asks the caller's shrink
//! function for smaller candidates, keeps any candidate that still fails,
//! and repeats until it reaches a local minimum. The minimal counterexample
//! is reported with the original seed and case index.

use dd_tensor::Rng64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration: how many cases, and which deterministic seed.
#[derive(Debug, Clone)]
pub struct Config {
    /// Root seed; case `i` draws from `Rng64::new(seed).split(i)`.
    pub seed: u64,
    /// Number of generated cases per property.
    pub cases: usize,
    /// Upper bound on accepted shrink steps (guards against shrink cycles).
    pub max_shrink_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { seed: 0xDD_5EED, cases: 256, max_shrink_steps: 1000 }
    }
}

impl Config {
    /// A config with the default case count and an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Config { seed, ..Config::default() }
    }

    /// Override the case count.
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }
}

/// A minimal failing case, produced by [`falsify`].
#[derive(Debug, Clone)]
pub struct Counterexample<T> {
    /// The shrunk (locally minimal) failing case.
    pub case: T,
    /// The failure message of the shrunk case.
    pub message: String,
    /// Index of the originally failing case (reproduce via `seed` + index).
    pub case_index: usize,
    /// Seed the run was rooted at.
    pub seed: u64,
    /// How many shrink steps were accepted before reaching the minimum.
    pub shrink_steps: usize,
}

impl<T: std::fmt::Debug> std::fmt::Display for Counterexample<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "property falsified (seed {:#x}, case {}, {} shrink steps)\n  \
             minimal counterexample: {:?}\n  failure: {}",
            self.seed, self.case_index, self.shrink_steps, self.case, self.message
        )
    }
}

/// Evaluate a property on one case, converting panics into failures so that
/// crashing inputs (e.g. an edge shape that panics a kernel) shrink like any
/// other counterexample.
fn eval<T, P>(prop: &P, case: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(case))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Run `prop` over `cfg.cases` generated cases; on failure, shrink to a
/// local minimum and return it. `None` means the property held everywhere.
///
/// `gen` receives a per-case RNG (an independent split of the root seed) and
/// the case index. `shrink` proposes strictly-smaller candidates for a
/// failing case; it may return an empty vector when the case is atomic.
pub fn falsify<T, G, S, P>(cfg: &Config, gen: G, shrink: S, prop: P) -> Option<Counterexample<T>>
where
    T: Clone + std::fmt::Debug,
    G: Fn(&mut Rng64, usize) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let root = Rng64::new(cfg.seed);
    for index in 0..cfg.cases {
        let mut rng = root.split(index as u64);
        let case = gen(&mut rng, index);
        let Err(first_msg) = eval(&prop, &case) else {
            continue;
        };
        // Greedy shrink: accept the first smaller candidate that still
        // fails; stop at a local minimum (every candidate passes).
        let mut current = case;
        let mut message = first_msg;
        let mut steps = 0;
        'shrink: while steps < cfg.max_shrink_steps {
            for candidate in shrink(&current) {
                if let Err(msg) = eval(&prop, &candidate) {
                    current = candidate;
                    message = msg;
                    steps += 1;
                    continue 'shrink;
                }
            }
            break;
        }
        return Some(Counterexample {
            case: current,
            message,
            case_index: index,
            seed: cfg.seed,
            shrink_steps: steps,
        });
    }
    None
}

/// Assert a property: like [`falsify`] but panics with the shrunk minimal
/// counterexample, for use directly inside `#[test]` functions.
pub fn check<T, G, S, P>(cfg: &Config, gen: G, shrink: S, prop: P)
where
    T: Clone + std::fmt::Debug,
    G: Fn(&mut Rng64, usize) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    if let Some(cx) = falsify(cfg, gen, shrink, prop) {
        // dd-lint: allow(error-policy/panic) -- the harness's contract is to abort the calling test with the shrunk counterexample
        panic!("{cx}");
    }
}
