//! Differential oracle: every matmul orientation and precision path is
//! replayed against a naive f64 triple-loop reference with an error bound
//! *derived from the precision format*, not hand-tuned per test.
//!
//! For a product element `c_ij = Σ_k a_ik · b_kj` the bound combines
//! three terms, each scaled by `abs_ij = Σ_k |a_ik||b_kj|`:
//!
//! * **operand rounding** — bf16/f16 round both operands to `u` relative
//!   error before multiplying: `(2u + u²)·abs` with `u = 2⁻⁸` (bf16,
//!   8-bit significand) or `2⁻¹¹` (f16, 11-bit significand);
//! * **f32 accumulation** — the emulated paths accumulate in f32:
//!   `(k+1)·2⁻²⁴·abs` (standard γₖ-style recursive-summation bound);
//! * **output storage** — every path stores results in f32:
//!   `2⁻²⁴·|c_ref|`.
//!
//! The int8 path is different in kind: symmetric per-row/per-column
//! quantization with scales `s = max|·|/127` gives a per-product error of
//! `|a|·s_b/2 + |b|·s_a/2 + s_a·s_b/4`, summed over `k` (i32 accumulation
//! is exact). All bounds carry a 2× safety factor plus a small absolute
//! tiebreaker so zero-sized contractions (`k = 0`) compare exactly.

use crate::gen::MatDims;
use dd_tensor::{matmul_nt_prec, matmul_prec, matmul_tn_prec, Matrix, Precision};

/// Which kernel entry point a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `matmul`: `A[m×k] · B[k×n]`.
    Nn,
    /// `matmul_nt`: `A[m×k] · B[n×k]ᵀ`.
    Nt,
    /// `matmul_tn`: `A[k×m]ᵀ · B[k×n]`.
    Tn,
}

impl Orientation {
    /// All three kernel orientations.
    pub const ALL: [Orientation; 3] = [Orientation::Nn, Orientation::Nt, Orientation::Tn];

    /// Kernel name for failure messages.
    pub fn name(self) -> &'static str {
        match self {
            Orientation::Nn => "matmul",
            Orientation::Nt => "matmul_nt",
            Orientation::Tn => "matmul_tn",
        }
    }
}

/// One element that escaped its precision-derived bound.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Kernel under test.
    pub kernel: &'static str,
    /// Precision path under test.
    pub precision: Precision,
    /// Failing element coordinates.
    pub at: (usize, usize),
    /// Kernel output.
    pub got: f64,
    /// f64 reference value.
    pub reference: f64,
    /// The bound that was exceeded.
    pub bound: f64,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} at ({},{}): got {:.9e}, reference {:.9e}, |diff| {:.3e} > bound {:.3e}",
            self.kernel,
            self.precision,
            self.at.0,
            self.at.1,
            self.got,
            self.reference,
            (self.got - self.reference).abs(),
            self.bound
        )
    }
}

/// Naive f64 reference: returns `(c_ref, abs_ref)` where `abs_ref[i,j] =
/// Σ_k |a_ik||b_kj|` scales the precision-derived bounds.
fn reference(a: &Matrix, b: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = vec![0f64; m * n];
    let mut abs = vec![0f64; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a.get(i, kk) as f64;
            for j in 0..n {
                let bkj = b.get(kk, j) as f64;
                c[i * n + j] += aik * bkj;
                abs[i * n + j] += aik.abs() * bkj.abs();
            }
        }
    }
    (c, abs)
}

const U_F32: f64 = 1.0 / (1u64 << 24) as f64;
const U_F64: f64 = 1.0 / (1u64 << 53) as f64;
const U_BF16: f64 = 1.0 / (1u64 << 8) as f64;
const U_F16: f64 = 1.0 / (1u64 << 11) as f64;
/// Safety factor on every analytic bound (covers axpy-order rearrangement
/// and the worst-case constants the simple bounds elide).
const SAFETY: f64 = 2.0;
/// Absolute tiebreaker so exact-zero cases (k = 0, zero operands) pass.
const TINY: f64 = 1e-7;

/// Per-element bound for the float paths.
fn float_bound(p: Precision, k: usize, abs: f64, c_ref: f64) -> f64 {
    let kf = k as f64;
    let (operand_u, accum_u) = match p {
        Precision::F64 => (0.0, U_F64),
        Precision::F32 => (0.0, U_F32),
        Precision::Bf16 => (U_BF16, U_F32),
        Precision::F16 => (U_F16, U_F32),
        Precision::Int8 => unreachable!("int8 uses quantization bounds"),
    };
    let operand = (2.0 * operand_u + operand_u * operand_u) * abs;
    let accum = (kf + 1.0) * accum_u * abs;
    let store = U_F32 * c_ref.abs();
    SAFETY * (operand + accum + store) + TINY
}

/// Per-element int8 bound from the symmetric quantization scales.
fn int8_bound(a: &Matrix, b: &Matrix, i: usize, j: usize) -> f64 {
    let k = a.cols();
    let row_max = (0..k).fold(0f64, |acc, kk| acc.max((a.get(i, kk) as f64).abs()));
    let col_max = (0..k).fold(0f64, |acc, kk| acc.max((b.get(kk, j) as f64).abs()));
    let sa = row_max / 127.0;
    let sb = col_max / 127.0;
    let row_abs: f64 = (0..k).map(|kk| (a.get(i, kk) as f64).abs()).sum();
    let col_abs: f64 = (0..k).map(|kk| (b.get(kk, j) as f64).abs()).sum();
    let quant = 0.5 * sb * row_abs + 0.5 * sa * col_abs + 0.25 * sa * sb * k as f64;
    SAFETY * quant + TINY
}

/// The *unfused* int8 composition the fused kernel must reproduce bitwise:
/// quantize every row of `a` and every column of `b` symmetrically
/// ([`dd_tensor::precision::quantize_i8`]), contract the codes in exact
/// i32 arithmetic, and dequantize each accumulator through
/// [`dd_tensor::precision::dequantize_acc`]. Integer addition is
/// associative, so this naive triple loop is reduction-order-independent —
/// any blocked schedule over the same codes must land on identical bits.
pub fn unfused_int8_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    use dd_tensor::precision::{dequantize_acc, quantize_i8};
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut qa = Vec::with_capacity(m);
    for i in 0..m {
        qa.push(quantize_i8(a.row(i)));
    }
    let bt = b.transpose();
    let mut qb = Vec::with_capacity(n);
    for j in 0..n {
        qb.push(quantize_i8(bt.row(j)));
    }
    Matrix::from_fn(m, n, |i, j| {
        let (ca, sa) = &qa[i];
        let (cb, sb) = &qb[j];
        let mut acc = 0i32;
        for kk in 0..k {
            acc += ca[kk] as i32 * cb[kk] as i32;
        }
        dequantize_acc(acc, *sa, *sb)
    })
}

/// Run one case through a kernel orientation at one precision and compare
/// every element against the f64 reference under the derived bound.
/// Returns the worst observed `|diff| / bound` ratio on success.
pub fn check_matmul(
    dims: &MatDims,
    orient: Orientation,
    p: Precision,
) -> Result<f64, Box<OracleFailure>> {
    // Operand scale 0.5 keeps |c| ≲ k: far from f16's 65504 ceiling.
    let (a, b) = dims.operands(0.5);
    let got = match orient {
        Orientation::Nn => matmul_prec(&a, &b, p),
        Orientation::Nt => matmul_nt_prec(&a, &b.transpose(), p),
        Orientation::Tn => matmul_tn_prec(&a.transpose(), &b, p),
    };
    assert!(
        got.rows() == dims.m && got.cols() == dims.n,
        "{} returned {}x{} for a {}x{}x{} case",
        orient.name(),
        got.rows(),
        got.cols(),
        dims.m,
        dims.k,
        dims.n
    );
    let (c_ref, abs_ref) = reference(&a, &b);
    let mut worst = 0f64;
    for i in 0..dims.m {
        for j in 0..dims.n {
            let r = c_ref[i * dims.n + j];
            let g = got.get(i, j) as f64;
            let bound = match p {
                Precision::Int8 => int8_bound(&a, &b, i, j),
                _ => float_bound(p, dims.k, abs_ref[i * dims.n + j], r),
            };
            let diff = (g - r).abs();
            if !g.is_finite() || diff > bound {
                return Err(Box::new(OracleFailure {
                    kernel: orient.name(),
                    precision: p,
                    at: (i, j),
                    got: g,
                    reference: r,
                    bound,
                }));
            }
            worst = worst.max(diff / bound);
        }
    }
    Ok(worst)
}
