//! Seeded generators and shrinkers for shapes, matrices, and model specs.
//!
//! Every generated case is a small *descriptor* (dimensions plus a data
//! seed) rather than raw data: shrinking perturbs the descriptor and the
//! data regenerates deterministically from its seed, so a shrunk
//! counterexample is reproducible from the printed `Debug` form alone.

use dd_nn::{Activation, ModelSpec};
use dd_tensor::{Matrix, Rng64};

/// Draw a usize uniformly from `lo..=hi`.
pub fn usize_in(rng: &mut Rng64, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi, "usize_in: empty range");
    lo + rng.below(hi - lo + 1)
}

/// Shrink candidates for a usize toward `lo`: the floor itself, the
/// midpoint, and the predecessor — all strictly smaller than `v`.
pub fn shrink_usize(v: usize, lo: usize) -> Vec<usize> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mid = lo + (v - lo) / 2;
    if mid != lo && mid != v {
        out.push(mid);
    }
    if v - 1 != lo {
        out.push(v - 1);
    }
    out
}

/// A standard-normal matrix drawn from `rng`.
pub fn matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    Matrix::randn(rows, cols, 0.0, 1.0, rng)
}

/// A standard-normal matrix with every entry pushed at least `margin` away
/// from zero (sign-preserving shift). Used to keep finite-difference probes
/// clear of the kinks in ReLU/LeakyReLU/max-pool, where the numerical
/// gradient is undefined.
pub fn matrix_away_from_zero(rng: &mut Rng64, rows: usize, cols: usize, margin: f32) -> Matrix {
    let mut m = matrix(rng, rows, cols);
    m.map_inplace(|v| if v >= 0.0 { v + margin } else { v - margin });
    m
}

/// A matmul case descriptor: `C[m×n] = A[m×k] · B[k×n]` with operand data
/// derived from `data_seed`. Orientation-specific operand layouts are built
/// by the oracle from the same logical `A`/`B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatDims {
    /// Output rows.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Seed the operand data regenerates from.
    pub data_seed: u64,
}

impl MatDims {
    /// Sample dimensions uniformly from `lo..=hi` with a fresh data seed.
    pub fn sample(rng: &mut Rng64, lo: usize, hi: usize) -> MatDims {
        MatDims {
            m: usize_in(rng, lo, hi),
            k: usize_in(rng, lo, hi),
            n: usize_in(rng, lo, hi),
            data_seed: rng.next_u64(),
        }
    }

    /// The logical operands `A[m×k]`, `B[k×n]`, regenerated from the seed.
    /// `scale` bounds the operand magnitude (keep it modest so f16 cases
    /// stay far from the 65504 overflow ceiling).
    pub fn operands(&self, scale: f32) -> (Matrix, Matrix) {
        let rng = Rng64::new(self.data_seed);
        let mut a = matrix(&mut rng.split(1), self.m, self.k);
        let mut b = matrix(&mut rng.split(2), self.k, self.n);
        a.scale(scale);
        b.scale(scale);
        (a, b)
    }

    /// Shrink one dimension at a time toward `floor`, keeping the data seed
    /// so the surviving entries stay recognizable across shrink steps.
    pub fn shrink(&self, floor: usize) -> Vec<MatDims> {
        let mut out = Vec::new();
        for m in shrink_usize(self.m, floor) {
            out.push(MatDims { m, ..self.clone() });
        }
        for k in shrink_usize(self.k, floor) {
            out.push(MatDims { k, ..self.clone() });
        }
        for n in shrink_usize(self.n, floor) {
            out.push(MatDims { n, ..self.clone() });
        }
        out
    }
}

/// A random-MLP case descriptor: spec dimensions plus build/data seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpCase {
    /// Input feature width.
    pub in_dim: usize,
    /// Hidden layer widths (possibly empty: a linear model).
    pub hidden: Vec<usize>,
    /// Output width.
    pub out_dim: usize,
    /// Hidden activation.
    pub act: Activation,
    /// Seed used for parameter init and probe data.
    pub seed: u64,
}

impl MlpCase {
    /// Sample a small MLP: 0–2 hidden layers, dims in `1..=max_dim`.
    pub fn sample(rng: &mut Rng64, max_dim: usize) -> MlpCase {
        let depth = rng.below(3);
        let hidden = (0..depth).map(|_| usize_in(rng, 1, max_dim)).collect();
        let acts = [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Gelu];
        MlpCase {
            in_dim: usize_in(rng, 1, max_dim),
            hidden,
            out_dim: usize_in(rng, 1, max_dim),
            act: acts[rng.below(acts.len())],
            seed: rng.next_u64(),
        }
    }

    /// The `ModelSpec` this case describes.
    pub fn spec(&self) -> ModelSpec {
        ModelSpec::mlp(self.in_dim, &self.hidden, self.out_dim, self.act)
    }

    /// Shrink: drop a hidden layer, then shrink each dimension toward 1.
    pub fn shrink(&self) -> Vec<MlpCase> {
        let mut out = Vec::new();
        for drop in 0..self.hidden.len() {
            let mut hidden = self.hidden.clone();
            hidden.remove(drop);
            out.push(MlpCase { hidden, ..self.clone() });
        }
        for v in shrink_usize(self.in_dim, 1) {
            out.push(MlpCase { in_dim: v, ..self.clone() });
        }
        for v in shrink_usize(self.out_dim, 1) {
            out.push(MlpCase { out_dim: v, ..self.clone() });
        }
        for (i, &w) in self.hidden.iter().enumerate() {
            for v in shrink_usize(w, 1) {
                let mut hidden = self.hidden.clone();
                hidden[i] = v;
                out.push(MlpCase { hidden, ..self.clone() });
            }
        }
        out
    }
}
