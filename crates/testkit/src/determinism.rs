//! Bitwise-determinism harness: run a closure under rayon thread pools of
//! different widths and require identical results.
//!
//! `RAYON_NUM_THREADS` is read once when rayon's *global* pool spins up, so
//! an in-process harness cannot vary it after the fact; instead each run
//! installs a local [`rayon::ThreadPool`] of the requested width, which
//! every `par_iter`/`par_chunks` inside the closure then uses. CI
//! additionally runs the whole suite under `RAYON_NUM_THREADS ∈ {1, 4}`
//! (scripts/check.sh) so the global-pool path is exercised too.

/// Thread counts exercised by default, per the determinism contract.
pub const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Why a determinism check failed.
#[derive(Debug)]
pub enum DeterminismError {
    /// A rayon pool of the requested width could not be built.
    Pool(String),
    /// Two pool widths produced different results.
    Diverged {
        /// Baseline pool width (first entry of the thread list).
        baseline_threads: usize,
        /// Pool width that disagreed with the baseline.
        diverged_threads: usize,
        /// Debug rendering of the two results.
        detail: String,
    },
}

impl std::fmt::Display for DeterminismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeterminismError::Pool(e) => write!(f, "failed to build rayon pool: {e}"),
            DeterminismError::Diverged { baseline_threads, diverged_threads, detail } => write!(
                f,
                "results diverge between {baseline_threads}-thread and \
                 {diverged_threads}-thread pools: {detail}"
            ),
        }
    }
}

impl std::error::Error for DeterminismError {}

/// Run `f` inside a dedicated rayon pool of `threads` workers.
pub fn on_pool<T, F>(threads: usize, f: F) -> Result<T, DeterminismError>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| DeterminismError::Pool(e.to_string()))?;
    Ok(pool.install(f))
}

/// Run `f` once per pool width and require every result to equal the first
/// (the comparison is `PartialEq`; pair with [`f32_bits`]/[`f64_bits`] for
/// strictly bitwise float comparison).
pub fn check_thread_invariance<T, F>(threads: &[usize], mut f: F) -> Result<(), DeterminismError>
where
    T: PartialEq + std::fmt::Debug + Send,
    F: FnMut() -> T + Send,
{
    let mut baseline: Option<(usize, T)> = None;
    for &t in threads {
        let result = on_pool(t, &mut f)?;
        match &baseline {
            None => baseline = Some((t, result)),
            Some((t0, expected)) => {
                if result != *expected {
                    return Err(DeterminismError::Diverged {
                        baseline_threads: *t0,
                        diverged_threads: t,
                        detail: format!("{expected:?} (x{t0}) vs {result:?} (x{t})"),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Exact bit patterns of an f32 slice, for bitwise (not `==`) comparison:
/// `==` would conflate `-0.0` with `0.0` and reject equal NaNs.
pub fn f32_bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Exact bit patterns of an f64 slice.
pub fn f64_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}
