//! # dd-testkit — deterministic testing substrate for the deepdriver stack
//!
//! The paper's workloads treat silent numerical divergence as a first-class
//! failure mode: exascale training runs and multi-tenant serving platforms
//! both depend on every layer of the stack computing the same numbers,
//! every time, on every thread count. This crate is the machine-checked
//! version of that trust, consumed as a dev-dependency by the rest of the
//! workspace:
//!
//! * [`runner`] — a property-based harness on the workspace's own
//!   [`dd_tensor::Rng64`] (no ambient entropy, no new dependencies): seeded
//!   generators, greedy shrinking to a locally minimal counterexample,
//!   failures reproducible from `(seed, case index)` alone.
//! * [`gen`] — shape/matrix/model-spec generators whose cases are small
//!   descriptors (dims + data seed), so shrunk counterexamples are
//!   reproducible from their printed form.
//! * [`gradcheck`] — a central finite-difference gradient checker for any
//!   [`dd_nn::Layer`] and loss, with a per-precision tolerance policy.
//! * [`oracle`] — a differential oracle replaying every matmul orientation
//!   and precision path against a naive f64 reference under
//!   precision-derived error bounds.
//! * [`determinism`] — runs a closure under rayon pools of different widths
//!   and requires bitwise-identical results.
//!
//! ## Example
//!
//! ```
//! use dd_testkit::{check, Config, MatDims};
//! use dd_tensor::matmul;
//!
//! // Shape algebra holds for every generated case; failures shrink to a
//! // minimal (m, k, n) before the panic message is printed.
//! check(
//!     &Config::with_seed(42).cases(32),
//!     |rng, _| MatDims::sample(rng, 1, 8),
//!     |case| case.shrink(1),
//!     |case| {
//!         let (a, b) = case.operands(1.0);
//!         let c = matmul(&a, &b);
//!         if c.shape() == (case.m, case.n) {
//!             Ok(())
//!         } else {
//!             Err(format!("got {:?}", c.shape()))
//!         }
//!     },
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod determinism;
pub mod gen;
pub mod gradcheck;
pub mod oracle;
pub mod runner;

pub use determinism::{
    check_thread_invariance, f32_bits, f64_bits, on_pool, DeterminismError, THREAD_COUNTS,
};
pub use gen::{matrix, matrix_away_from_zero, shrink_usize, usize_in, MatDims, MlpCase};
pub use gradcheck::{
    check_layer, check_loss, layer_grads, layer_params, set_layer_params, GradFailure, GradReport,
    Tolerance,
};
pub use oracle::{check_matmul, unfused_int8_matmul, OracleFailure, Orientation};
pub use runner::{check, falsify, Config, Counterexample};
