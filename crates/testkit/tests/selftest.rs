//! Self-tests for the testkit: the harness must find bugs, shrink them to
//! local minima, reproduce deterministically, and catch panics — otherwise
//! every suite built on top of it inherits silent holes.

use dd_tensor::{Precision, Rng64};
use dd_testkit::{
    check_thread_invariance, f32_bits, falsify, shrink_usize, usize_in, Config, MatDims, MlpCase,
};

/// The canonical shrink target: "fails iff value >= 10" must shrink to
/// exactly 10, the smallest failing value, from any starting failure.
#[test]
fn shrinks_to_smallest_failing_value() {
    let cx = falsify(
        &Config::with_seed(7).cases(64),
        |rng, _| usize_in(rng, 0, 1000),
        |&v| shrink_usize(v, 0),
        |&v| if v < 10 { Ok(()) } else { Err(format!("{v} too big")) },
    )
    .expect("values >= 10 appear in 64 draws from 0..=1000");
    assert_eq!(cx.case, 10, "greedy shrink must reach the boundary");
}

#[test]
fn same_seed_reproduces_the_same_counterexample() {
    let run = || {
        falsify(
            &Config::with_seed(1234).cases(64),
            |rng, _| usize_in(rng, 0, 1000),
            |&v| shrink_usize(v, 0),
            |&v| if v % 3 != 0 { Ok(()) } else { Err("divisible by 3".into()) },
        )
        .expect("multiples of 3 are dense")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.case, b.case);
    assert_eq!(a.case_index, b.case_index);
    assert_eq!(a.message, b.message);
}

#[test]
fn panicking_properties_are_caught_and_shrunk() {
    let cx = falsify(
        &Config::with_seed(99).cases(64),
        |rng, _| usize_in(rng, 0, 100),
        |&v| shrink_usize(v, 0),
        |&v| {
            assert!(v < 5, "boom at {v}");
            Ok(())
        },
    )
    .expect("values >= 5 appear");
    assert_eq!(cx.case, 5);
    assert!(cx.message.contains("panicked"), "panic should be folded into the failure: {cx}");
    assert!(cx.message.contains("boom"), "panic payload should survive: {cx}");
}

#[test]
fn passing_property_yields_no_counterexample() {
    let none = falsify(
        &Config::default(),
        |rng, _| usize_in(rng, 0, 100),
        |&v| shrink_usize(v, 0),
        |_| Ok(()),
    );
    assert!(none.is_none());
}

#[test]
fn matdims_shrink_stays_at_or_above_floor_and_strictly_smaller() {
    let mut rng = Rng64::new(5);
    for _ in 0..100 {
        let dims = MatDims::sample(&mut rng, 2, 40);
        for s in dims.shrink(2) {
            assert!(s.m >= 2 && s.k >= 2 && s.n >= 2, "floor violated: {s:?}");
            assert!(s.m + s.k + s.n < dims.m + dims.k + dims.n, "not smaller: {s:?} from {dims:?}");
            assert_eq!(s.data_seed, dims.data_seed, "shrink must keep the data seed");
        }
    }
}

#[test]
fn matdims_operands_regenerate_identically() {
    let mut rng = Rng64::new(6);
    let dims = MatDims::sample(&mut rng, 1, 16);
    let (a1, b1) = dims.operands(1.0);
    let (a2, b2) = dims.operands(1.0);
    assert_eq!(f32_bits(a1.as_slice()), f32_bits(a2.as_slice()));
    assert_eq!(f32_bits(b1.as_slice()), f32_bits(b2.as_slice()));
    assert_eq!(a1.shape(), (dims.m, dims.k));
    assert_eq!(b1.shape(), (dims.k, dims.n));
}

#[test]
fn mlp_case_builds_and_shrinks_toward_linear_model() {
    let mut rng = Rng64::new(8);
    for _ in 0..50 {
        let case = MlpCase::sample(&mut rng, 6);
        let mut model = case.spec().build(case.seed, Precision::F32).expect("generated spec");
        let x = dd_testkit::matrix(&mut Rng64::new(case.seed), 3, case.in_dim);
        let y = model.forward(&x, false);
        assert_eq!(y.shape(), (3, case.out_dim));
        for s in case.shrink() {
            let depth_and_width: usize =
                s.in_dim + s.out_dim + s.hidden.iter().sum::<usize>() + s.hidden.len();
            let original: usize =
                case.in_dim + case.out_dim + case.hidden.iter().sum::<usize>() + case.hidden.len();
            assert!(depth_and_width < original, "not smaller: {s:?} from {case:?}");
        }
    }
}

#[test]
fn thread_invariance_passes_for_constant_and_fails_for_pool_width() {
    // A closure whose result is independent of the pool is accepted.
    check_thread_invariance(&[1, 4], || 42u32).expect("constants are thread-invariant");
    // A closure that leaks the pool width must be rejected.
    let err = check_thread_invariance(&[1, 4], rayon::current_num_threads);
    assert!(err.is_err(), "pool width leaked into the result must diverge");
}

#[test]
fn f32_bits_is_strictly_bitwise() {
    // `==` would call these equal; the bit view must not.
    assert_ne!(f32_bits(&[0.0]), f32_bits(&[-0.0]));
    assert_eq!(f32_bits(&[1.5, -2.25]), f32_bits(&[1.5, -2.25]));
}
