//! Hybrid parallelism planner.
//!
//! Enumerates (data_ways × model_ways) factorizations of a node allocation,
//! costs each with the simulator, and returns the best plan — the
//! "combination of model, data and search parallelism" the abstract says
//! large machines require. Search parallelism enters as independent
//! concurrent trials: the planner can split the machine into `trials`
//! islands and plan each island independently.

use dd_hpcsim::{AllreduceAlgo, Machine, SimPrecision, StepBreakdown, Strategy, TrainJob};
use serde::{Deserialize, Serialize};

/// One evaluated plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Predicted step breakdown.
    pub breakdown: StepBreakdown,
}

/// All feasible (data, model) splits of `nodes`, costed.
pub fn enumerate_plans(
    machine: &Machine,
    job: &TrainJob,
    nodes: usize,
    precision: SimPrecision,
) -> Vec<Plan> {
    assert!(nodes >= 1 && nodes <= machine.nodes, "node allocation out of range");
    let max_model = (job.cuttable_layers + 1).max(1);
    let mut plans = Vec::new();
    for model_ways in 1..=max_model.min(nodes) {
        if !nodes.is_multiple_of(model_ways) {
            continue;
        }
        let data_ways = nodes / model_ways;
        if data_ways > job.global_batch {
            continue; // cannot shard a batch thinner than one sample
        }
        let strategy = if model_ways == 1 {
            Strategy::Data { nodes: data_ways, algo: AllreduceAlgo::Auto }
        } else if data_ways == 1 {
            Strategy::Model { parts: model_ways }
        } else {
            Strategy::Hybrid { data_ways, model_ways, algo: AllreduceAlgo::Auto }
        };
        let breakdown = dd_hpcsim::step_time(machine, job, strategy, precision);
        plans.push(Plan { strategy, breakdown });
    }
    // Pure pipeline over the whole allocation, when the model is deep
    // enough: often the best non-data plan for large models at small batch.
    if nodes > 1 && nodes <= max_model {
        let microbatches = job.global_batch.clamp(1, 32);
        let strategy = Strategy::Pipeline { stages: nodes, microbatches };
        let breakdown = dd_hpcsim::step_time(machine, job, strategy, precision);
        plans.push(Plan { strategy, breakdown });
    }
    plans
}

/// The fastest plan for `nodes`.
///
/// Panics when no split of `nodes` is feasible — an allocation larger than
/// both the global batch (no data shard per node) and the model depth (no
/// stage per node) cannot be planned.
pub fn best_plan(machine: &Machine, job: &TrainJob, nodes: usize, precision: SimPrecision) -> Plan {
    let plans = enumerate_plans(machine, job, nodes, precision);
    assert!(
        !plans.is_empty(),
        "no feasible plan: {nodes} nodes exceed both the global batch ({}) and the model depth",
        job.global_batch
    );
    let Some(plan) = plans.into_iter().min_by(|a, b| a.breakdown.step.total_cmp(&b.breakdown.step))
    else {
        unreachable!("non-empty plan list has a minimum")
    };
    plan
}

/// Plan a hyperparameter-search campaign: split `total_nodes` into
/// `trials` equal islands (search parallelism), plan each island's training
/// strategy, and report the throughput in trials/hour for a training run of
/// `steps_per_trial` steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignPlan {
    /// Concurrent trials (islands).
    pub concurrent_trials: usize,
    /// Nodes per island.
    pub nodes_per_trial: usize,
    /// Per-island plan.
    pub island_plan: Plan,
    /// Seconds per trial.
    pub seconds_per_trial: f64,
    /// Completed trials per hour across the machine.
    pub trials_per_hour: f64,
}

/// Cost a search campaign with a fixed island count.
pub fn plan_campaign(
    machine: &Machine,
    job: &TrainJob,
    trials: usize,
    steps_per_trial: usize,
    precision: SimPrecision,
) -> CampaignPlan {
    assert!(trials >= 1, "need at least one trial island");
    assert!(trials <= machine.nodes, "more islands than nodes");
    let nodes_per_trial = machine.nodes / trials;
    let island_plan = best_plan(machine, job, nodes_per_trial, precision);
    let seconds_per_trial = island_plan.breakdown.step * steps_per_trial as f64;
    CampaignPlan {
        concurrent_trials: trials,
        nodes_per_trial,
        island_plan,
        seconds_per_trial,
        trials_per_hour: trials as f64 * 3600.0 / seconds_per_trial,
    }
}

/// Sweep island counts and return the campaign maximizing trials/hour.
pub fn best_campaign(
    machine: &Machine,
    job: &TrainJob,
    steps_per_trial: usize,
    precision: SimPrecision,
) -> CampaignPlan {
    // Seed with the single-island campaign so there is always a winner,
    // then sweep doubling island counts against it.
    let mut best = plan_campaign(machine, job, 1, steps_per_trial, precision);
    let mut trials = 2;
    while trials <= machine.nodes {
        let plan = plan_campaign(machine, job, trials, steps_per_trial, precision);
        if plan.trials_per_hour > best.trials_per_hour {
            best = plan;
        }
        trials *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> TrainJob {
        TrainJob::from_dense_net(100e6, 2000, 8192, 16)
    }

    #[test]
    fn enumerate_includes_pure_data_plan() {
        let m = Machine::gpu_2017(64);
        let plans = enumerate_plans(&m, &job(), 64, SimPrecision::F32);
        assert!(plans.iter().any(|p| matches!(p.strategy, Strategy::Data { nodes: 64, .. })));
        assert!(plans.len() >= 2, "should find hybrid options too");
    }

    #[test]
    fn best_plan_is_minimum() {
        let m = Machine::gpu_2017(64);
        let plans = enumerate_plans(&m, &job(), 64, SimPrecision::F32);
        let best = best_plan(&m, &job(), 64, SimPrecision::F32);
        for p in plans {
            assert!(best.breakdown.step <= p.breakdown.step + 1e-12);
        }
    }

    #[test]
    fn single_node_plan_always_exists() {
        let m = Machine::gpu_2017(4);
        let p = best_plan(&m, &job(), 1, SimPrecision::F32);
        assert_eq!(p.strategy.nodes(), 1);
    }

    #[test]
    fn search_parallelism_beats_giant_data_parallel_for_throughput() {
        // With many nodes and a modest model, running many concurrent
        // trials on small islands completes more trials/hour than one
        // machine-wide data-parallel job per trial — the abstract's search
        // parallelism argument.
        let m = Machine::gpu_2017(1024);
        let j = job();
        let one_big = plan_campaign(&m, &j, 1, 1000, SimPrecision::F32);
        let many_small = plan_campaign(&m, &j, 128, 1000, SimPrecision::F32);
        assert!(
            many_small.trials_per_hour > 3.0 * one_big.trials_per_hour,
            "search parallel {} vs monolithic {}",
            many_small.trials_per_hour,
            one_big.trials_per_hour
        );
    }

    #[test]
    fn best_campaign_prefers_many_islands() {
        let m = Machine::gpu_2017(512);
        let c = best_campaign(&m, &job(), 500, SimPrecision::F32);
        assert!(c.concurrent_trials >= 32, "got {}", c.concurrent_trials);
        assert!(c.trials_per_hour > 0.0);
    }

    #[test]
    #[should_panic(expected = "more islands than nodes")]
    fn too_many_islands_panics() {
        let m = Machine::gpu_2017(4);
        let _ = plan_campaign(&m, &job(), 8, 100, SimPrecision::F32);
    }
}
