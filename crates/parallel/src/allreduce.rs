//! Real (not simulated) allreduce over threads.
//!
//! Each rank runs on its own OS thread and owns its buffer; segments move
//! between neighbours over crossbeam SPSC channels exactly as a ring
//! allreduce moves them between nodes. The communication *pattern* is
//! therefore the real algorithm — what the simulator's cost model prices —
//! while transport is shared memory.
//!
//! Determinism: the reduction order of each segment is fixed by the ring
//! schedule (segment `s` is accumulated in rank order `s+1, s+2, …`), so
//! results are bit-identical across runs and thread interleavings.

use crossbeam::channel::{bounded, Receiver, Sender};

/// Handle for one rank's participation in a ring allreduce group.
pub struct RingMember {
    rank: usize,
    world: usize,
    to_next: Sender<Vec<f32>>,
    from_prev: Receiver<Vec<f32>>,
}

/// Create a ring of `world` members. Distribute the members to one thread
/// each; every member's [`RingMember::allreduce`] must be called
/// collectively (like MPI).
pub fn ring(world: usize) -> Vec<RingMember> {
    assert!(world >= 1, "world must be at least 1");
    let mut senders = Vec::with_capacity(world);
    let mut receivers = Vec::with_capacity(world);
    for _ in 0..world {
        // Capacity 1 suffices: the schedule never has two in-flight segments
        // per link, and bounded channels apply back-pressure.
        let (s, r) = bounded::<Vec<f32>>(1);
        senders.push(Some(s));
        receivers.push(Some(r));
    }
    (0..world)
        .map(|rank| RingMember {
            rank,
            world,
            // Rank r sends to r+1 (channel index r+1's receiver side).
            // dd-lint: allow(error-policy/expect) -- each endpoint is taken exactly once by construction of the loop above
            to_next: senders[(rank + 1) % world].take().expect("sender taken once"),
            // dd-lint: allow(error-policy/expect) -- each endpoint is taken exactly once by construction of the loop above
            from_prev: receivers[rank].take().expect("receiver taken once"),
        })
        .collect()
}

impl RingMember {
    /// This member's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Sum-allreduce `buf` in place across the group. All members must call
    /// this with equal-length buffers. Returns the number of bytes this rank
    /// sent (for traffic accounting).
    pub fn allreduce(&self, buf: &mut [f32]) -> usize {
        // dd-obs accounting at the kernel entry point (instrumentation
        // coverage policy): collectives and ring traffic are counted here,
        // volume-per-step counters stay with the callers.
        if dd_obs::is_enabled() {
            dd_obs::counter_add("allreduces_total", 1);
        }
        if self.world == 1 {
            return 0;
        }
        let n = buf.len();
        let p = self.world;
        let seg_bounds: Vec<(usize, usize)> = (0..p)
            .map(|s| {
                let start = s * n / p;
                let end = (s + 1) * n / p;
                (start, end)
            })
            .collect();
        let mut sent_bytes = 0usize;

        // Phase 1: reduce-scatter. In step k, rank r sends segment
        // (r - k) mod p and receives+accumulates segment (r - k - 1) mod p.
        for k in 0..p - 1 {
            let send_seg = (self.rank + p - k) % p;
            let (s0, s1) = seg_bounds[send_seg];
            let out = buf[s0..s1].to_vec();
            sent_bytes += out.len() * 4;
            // dd-lint: allow(error-policy/expect) -- a dead ring peer is unrecoverable mid-collective; the panic cascades to the FT supervisor, which restarts the segment
            self.to_next.send(out).expect("ring peer disconnected");
            // dd-lint: allow(error-policy/expect) -- a dead ring peer is unrecoverable mid-collective; the panic cascades to the FT supervisor, which restarts the segment
            let incoming = self.from_prev.recv().expect("ring peer disconnected");
            let recv_seg = (self.rank + p - k - 1) % p;
            let (r0, r1) = seg_bounds[recv_seg];
            for (dst, src) in buf[r0..r1].iter_mut().zip(&incoming) {
                *dst += src;
            }
        }

        // Phase 2: allgather. In step k, rank r sends its now-complete
        // segment (r + 1 - k) mod p and receives segment (r - k) mod p.
        for k in 0..p - 1 {
            let send_seg = (self.rank + 1 + p - k) % p;
            let (s0, s1) = seg_bounds[send_seg];
            let out = buf[s0..s1].to_vec();
            sent_bytes += out.len() * 4;
            // dd-lint: allow(error-policy/expect) -- a dead ring peer is unrecoverable mid-collective; the panic cascades to the FT supervisor, which restarts the segment
            self.to_next.send(out).expect("ring peer disconnected");
            // dd-lint: allow(error-policy/expect) -- a dead ring peer is unrecoverable mid-collective; the panic cascades to the FT supervisor, which restarts the segment
            let incoming = self.from_prev.recv().expect("ring peer disconnected");
            let recv_seg = (self.rank + p - k) % p;
            let (r0, r1) = seg_bounds[recv_seg];
            buf[r0..r1].copy_from_slice(&incoming);
        }
        if dd_obs::is_enabled() {
            dd_obs::counter_add("allreduce_ring_bytes", sent_bytes as u64);
        }
        sent_bytes
    }

    /// Mean-allreduce: sum then divide by the world size.
    pub fn allreduce_mean(&self, buf: &mut [f32]) -> usize {
        let bytes = self.allreduce(buf);
        let inv = 1.0 / self.world as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
        bytes
    }
}

/// Reference sequential reduction for testing and for the naive
/// "parameter-server" baseline: gathers all buffers and sums in rank order.
pub fn sequential_sum(buffers: &[Vec<f32>]) -> Vec<f32> {
    assert!(!buffers.is_empty());
    let n = buffers[0].len();
    let mut out = vec![0f32; n];
    for b in buffers {
        assert_eq!(b.len(), n, "ragged buffers");
        for (o, &v) in out.iter_mut().zip(b) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_tensor::Rng64;

    fn run_ring(world: usize, len: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = Rng64::new(seed);
        let inputs: Vec<Vec<f32>> =
            (0..world).map(|_| (0..len).map(|_| rng.normal(0.0, 1.0) as f32).collect()).collect();
        let members = ring(world);
        let mut outputs: Vec<Vec<f32>> = inputs.clone();
        std::thread::scope(|scope| {
            let handles: Vec<_> = members
                .into_iter()
                .zip(outputs.iter_mut())
                .map(|(m, buf)| {
                    scope.spawn(move || {
                        m.allreduce(buf);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
        (inputs, outputs)
    }

    #[test]
    fn allreduce_matches_sequential_sum() {
        for &(world, len) in &[(2usize, 10usize), (3, 7), (4, 64), (7, 100), (8, 1024)] {
            let (inputs, outputs) = run_ring(world, len, world as u64);
            let expect = sequential_sum(&inputs);
            for (r, out) in outputs.iter().enumerate() {
                for (j, (&got, &want)) in out.iter().zip(&expect).enumerate() {
                    assert!(
                        (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                        "world={world} rank={r} elem {j}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_ranks_agree_bitwise() {
        let (_, outputs) = run_ring(6, 333, 9);
        for r in 1..outputs.len() {
            assert_eq!(outputs[0], outputs[r], "rank {r} diverged");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (_, a) = run_ring(5, 97, 3);
        let (_, b) = run_ring(5, 97, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn world_one_is_identity() {
        let members = ring(1);
        let mut buf = vec![1.0, 2.0, 3.0];
        let bytes = members[0].allreduce(&mut buf);
        assert_eq!(bytes, 0);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_allreduce_divides() {
        let members = ring(4);
        let mut bufs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32 + 1.0; 8]).collect();
        std::thread::scope(|scope| {
            for (m, buf) in members.into_iter().zip(bufs.iter_mut()) {
                scope.spawn(move || {
                    m.allreduce_mean(buf);
                });
            }
        });
        // Mean of 1,2,3,4 = 2.5.
        for b in &bufs {
            assert!(b.iter().all(|&v| (v - 2.5).abs() < 1e-6));
        }
    }

    #[test]
    fn traffic_matches_ring_model() {
        // Each rank sends 2(p-1)·(n/p) elements.
        let world = 4;
        let len = 400;
        let members = ring(world);
        let mut bufs: Vec<Vec<f32>> = (0..world).map(|_| vec![1.0; len]).collect();
        let mut sent = vec![0usize; world];
        std::thread::scope(|scope| {
            let handles: Vec<_> = members
                .into_iter()
                .zip(bufs.iter_mut())
                .map(|(m, buf)| scope.spawn(move || m.allreduce(buf)))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                sent[i] = h.join().unwrap();
            }
        });
        let expect = 2 * (world - 1) * (len / world) * 4;
        for &s in &sent {
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn uneven_segment_lengths_handled() {
        // len not divisible by world exercises the segment-bound math.
        let (inputs, outputs) = run_ring(3, 10, 11);
        let expect = sequential_sum(&inputs);
        for out in &outputs {
            for (&got, &want) in out.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-4);
            }
        }
    }
}
