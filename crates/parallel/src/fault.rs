//! Fault injection and fault-tolerant data-parallel training.
//!
//! The paper's target machines (CORAL pre-exascale systems and beyond) have
//! node MTBFs measured in hours while training runs are measured in days, so
//! the interesting regime is "failure is the common case". This module makes
//! that regime testable on a workstation:
//!
//! * [`FaultInjector`] — a *deterministic, seeded* source of replica
//!   crashes, straggler delays, corrupted (NaN/Inf) gradients and storage
//!   read failures. Every draw is a pure function of
//!   `(seed, attempt, rank, epoch, step, retry)` via the splittable RNG, so
//!   fault schedules are independent of thread timing and bitwise
//!   reproducible across runs.
//! * [`CheckpointStore`] — an in-memory stand-in for the parallel file
//!   system holding the most recent `dd-nn` v2 checkpoints (weights +
//!   optimizer state + RNG position).
//! * [`train_data_parallel_ft`] — a supervisor around the plain
//!   data-parallel trainer that checkpoints every `checkpoint_every`
//!   epochs, catches replica failures as typed errors, restores from the
//!   newest readable checkpoint (falling back to older generations when
//!   storage reads fail), and optionally shrinks the world (elastic
//!   recovery) before retrying.
//!
//! With zero faults configured, the supervisor's loss curve and final
//! parameters are bitwise identical to [`train_data_parallel`]'s for
//! stateless-compression runs: segments carry exact `f32` parameters and
//! optimizer state across boundaries, and the shuffle schedule is
//! precomputed from epoch 0. (Top-k error feedback is per-rank *local*
//! state that resets at segment boundaries — a real-world restart artifact
//! we keep, and document, rather than hide.)
//!
//! The expected-wall-clock arithmetic for choosing `checkpoint_every` lives
//! in `dd-hpcsim`'s `failure` module (Young/Daly); experiment E11 sweeps
//! the interval against that model.

use crate::data_parallel::{
    build_schedule, run_segment, DataParallelConfig, DataParallelError, DataParallelReport,
    CRASH_MARKER,
};
use dd_nn::{checkpoint, ModelSpec, OptimizerState, TrainState};
use dd_tensor::{Matrix, Rng64};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Kinds of faults the injector can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The replica thread dies mid-step (fail-stop).
    ReplicaCrash,
    /// The replica stalls for [`FaultConfig::straggler_millis`] before its
    /// collective; stalls beyond [`FaultConfig::step_timeout_millis`] are
    /// treated as crashes (eviction).
    Straggler,
    /// The replica's exchanged gradient is poisoned with NaN/Inf.
    CorruptGradient,
    /// A checkpoint read fails. For scheduled storage faults the
    /// [`ScheduledFault::epoch`] field carries the checkpoint *generation*
    /// and [`ScheduledFault::step`] the read *retry* index.
    StorageReadFail,
}

/// A fault pinned to an exact coordinate, for reproducible scenarios in
/// tests and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Restart attempt the fault fires on (0 = first try).
    pub attempt: usize,
    /// Victim rank (ignored for [`FaultKind::StorageReadFail`]).
    pub rank: usize,
    /// Epoch (or checkpoint generation for storage faults).
    pub epoch: usize,
    /// Step within the epoch (or read retry for storage faults).
    pub step: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Fault model plus recovery policy for [`train_data_parallel_ft`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for all probabilistic draws (independent of the training seed).
    pub seed: u64,
    /// Per rank-step probability of a crash.
    pub p_crash: f64,
    /// Per rank-step probability of a straggler stall.
    pub p_straggler: f64,
    /// Per rank-step probability of a corrupted gradient.
    pub p_corrupt_grad: f64,
    /// Per read-attempt probability that a checkpoint read fails.
    pub p_storage_fail: f64,
    /// How long a straggler stalls.
    pub straggler_millis: u64,
    /// Stalls beyond this are treated as crashes (the synchronous step's
    /// eviction timeout).
    pub step_timeout_millis: u64,
    /// Restarts before the supervisor gives up.
    pub max_restarts: usize,
    /// Local-gradient re-reads before a corrupted contribution is dropped
    /// (replaced by zeros, keeping the collective in lockstep).
    pub max_grad_retries: usize,
    /// Re-reads (with exponential backoff) before a checkpoint generation
    /// is abandoned for the next older one.
    pub max_storage_retries: usize,
    /// Checkpoint every this many epochs (clamped to >= 1).
    pub checkpoint_every: usize,
    /// Checkpoint generations retained.
    pub keep_checkpoints: usize,
    /// On failure, shrink the world by one (down to 1) instead of retrying
    /// at full size — elastic data parallelism.
    pub elastic: bool,
    /// Faults pinned to exact coordinates, checked before any probabilistic
    /// draw.
    pub scheduled: Vec<ScheduledFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            p_crash: 0.0,
            p_straggler: 0.0,
            p_corrupt_grad: 0.0,
            p_storage_fail: 0.0,
            straggler_millis: 20,
            step_timeout_millis: 250,
            max_restarts: 8,
            max_grad_retries: 2,
            max_storage_retries: 2,
            checkpoint_every: 1,
            keep_checkpoints: 2,
            elastic: false,
            scheduled: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A configuration that injects nothing (checkpointing still runs).
    pub fn none() -> Self {
        FaultConfig::default()
    }
}

/// What an observed fault did, as recorded in the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// Replica killed (injected fail-stop).
    Crash,
    /// Replica stalled within the step timeout and was tolerated.
    StragglerDelay {
        /// Stall length.
        millis: u64,
    },
    /// Replica stalled past the step timeout and was evicted (crash).
    StragglerTimeout {
        /// Stall length that breached the timeout.
        millis: u64,
    },
    /// Corrupted gradient recovered by re-reading the local gradient.
    CorruptGradientRetried {
        /// Re-reads needed.
        retries: usize,
    },
    /// Corrupted gradient dropped (zero contribution) after retries ran out.
    CorruptGradientDropped,
    /// Supervisor wrote a checkpoint.
    CheckpointSaved {
        /// Monotonic checkpoint generation.
        generation: usize,
    },
    /// Supervisor restored from a checkpoint.
    CheckpointRestored {
        /// Epoch training resumed from.
        epoch: usize,
    },
    /// A checkpoint read attempt failed.
    StorageReadFailed {
        /// Generation whose read failed.
        generation: usize,
    },
}

/// One entry in the fault-tolerant run's event log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Restart attempt during which the event occurred.
    pub attempt: usize,
    /// Rank involved (0 for supervisor-side events).
    pub rank: usize,
    /// Epoch coordinate (resume epoch for restore events).
    pub epoch: usize,
    /// Step coordinate (read retry for storage events).
    pub step: usize,
    /// What happened.
    pub kind: FaultEventKind,
}

fn kind_order(kind: &FaultEventKind) -> u8 {
    match kind {
        FaultEventKind::StragglerDelay { .. } => 0,
        FaultEventKind::StragglerTimeout { .. } => 1,
        FaultEventKind::CorruptGradientRetried { .. } => 2,
        FaultEventKind::CorruptGradientDropped => 3,
        FaultEventKind::Crash => 4,
        FaultEventKind::StorageReadFailed { .. } => 5,
        FaultEventKind::CheckpointRestored { .. } => 6,
        FaultEventKind::CheckpointSaved { .. } => 7,
    }
}

/// Deterministic fault source. Stateless: every decision is re-derived from
/// the seed and the full coordinate of the question being asked, so
/// injection is independent of thread scheduling.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
}

// Domain labels for independent RNG streams.
const DOMAIN_STEP: u64 = 1;
const DOMAIN_GRAD_RETRY: u64 = 2;
const DOMAIN_STORAGE: u64 = 3;

impl FaultInjector {
    /// Wrap a fault configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Uniform draw in [0, 1) keyed by a domain label and coordinates.
    fn draw(&self, domain: u64, parts: &[u64]) -> f64 {
        let mut rng = Rng64::new(self.config.seed).split(domain);
        for &p in parts {
            rng = rng.split(p);
        }
        rng.uniform()
    }

    fn scheduled_step_fault(
        &self,
        attempt: usize,
        rank: usize,
        epoch: usize,
        step: usize,
    ) -> Option<FaultKind> {
        self.config
            .scheduled
            .iter()
            .find(|f| {
                f.kind != FaultKind::StorageReadFail
                    && f.attempt == attempt
                    && f.rank == rank
                    && f.epoch == epoch
                    && f.step == step
            })
            .map(|f| f.kind)
    }

    /// Decide the fault (if any) for one rank-step. Crashes and evicted
    /// stragglers panic with [`CRASH_MARKER`] so the supervisor can tell
    /// them from collateral ring disconnects; tolerated stragglers sleep
    /// here. Returns `true` when the step's gradient is to be corrupted.
    pub(crate) fn before_step(
        &self,
        attempt: usize,
        rank: usize,
        epoch: usize,
        step: usize,
        events: &Mutex<Vec<FaultEvent>>,
    ) -> bool {
        let kind = self.scheduled_step_fault(attempt, rank, epoch, step).or_else(|| {
            let u =
                self.draw(DOMAIN_STEP, &[attempt as u64, rank as u64, epoch as u64, step as u64]);
            if u < self.config.p_crash {
                Some(FaultKind::ReplicaCrash)
            } else if u < self.config.p_crash + self.config.p_straggler {
                Some(FaultKind::Straggler)
            } else if u < self.config.p_crash + self.config.p_straggler + self.config.p_corrupt_grad
            {
                Some(FaultKind::CorruptGradient)
            } else {
                None
            }
        });
        match kind {
            None => false,
            Some(FaultKind::CorruptGradient) => true,
            Some(FaultKind::ReplicaCrash) => {
                dd_obs::counter_add("faults_injected", 1);
                dd_obs::counter_add("faults_crash", 1);
                events.lock().push(FaultEvent {
                    attempt,
                    rank,
                    epoch,
                    step,
                    kind: FaultEventKind::Crash,
                });
                // dd-lint: allow(error-policy/panic) -- deliberate injected fault; the segment harness catches it
                panic!("{CRASH_MARKER} (rank {rank} epoch {epoch} step {step})");
            }
            Some(FaultKind::Straggler) => {
                let millis = self.config.straggler_millis;
                dd_obs::counter_add("faults_injected", 1);
                dd_obs::counter_add("faults_straggler", 1);
                dd_obs::hist_record("straggler_wait_seconds", millis as f64 / 1e3);
                if millis > self.config.step_timeout_millis {
                    events.lock().push(FaultEvent {
                        attempt,
                        rank,
                        epoch,
                        step,
                        kind: FaultEventKind::StragglerTimeout { millis },
                    });
                    // dd-lint: allow(error-policy/panic) -- deliberate eviction of a timed-out straggler; caught by the harness
                    panic!(
                        "{CRASH_MARKER} (straggler evicted: rank {rank} epoch {epoch} step {step})"
                    );
                }
                events.lock().push(FaultEvent {
                    attempt,
                    rank,
                    epoch,
                    step,
                    kind: FaultEventKind::StragglerDelay { millis },
                });
                std::thread::sleep(Duration::from_millis(millis));
                false
            }
            Some(FaultKind::StorageReadFail) => false,
        }
    }

    /// Poison, scan and repair one rank's outgoing gradient. `corrupt` is
    /// the verdict from [`Self::before_step`]; `local_grad` is the clean
    /// `(gradient, shard weight)` pair when the rank computed one. On exit
    /// `flat` is guaranteed finite: either the clean gradient (possibly
    /// after bounded re-reads) or zeros (contribution dropped), so the
    /// collective stays in lockstep across ranks either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_gradient(
        &self,
        attempt: usize,
        rank: usize,
        epoch: usize,
        step: usize,
        corrupt: bool,
        local_grad: &Option<(Vec<f32>, f32)>,
        flat: &mut [f32],
        events: &Mutex<Vec<FaultEvent>>,
    ) {
        if corrupt {
            dd_obs::counter_add("faults_injected", 1);
            dd_obs::counter_add("faults_corrupt_gradient", 1);
        }
        let mut corrupt = corrupt;
        let mut retries = 0usize;
        loop {
            if corrupt && !flat.is_empty() {
                flat[0] = f32::NAN;
                let mid = flat.len() / 2;
                flat[mid] = f32::INFINITY;
            }
            if flat.iter().all(|v| v.is_finite()) {
                if retries > 0 {
                    events.lock().push(FaultEvent {
                        attempt,
                        rank,
                        epoch,
                        step,
                        kind: FaultEventKind::CorruptGradientRetried { retries },
                    });
                }
                return;
            }
            if retries >= self.config.max_grad_retries {
                flat.iter_mut().for_each(|v| *v = 0.0);
                events.lock().push(FaultEvent {
                    attempt,
                    rank,
                    epoch,
                    step,
                    kind: FaultEventKind::CorruptGradientDropped,
                });
                return;
            }
            retries += 1;
            // Re-read the gradient the model still holds — no recompute, so
            // RNG-bearing layers stay aligned across ranks.
            match local_grad {
                Some((g, w)) => {
                    for (dst, &src) in flat.iter_mut().zip(g) {
                        *dst = src * w;
                    }
                }
                None => flat.iter_mut().for_each(|v| *v = 0.0),
            }
            corrupt = self.draw(
                DOMAIN_GRAD_RETRY,
                &[attempt as u64, rank as u64, epoch as u64, step as u64, retries as u64],
            ) < self.config.p_corrupt_grad;
        }
    }

    /// Does reading checkpoint `generation` fail on this `retry`?
    pub(crate) fn storage_read_fails(
        &self,
        attempt: usize,
        generation: usize,
        retry: usize,
    ) -> bool {
        let scheduled = self.config.scheduled.iter().any(|f| {
            f.kind == FaultKind::StorageReadFail
                && f.attempt == attempt
                && f.epoch == generation
                && f.step == retry
        });
        scheduled
            || self.draw(DOMAIN_STORAGE, &[attempt as u64, generation as u64, retry as u64])
                < self.config.p_storage_fail
    }
}

/// One retained checkpoint blob.
#[derive(Debug, Clone)]
pub struct StoredCheckpoint {
    /// Epoch boundary the checkpoint captures (training resumes here).
    pub epoch: usize,
    /// Monotonic generation number (unique per save).
    pub generation: usize,
    /// Serialized `dd-nn` v2 checkpoint bytes.
    pub data: Vec<u8>,
}

/// Bounded in-memory checkpoint history, newest last — the stand-in for a
/// burst buffer / PFS checkpoint directory.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    keep: usize,
    next_generation: usize,
    blobs: Vec<StoredCheckpoint>,
}

impl CheckpointStore {
    /// Store retaining the newest `keep` generations (clamped to >= 1).
    pub fn new(keep: usize) -> Self {
        CheckpointStore { keep: keep.max(1), next_generation: 0, blobs: Vec::new() }
    }

    /// Add a checkpoint, evicting the oldest beyond the retention bound.
    /// Returns the generation assigned.
    pub fn push(&mut self, epoch: usize, data: Vec<u8>) -> usize {
        self.next_generation += 1;
        let generation = self.next_generation;
        self.blobs.push(StoredCheckpoint { epoch, generation, data });
        while self.blobs.len() > self.keep {
            self.blobs.remove(0);
        }
        generation
    }

    /// Newest retained checkpoint.
    pub fn newest(&self) -> Option<&StoredCheckpoint> {
        self.blobs.last()
    }

    /// Discard the newest checkpoint (e.g. after it proved unreadable).
    pub fn drop_newest(&mut self) -> Option<StoredCheckpoint> {
        self.blobs.pop()
    }

    /// Retained generations.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when no checkpoint is retained.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

/// Outcome of a fault-tolerant run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultTolerantReport {
    /// The usual training report. Loss entries cover committed epochs only
    /// (work lost to a failure is replayed, not double counted); byte
    /// counters likewise sum committed segments.
    pub report: DataParallelReport,
    /// Everything the injector and supervisor did, sorted by
    /// (attempt, epoch, step, rank) for deterministic comparison.
    pub events: Vec<FaultEvent>,
    /// Restarts performed.
    pub restarts: usize,
    /// Checkpoints written.
    pub checkpoints_saved: usize,
    /// World size at the end (smaller than configured after elastic
    /// shrinks).
    pub final_world: usize,
}

/// Restore from the newest readable checkpoint, injecting storage faults
/// and falling back to older generations. Returns the resume epoch plus the
/// carried parameters and optimizer state.
fn restore_latest(
    store: &mut CheckpointStore,
    injector: &FaultInjector,
    attempt: usize,
    events: &Mutex<Vec<FaultEvent>>,
) -> Option<(usize, Vec<f32>, OptimizerState)> {
    loop {
        let (epoch, generation, data) = {
            let newest = store.newest()?;
            (newest.epoch, newest.generation, newest.data.clone())
        };
        let mut readable = false;
        for retry in 0..=injector.config().max_storage_retries {
            if injector.storage_read_fails(attempt, generation, retry) {
                dd_obs::counter_add("faults_injected", 1);
                dd_obs::counter_add("faults_storage_read", 1);
                events.lock().push(FaultEvent {
                    attempt,
                    rank: 0,
                    epoch,
                    step: retry,
                    kind: FaultEventKind::StorageReadFailed { generation },
                });
                // Exponential backoff, capped small: these are in-memory
                // stand-ins for PFS retries.
                std::thread::sleep(Duration::from_millis(1 << retry.min(5)));
            } else {
                readable = true;
                break;
            }
        }
        if !readable {
            store.drop_newest();
            continue;
        }
        match checkpoint::load_with_state(&data) {
            Ok((_, mut model, Some(state))) => {
                dd_obs::counter_add("recoveries", 1);
                events.lock().push(FaultEvent {
                    attempt,
                    rank: 0,
                    epoch,
                    step: 0,
                    kind: FaultEventKind::CheckpointRestored { epoch },
                });
                return Some((state.epoch as usize, model.flatten_params(), state.optimizer));
            }
            // Corrupt or stateless blob: fall back to the previous
            // generation.
            _ => {
                store.drop_newest();
            }
        }
    }
}

/// Train with synchronous data parallelism under injected faults,
/// checkpointing every [`FaultConfig::checkpoint_every`] epochs and
/// restarting from the newest readable checkpoint after each failure.
///
/// With `fault = FaultConfig::none()` the result is bitwise identical to
/// [`train_data_parallel`] for stateless-compression configurations (see
/// the module docs for the top-k caveat).
pub fn train_data_parallel_ft(
    spec: &ModelSpec,
    x: &Matrix,
    y: &Matrix,
    config: &DataParallelConfig,
    fault: &FaultConfig,
) -> Result<FaultTolerantReport, DataParallelError> {
    config.validate(x, y)?;
    spec.validate().map_err(|e| DataParallelError::InvalidSpec(e.to_string()))?;
    // Single-clock policy: the run times itself through a dd-obs span, so
    // the reported seconds and any exported trace share one clock.
    let run_span = dd_obs::span("ft_train");
    let injector = FaultInjector::new(fault.clone());
    let schedule = build_schedule(x.rows(), config.epochs, config.seed);
    let events = Mutex::new(Vec::new());
    let mut store = CheckpointStore::new(fault.keep_checkpoints);
    let checkpoint_every = fault.checkpoint_every.max(1);

    let mut world = config.world;
    let mut attempt = 0usize;
    let mut restarts = 0usize;
    let mut checkpoints_saved = 0usize;
    let mut losses: Vec<f64> = Vec::new();
    let mut carried: Option<(Vec<f32>, OptimizerState)> = None;
    let mut bytes_sent = 0usize;
    let mut wire_bytes = 0usize;
    let mut epoch = 0usize;

    while epoch < config.epochs {
        let end = (epoch + checkpoint_every).min(config.epochs);
        let init = carried.as_ref().map(|(p, o)| (p.as_slice(), o));
        match run_segment(
            spec,
            x,
            y,
            config,
            world,
            &schedule.orders,
            epoch..end,
            init,
            Some(&injector),
            attempt,
            &events,
        ) {
            Ok(seg) => {
                losses.extend(seg.losses);
                bytes_sent += seg.bytes_sent;
                wire_bytes += seg.wire_bytes;
                epoch = end;
                // Checkpoint at the boundary: weights + optimizer state +
                // the shuffle RNG's position before the next epoch.
                let mut model = spec
                    .build(config.seed.wrapping_add(1), config.precision)
                    .map_err(|e| DataParallelError::InvalidSpec(e.to_string()))?;
                model.load_params(&seg.params);
                let state = TrainState {
                    epoch: epoch as u64,
                    optimizer: seg.opt.clone(),
                    rng: schedule.positions[epoch].clone(),
                };
                let blob = checkpoint::save_with_state(spec, &mut model, &state)
                    .map_err(|e| DataParallelError::CheckpointFailed(e.to_string()))?;
                carried = Some((seg.params, seg.opt));
                let generation = store.push(epoch, blob.to_vec());
                checkpoints_saved += 1;
                events.lock().push(FaultEvent {
                    attempt,
                    rank: 0,
                    epoch,
                    step: 0,
                    kind: FaultEventKind::CheckpointSaved { generation },
                });
            }
            Err(DataParallelError::ReplicaPanicked { .. }) => {
                dd_obs::counter_add("restarts_total", 1);
                restarts += 1;
                if restarts > fault.max_restarts {
                    return Err(DataParallelError::RestartsExhausted { restarts });
                }
                attempt += 1;
                if fault.elastic && world > 1 {
                    world -= 1;
                }
                match restore_latest(&mut store, &injector, attempt, &events) {
                    Some((resume_epoch, params, opt)) => {
                        losses.truncate(resume_epoch);
                        epoch = resume_epoch;
                        carried = Some((params, opt));
                    }
                    None => {
                        // No readable checkpoint at all: cold restart.
                        losses.clear();
                        epoch = 0;
                        carried = None;
                    }
                }
            }
            Err(other) => return Err(other),
        }
    }

    let final_params = match carried {
        Some((params, _)) => params,
        // Zero-epoch run: report the initial weights, as the plain trainer
        // does.
        None => {
            let mut model = spec
                .build(config.seed.wrapping_add(1), config.precision)
                .map_err(|e| DataParallelError::InvalidSpec(e.to_string()))?;
            model.flatten_params()
        }
    };
    let mut events = events.into_inner();
    events.sort_by_key(|e| (e.attempt, e.epoch, e.step, e.rank, kind_order(&e.kind)));
    Ok(FaultTolerantReport {
        report: DataParallelReport {
            epoch_losses: losses,
            final_params,
            bytes_sent_per_rank: bytes_sent,
            compressed_wire_bytes: wire_bytes,
            seconds: run_span.finish(),
        },
        events,
        restarts,
        checkpoints_saved,
        final_world: world,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_parallel::train_data_parallel;
    use dd_nn::Activation;

    fn toy_problem(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = Rng64::new(seed);
        let x = Matrix::randn(n, 3, 0.0, 1.0, &mut rng);
        let y = Matrix::from_fn(n, 1, |i, _| x.get(i, 0) - 2.0 * x.get(i, 1) + 0.5 * x.get(i, 2));
        (x, y)
    }

    fn spec() -> ModelSpec {
        ModelSpec::mlp(3, &[8], 1, Activation::Tanh)
    }

    fn cfg(world: usize, epochs: usize) -> DataParallelConfig {
        DataParallelConfig { world, epochs, global_batch: 32, ..Default::default() }
    }

    #[test]
    fn zero_fault_run_is_bitwise_identical_to_plain_trainer() {
        let (x, y) = toy_problem(96, 11);
        let config = cfg(2, 4);
        let plain = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
        let ft = train_data_parallel_ft(
            &spec(),
            &x,
            &y,
            &config,
            &FaultConfig { checkpoint_every: 2, ..FaultConfig::none() },
        )
        .expect("trains");
        assert_eq!(ft.report.epoch_losses, plain.epoch_losses);
        assert_eq!(ft.report.final_params, plain.final_params);
        assert_eq!(ft.restarts, 0);
        assert_eq!(ft.checkpoints_saved, 2);
        assert_eq!(ft.final_world, 2);
    }

    #[test]
    fn scheduled_crash_restores_and_reproduces_the_fault_free_run() {
        let (x, y) = toy_problem(96, 12);
        let config = cfg(2, 5);
        let plain = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
        // Kill rank 1 at the first step of epoch 2 on the first attempt; the
        // supervisor restores the epoch-2 checkpoint, so the retried run
        // replays exactly what the uninterrupted run computed.
        let ft = train_data_parallel_ft(
            &spec(),
            &x,
            &y,
            &config,
            &FaultConfig {
                scheduled: vec![ScheduledFault {
                    attempt: 0,
                    rank: 1,
                    epoch: 2,
                    step: 0,
                    kind: FaultKind::ReplicaCrash,
                }],
                ..FaultConfig::none()
            },
        )
        .expect("recovers");
        assert_eq!(ft.restarts, 1);
        assert!(ft
            .events
            .iter()
            .any(|e| e.kind == FaultEventKind::Crash && e.rank == 1 && e.epoch == 2));
        assert!(ft
            .events
            .iter()
            .any(|e| e.kind == FaultEventKind::CheckpointRestored { epoch: 2 }));
        assert_eq!(ft.report.epoch_losses, plain.epoch_losses);
        assert_eq!(ft.report.final_params, plain.final_params);
    }

    #[test]
    fn corrupted_gradient_is_retried_without_changing_the_trajectory() {
        let (x, y) = toy_problem(96, 13);
        let config = cfg(2, 3);
        let plain = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
        let ft = train_data_parallel_ft(
            &spec(),
            &x,
            &y,
            &config,
            &FaultConfig {
                scheduled: vec![ScheduledFault {
                    attempt: 0,
                    rank: 0,
                    epoch: 1,
                    step: 0,
                    kind: FaultKind::CorruptGradient,
                }],
                ..FaultConfig::none()
            },
        )
        .expect("recovers");
        assert_eq!(ft.restarts, 0);
        assert!(ft
            .events
            .iter()
            .any(|e| e.kind == FaultEventKind::CorruptGradientRetried { retries: 1 }));
        // The retry re-reads the clean local gradient, so the trajectory is
        // untouched.
        assert_eq!(ft.report.epoch_losses, plain.epoch_losses);
        assert_eq!(ft.report.final_params, plain.final_params);
    }

    #[test]
    fn straggler_within_timeout_is_tolerated() {
        let (x, y) = toy_problem(64, 14);
        let config = cfg(2, 2);
        let plain = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
        let ft = train_data_parallel_ft(
            &spec(),
            &x,
            &y,
            &config,
            &FaultConfig {
                straggler_millis: 5,
                step_timeout_millis: 250,
                scheduled: vec![ScheduledFault {
                    attempt: 0,
                    rank: 1,
                    epoch: 0,
                    step: 0,
                    kind: FaultKind::Straggler,
                }],
                ..FaultConfig::none()
            },
        )
        .expect("tolerates");
        assert_eq!(ft.restarts, 0);
        assert!(ft.events.iter().any(|e| e.kind == FaultEventKind::StragglerDelay { millis: 5 }));
        assert_eq!(ft.report.final_params, plain.final_params);
    }

    #[test]
    fn straggler_beyond_timeout_is_evicted_and_world_shrinks() {
        let (x, y) = toy_problem(64, 15);
        let config = cfg(3, 3);
        let ft = train_data_parallel_ft(
            &spec(),
            &x,
            &y,
            &config,
            &FaultConfig {
                straggler_millis: 300,
                step_timeout_millis: 10,
                elastic: true,
                scheduled: vec![ScheduledFault {
                    attempt: 0,
                    rank: 2,
                    epoch: 1,
                    step: 0,
                    kind: FaultKind::Straggler,
                }],
                ..FaultConfig::none()
            },
        )
        .expect("recovers elastically");
        assert_eq!(ft.restarts, 1);
        assert_eq!(ft.final_world, 2);
        assert!(ft
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::StragglerTimeout { .. })));
        assert_eq!(ft.report.epoch_losses.len(), 3);
    }

    #[test]
    fn storage_failures_fall_back_to_an_older_generation() {
        let (x, y) = toy_problem(96, 16);
        let config = cfg(2, 4);
        let plain = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
        // Crash at epoch 2 after checkpoints at epochs 1 (gen 1) and 2
        // (gen 2); make every read of gen 2 fail so the supervisor falls
        // back to gen 1 and replays from epoch 1 — still exactly the
        // fault-free trajectory.
        let mut scheduled = vec![ScheduledFault {
            attempt: 0,
            rank: 0,
            epoch: 2,
            step: 0,
            kind: FaultKind::ReplicaCrash,
        }];
        for retry in 0..=1 {
            scheduled.push(ScheduledFault {
                attempt: 1,
                rank: 0,
                epoch: 2, // generation for storage faults
                step: retry,
                kind: FaultKind::StorageReadFail,
            });
        }
        let ft = train_data_parallel_ft(
            &spec(),
            &x,
            &y,
            &config,
            &FaultConfig { max_storage_retries: 1, scheduled, ..FaultConfig::none() },
        )
        .expect("recovers from older checkpoint");
        assert_eq!(ft.restarts, 1);
        assert_eq!(
            ft.events
                .iter()
                .filter(|e| matches!(e.kind, FaultEventKind::StorageReadFailed { generation: 2 }))
                .count(),
            2
        );
        assert!(ft
            .events
            .iter()
            .any(|e| e.kind == FaultEventKind::CheckpointRestored { epoch: 1 }));
        assert_eq!(ft.report.epoch_losses, plain.epoch_losses);
        assert_eq!(ft.report.final_params, plain.final_params);
    }

    #[test]
    fn restarts_exhausted_is_a_typed_error() {
        let (x, y) = toy_problem(64, 17);
        let err = train_data_parallel_ft(
            &spec(),
            &x,
            &y,
            &cfg(2, 2),
            &FaultConfig { p_crash: 1.0, max_restarts: 2, ..FaultConfig::none() },
        )
        .unwrap_err();
        assert!(matches!(err, DataParallelError::RestartsExhausted { restarts: 3 }));
    }

    #[test]
    fn fault_storm_completes_deterministically() {
        let (x, y) = toy_problem(96, 18);
        let config = cfg(2, 4);
        let fault = FaultConfig {
            seed: 7,
            p_crash: 0.03,
            p_straggler: 0.05,
            p_corrupt_grad: 0.05,
            p_storage_fail: 0.1,
            straggler_millis: 1,
            max_restarts: 100,
            ..FaultConfig::none()
        };
        let a = train_data_parallel_ft(&spec(), &x, &y, &config, &fault).expect("survives");
        let b = train_data_parallel_ft(&spec(), &x, &y, &config, &fault).expect("survives");
        assert_eq!(a.report.epoch_losses.len(), 4);
        // Deterministic injection: identical runs, identical event logs.
        assert_eq!(a.events, b.events);
        assert_eq!(a.report.final_params, b.report.final_params);
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn checkpoint_store_retention_is_bounded() {
        let mut store = CheckpointStore::new(2);
        assert!(store.is_empty());
        for epoch in 1..=5 {
            store.push(epoch, vec![epoch as u8]);
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.newest().unwrap().epoch, 5);
        assert_eq!(store.newest().unwrap().generation, 5);
        store.drop_newest();
        assert_eq!(store.newest().unwrap().epoch, 4);
    }
}
