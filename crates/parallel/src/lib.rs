//! # dd-parallel — model, data and search parallelism engines
//!
//! The abstract: "DNNs in general do not have good strong scaling behavior,
//! so to fully exploit large-scale parallelism they rely on a combination of
//! model, data and search parallelism." This crate implements that
//! combination twice over:
//!
//! * **For real** inside one address space — [`allreduce`] is a genuine ring
//!   allreduce over crossbeam channels between OS threads, and
//!   [`data_parallel`] trains replicated models with it, bit-identically
//!   across replicas. [`model_parallel`] partitions a network into stages
//!   whose chained execution is numerically identical to the whole model.
//! * **Analytically at scale** — the same algorithms are costed on
//!   `dd-hpcsim` machines; [`planner`] searches (data × model × search)
//!   factorizations of a node allocation for the fastest plan, and
//!   [`compression`] quantifies the bytes saved by top-k/int8 gradient
//!   compression.
//!
//! Failures are first-class: [`fault`] adds a deterministic, seeded fault
//! injector (crashes, stragglers, NaN gradients, storage read failures) and
//! a checkpoint/restart supervisor with elastic recovery on top of the
//! data-parallel trainer, whose error modes are the typed
//! [`DataParallelError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allreduce;
pub mod compression;
pub mod data_parallel;
pub mod fault;
pub mod model_parallel;
pub mod planner;

pub use allreduce::{ring, RingMember};
pub use compression::{quantize_gradient, Compressed, TopKCompressor};
pub use data_parallel::{
    train_data_parallel, DataParallelConfig, DataParallelError, DataParallelReport, GradCompression,
};
pub use fault::{
    train_data_parallel_ft, CheckpointStore, FaultConfig, FaultEvent, FaultEventKind,
    FaultInjector, FaultKind, FaultTolerantReport, ScheduledFault,
};
pub use model_parallel::{build_stages, partition_by_params, Partition, StagedModel};
pub use planner::{best_campaign, best_plan, enumerate_plans, CampaignPlan, Plan};

use dd_tensor::Precision;

/// Map a numeric precision to the simulator's throughput class.
pub fn sim_precision(p: Precision) -> dd_hpcsim::SimPrecision {
    match p {
        Precision::F64 => dd_hpcsim::SimPrecision::F64,
        Precision::F32 => dd_hpcsim::SimPrecision::F32,
        Precision::Bf16 | Precision::F16 => dd_hpcsim::SimPrecision::F16,
        Precision::Int8 => dd_hpcsim::SimPrecision::Int8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_mapping_collapses_16bit() {
        assert_eq!(sim_precision(Precision::Bf16), dd_hpcsim::SimPrecision::F16);
        assert_eq!(sim_precision(Precision::F16), dd_hpcsim::SimPrecision::F16);
        assert_eq!(sim_precision(Precision::F64), dd_hpcsim::SimPrecision::F64);
        assert_eq!(sim_precision(Precision::Int8), dd_hpcsim::SimPrecision::Int8);
    }
}
