//! Layer-wise model parallelism.
//!
//! A [`Partition`] splits a `ModelSpec` into contiguous stages balanced by
//! parameter count. Stages can be *executed* (sequentially, validating that
//! partitioned forward/backward is numerically identical to the whole
//! model) and *costed* on a simulated machine (mapping to
//! `dd_hpcsim::Strategy::Model`, which is where fabric bandwidth bites).

use dd_hpcsim::{Machine, SimPrecision, StepBreakdown, Strategy, TrainJob};
use dd_nn::{ModelSpec, Sequential, SpecError};
use dd_tensor::{Matrix, Precision};
use serde::{Deserialize, Serialize};

/// A contiguous split of a layer stack into stages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Stage boundaries: stage `i` covers layers `bounds[i]..bounds[i+1]`.
    pub bounds: Vec<usize>,
}

impl Partition {
    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Layer range of one stage.
    pub fn stage_range(&self, stage: usize) -> std::ops::Range<usize> {
        self.bounds[stage]..self.bounds[stage + 1]
    }
}

/// Greedily split `spec` into `parts` contiguous stages with roughly equal
/// parameter counts. Panics when `parts` exceeds the number of layers;
/// returns the spec's own error when it does not build.
pub fn partition_by_params(spec: &ModelSpec, parts: usize) -> Result<Partition, SpecError> {
    let total_layers = spec.layers.len();
    assert!(parts >= 1, "need at least one part");
    assert!(parts <= total_layers, "cannot split {total_layers} layers into {parts} stages");
    // Parameter count per layer via a throwaway build (cheap: init only).
    let model = spec.build(0, Precision::F32)?;
    let per_layer: Vec<usize> = model.layers().iter().map(|l| l.param_count()).collect();
    let total: usize = per_layer.iter().sum();
    let target = total as f64 / parts as f64;

    let mut bounds = vec![0usize];
    let mut acc = 0usize;
    for (i, &p) in per_layer.iter().enumerate() {
        let remaining_layers = total_layers - i;
        let remaining_stages = parts - (bounds.len() - 1);
        // Force a cut when the remaining layers barely cover the remaining
        // stages.
        let must_cut = remaining_layers == remaining_stages && bounds.last() != Some(&i);
        let over_target = acc > 0 && (acc + p) as f64 > target * bounds.len() as f64;
        if bounds.len() < parts && (must_cut || over_target) {
            bounds.push(i);
            // acc continues accumulating globally against stage targets.
        }
        acc += p;
    }
    bounds.push(total_layers);
    // Deduplicate any accidental repeats (defensive; keeps invariants).
    bounds.dedup();
    while bounds.len() - 1 < parts {
        // Split the widest stage (by layer count) to reach the stage target.
        let Some((widest, _)) =
            (0..bounds.len() - 1).map(|s| (s, bounds[s + 1] - bounds[s])).max_by_key(|&(_, w)| w)
        else {
            unreachable!("bounds always spans at least one stage")
        };
        let mid = (bounds[widest] + bounds[widest + 1]) / 2;
        bounds.insert(widest + 1, mid);
    }
    Ok(Partition { bounds })
}

/// The stages of a partitioned model, each an independent `Sequential`.
pub struct StagedModel {
    stages: Vec<Sequential>,
    /// Activation width leaving each stage (last entry = output width).
    boundary_widths: Vec<usize>,
}

/// Build runnable stages from a spec and a partition. Stage weights are
/// initialized identically to the unpartitioned `spec.build(seed, …)` model,
/// which is what makes equivalence testable.
pub fn build_stages(
    spec: &ModelSpec,
    partition: &Partition,
    seed: u64,
    precision: Precision,
) -> Result<StagedModel, SpecError> {
    // Build the full model once, then move layers out per stage. Rebuilding
    // per-stage would change RNG streams; moving preserves them.
    let model = spec.build(seed, precision)?;
    let input_dim = model.input_dim();
    let mut layers: Vec<_> = model.into_layers();

    let mut stages = Vec::with_capacity(partition.stages());
    let mut boundary_widths = Vec::with_capacity(partition.stages());
    let mut dim = input_dim;
    // Drain from the back to keep indices stable, then reverse.
    for s in (0..partition.stages()).rev() {
        let range = partition.stage_range(s);
        let tail: Vec<_> = layers.drain(range.clone()).collect();
        stages.push((range.start, tail));
    }
    stages.reverse();
    let mut built = Vec::with_capacity(stages.len());
    for (_, stage_layers) in stages {
        let mut out_dim = dim;
        for l in &stage_layers {
            out_dim = l.output_dim(out_dim);
        }
        built.push(Sequential::from_layers(stage_layers, dim, precision));
        boundary_widths.push(out_dim);
        dim = out_dim;
    }
    Ok(StagedModel { stages: built, boundary_widths })
}

impl StagedModel {
    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Activation width crossing the cut after stage `i`.
    pub fn boundary_width(&self, i: usize) -> usize {
        self.boundary_widths[i]
    }

    /// Forward through all stages in order (simulating the inter-node
    /// activation handoff); returns the final output.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut h = x.clone();
        for stage in &mut self.stages {
            h = stage.forward(&h, train);
        }
        h
    }

    /// Backward through all stages in reverse; returns the input gradient.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for stage in self.stages.iter_mut().rev() {
            g = stage.backward(&g);
        }
        g
    }

    /// Total parameters across stages.
    pub fn param_count(&self) -> usize {
        self.stages.iter().map(|s| s.param_count()).sum()
    }

    /// Per-stage parameter counts (for balance checks).
    pub fn stage_param_counts(&self) -> Vec<usize> {
        self.stages.iter().map(|s| s.param_count()).collect()
    }
}

/// Cost a model-parallel execution of this spec on a simulated machine.
pub fn cost_on_machine(
    spec: &ModelSpec,
    partition: &Partition,
    machine: &Machine,
    global_batch: usize,
    precision: SimPrecision,
) -> Result<StepBreakdown, SpecError> {
    let staged = build_stages(spec, partition, 0, Precision::F32)?;
    let params = staged.param_count() as f64;
    let max_boundary = (0..staged.num_stages().saturating_sub(1))
        .map(|i| staged.boundary_width(i))
        .max()
        .unwrap_or(0);
    let job = TrainJob {
        params,
        flops_per_sample: 6.0 * params,
        sample_bytes: 4.0 * f64::from(u32::try_from(spec.input.width()).unwrap_or(u32::MAX)),
        global_batch,
        activation_bytes_per_cut: max_boundary as f64 * 4.0,
        cuttable_layers: spec.layers.len().saturating_sub(1),
    };
    Ok(dd_hpcsim::step_time(
        machine,
        &job,
        Strategy::Model { parts: partition.stages() },
        precision,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::Activation;
    use dd_tensor::Rng64;

    fn spec() -> ModelSpec {
        ModelSpec::mlp(10, &[64, 32, 16], 4, Activation::Relu)
    }

    #[test]
    fn partition_covers_all_layers() {
        let s = spec();
        for parts in 1..=4 {
            let p = partition_by_params(&s, parts).expect("spec builds");
            assert_eq!(p.stages(), parts, "parts {parts}: {:?}", p.bounds);
            assert_eq!(p.bounds[0], 0);
            assert_eq!(*p.bounds.last().unwrap(), s.layers.len());
            for w in p.bounds.windows(2) {
                assert!(w[0] < w[1], "empty stage in {:?}", p.bounds);
            }
        }
    }

    #[test]
    fn partition_roughly_balances_params() {
        let s = spec();
        let p = partition_by_params(&s, 3).expect("spec builds");
        let staged = build_stages(&s, &p, 0, Precision::F32).expect("spec builds");
        let counts = staged.stage_param_counts();
        let max = *counts.iter().max().unwrap() as f64;
        let total: usize = counts.iter().sum();
        // No stage should hold more than ~70% of the weights for this net.
        assert!(max / (total as f64) < 0.7, "imbalanced: {counts:?}");
    }

    #[test]
    fn staged_forward_matches_unpartitioned() {
        let s = spec();
        let mut whole = s.build(42, Precision::F32).unwrap();
        let p = partition_by_params(&s, 3).expect("spec builds");
        let mut staged = build_stages(&s, &p, 42, Precision::F32).expect("spec builds");
        let mut rng = Rng64::new(1);
        let x = Matrix::randn(6, 10, 0.0, 1.0, &mut rng);
        let y_whole = whole.predict(&x);
        let y_staged = staged.forward(&x, false);
        assert!(y_whole.approx_eq(&y_staged, 1e-5), "staged forward diverged");
        assert_eq!(staged.param_count(), whole.param_count());
    }

    #[test]
    fn staged_backward_matches_unpartitioned() {
        let s = spec();
        let mut whole = s.build(7, Precision::F32).unwrap();
        let p = partition_by_params(&s, 2).expect("spec builds");
        let mut staged = build_stages(&s, &p, 7, Precision::F32).expect("spec builds");
        let mut rng = Rng64::new(2);
        let x = Matrix::randn(5, 10, 0.0, 1.0, &mut rng);
        let yw = whole.forward(&x, true);
        let ys = staged.forward(&x, true);
        assert!(yw.approx_eq(&ys, 1e-5));
        let gw = whole.backward(&yw);
        let gs = staged.backward(&ys);
        assert!(gw.approx_eq(&gs, 1e-4), "input gradients diverged");
    }

    #[test]
    fn boundary_widths_recorded() {
        let s = spec();
        let p = Partition { bounds: vec![0, 2, 4, s.layers.len()] };
        let staged = build_stages(&s, &p, 0, Precision::F32).expect("spec builds");
        // After layer 1 (dense 64 + relu) width is 64; after layer 3 it's 32.
        assert_eq!(staged.boundary_width(0), 64);
        assert_eq!(staged.boundary_width(1), 32);
        assert_eq!(staged.boundary_width(2), 4);
    }

    #[test]
    fn machine_cost_decreases_compute_with_parts() {
        let s = spec();
        let m = Machine::gpu_2017(16);
        let p1 = partition_by_params(&s, 1).expect("spec builds");
        let p4 = partition_by_params(&s, 4).expect("spec builds");
        let one = cost_on_machine(&s, &p1, &m, 256, SimPrecision::F32).expect("spec builds");
        let four = cost_on_machine(&s, &p4, &m, 256, SimPrecision::F32).expect("spec builds");
        assert!(four.compute < one.compute);
        assert!(four.comm > one.comm, "cuts must cost communication");
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_parts_panics() {
        let s = ModelSpec::mlp(4, &[], 2, Activation::Identity); // 1 layer
        let _ = partition_by_params(&s, 5);
    }
}
