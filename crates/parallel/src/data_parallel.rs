//! Synchronous data-parallel SGD over real threads.
//!
//! `world` replicas each hold a copy of the model, compute gradients on a
//! disjoint shard of every minibatch, average them with the real ring
//! allreduce from [`crate::allreduce`], and apply identical optimizer
//! updates — the exact algorithm whose cost `dd-hpcsim` models analytically.
//! A correctness theorem worth testing (and we do): with full-batch shards
//! and matching seeds, data-parallel training is *mathematically equivalent*
//! to single-replica training on the concatenated batch.
//!
//! Failures are surfaced as typed [`DataParallelError`] values rather than
//! panics; the fault-tolerant supervisor in [`crate::fault`] reuses the same
//! epoch-segment runner to add checkpoint/restart and elastic recovery on
//! top of this trainer without perturbing its arithmetic.

use crate::allreduce::ring;
use crate::compression::{quantize_gradient, TopKCompressor};
use crate::fault::{FaultEvent, FaultInjector};
use dd_nn::{Loss, ModelSpec, Optimizer, OptimizerConfig, OptimizerState};
use dd_tensor::{Matrix, Precision, Rng64};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Panic payload marker used by the fault injector's crash and
/// straggler-timeout faults so the supervisor can tell an injected
/// fail-stop from collateral ring-disconnect panics.
pub(crate) const CRASH_MARKER: &str = "injected replica crash";

/// Lossy gradient exchange applied before the allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GradCompression {
    /// Exchange dense f32 gradients (exact).
    None,
    /// Top-k sparsification with per-rank error feedback.
    TopK {
        /// Fraction of entries kept each step.
        fraction: f64,
    },
    /// Symmetric 8-bit quantization.
    Int8,
}

impl GradCompression {
    /// Table label.
    pub fn name(self) -> String {
        match self {
            GradCompression::None => "dense-f32".into(),
            GradCompression::TopK { fraction } => format!("top-{:.0}%", fraction * 100.0),
            GradCompression::Int8 => "int8".into(),
        }
    }
}

/// Typed failure modes of the data-parallel trainers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataParallelError {
    /// `world` was zero.
    WorldZero,
    /// More replicas than samples in a global batch.
    WorldExceedsBatch {
        /// Configured world size.
        world: usize,
        /// Configured global batch.
        global_batch: usize,
    },
    /// Feature and target matrices disagree on row count.
    ShapeMismatch {
        /// Rows in `x`.
        x_rows: usize,
        /// Rows in `y`.
        y_rows: usize,
    },
    /// The model spec failed validation.
    InvalidSpec(String),
    /// A replica thread panicked (injected crash, straggler eviction, or a
    /// genuine bug); the step it was part of produced no update.
    ReplicaPanicked {
        /// Rank of the first failed replica.
        rank: usize,
    },
    /// The fault-tolerant supervisor gave up after too many restarts.
    RestartsExhausted {
        /// Restarts attempted before giving up.
        restarts: usize,
    },
    /// Writing a boundary checkpoint failed (serialization error).
    CheckpointFailed(String),
}

impl std::fmt::Display for DataParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataParallelError::WorldZero => write!(f, "world must be >= 1"),
            DataParallelError::WorldExceedsBatch { world, global_batch } => {
                write!(f, "world {world} exceeds global batch {global_batch}")
            }
            DataParallelError::ShapeMismatch { x_rows, y_rows } => {
                write!(f, "feature rows {x_rows} != target rows {y_rows}")
            }
            DataParallelError::InvalidSpec(e) => write!(f, "invalid model spec: {e}"),
            DataParallelError::ReplicaPanicked { rank } => {
                write!(f, "replica {rank} crashed")
            }
            DataParallelError::RestartsExhausted { restarts } => {
                write!(f, "gave up after {restarts} restarts")
            }
            DataParallelError::CheckpointFailed(e) => {
                write!(f, "boundary checkpoint failed: {e}")
            }
        }
    }
}

impl std::error::Error for DataParallelError {}

/// Configuration for the data-parallel trainer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataParallelConfig {
    /// Number of replicas (threads).
    pub world: usize,
    /// Global minibatch size (split evenly across replicas).
    pub global_batch: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Optimizer applied identically on every replica.
    pub optimizer: OptimizerConfig,
    /// Loss function.
    pub loss: Loss,
    /// Shuffle seed.
    pub seed: u64,
    /// Numeric precision for all replicas.
    pub precision: Precision,
    /// Gradient compression applied before the allreduce.
    pub compression: GradCompression,
}

impl Default for DataParallelConfig {
    fn default() -> Self {
        DataParallelConfig {
            world: 4,
            global_batch: 64,
            epochs: 5,
            optimizer: OptimizerConfig::sgd(0.05),
            loss: Loss::Mse,
            seed: 0,
            precision: Precision::F32,
            compression: GradCompression::None,
        }
    }
}

impl DataParallelConfig {
    /// Check the configuration against a training-set shape.
    pub fn validate(&self, x: &Matrix, y: &Matrix) -> Result<(), DataParallelError> {
        if self.world == 0 {
            return Err(DataParallelError::WorldZero);
        }
        if self.world > self.global_batch {
            return Err(DataParallelError::WorldExceedsBatch {
                world: self.world,
                global_batch: self.global_batch,
            });
        }
        if x.rows() != y.rows() {
            return Err(DataParallelError::ShapeMismatch { x_rows: x.rows(), y_rows: y.rows() });
        }
        Ok(())
    }
}

/// Outcome of a data-parallel run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataParallelReport {
    /// Rank 0's shard-weighted training loss per epoch (an unbiased sample
    /// of the global loss; exact when world = 1).
    pub epoch_losses: Vec<f64>,
    /// Final flattened parameters (identical on every replica; asserted).
    pub final_params: Vec<f32>,
    /// Total bytes each rank sent through the allreduce ring.
    pub bytes_sent_per_rank: usize,
    /// Wire bytes each rank's gradients would occupy after compression
    /// (equals the dense volume when compression is off).
    pub compressed_wire_bytes: usize,
    /// Wall-clock seconds of the whole run.
    pub seconds: f64,
}

/// Epoch shuffle schedule plus the RNG stream position at every epoch
/// boundary (`positions[e]` is the state *before* epoch `e`'s shuffle is
/// drawn, so a resume at epoch `e` can regenerate the remaining schedule).
pub(crate) struct EpochSchedule {
    pub orders: Vec<Vec<usize>>,
    pub positions: Vec<Rng64>,
}

/// Pre-compute the shared minibatch schedule: every replica sees the same
/// global batches, sharded by rank. One shuffled order per epoch.
pub(crate) fn build_schedule(n: usize, epochs: usize, seed: u64) -> EpochSchedule {
    let mut order_rng = Rng64::new(seed);
    let mut orders = Vec::with_capacity(epochs);
    let mut positions = Vec::with_capacity(epochs + 1);
    for _ in 0..epochs {
        positions.push(order_rng.clone());
        let mut idx: Vec<usize> = (0..n).collect();
        order_rng.shuffle(&mut idx);
        orders.push(idx);
    }
    positions.push(order_rng);
    EpochSchedule { orders, positions }
}

/// Per-rank result of one epoch segment.
pub(crate) struct SegmentOutput {
    pub losses: Vec<f64>,
    pub params: Vec<f32>,
    pub opt: OptimizerState,
    pub bytes_sent: usize,
    pub wire_bytes: usize,
}

type ReplicaOutput = (Vec<f64>, Vec<f32>, OptimizerState, usize, usize);

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Run epochs `epochs.start..epochs.end` of the schedule across `world`
/// replicas, optionally resuming from carried parameters/optimizer state
/// and optionally injecting faults. The zero-fault, fresh-start, full-range
/// call is exactly the classic data-parallel trainer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_segment(
    spec: &ModelSpec,
    x: &Matrix,
    y: &Matrix,
    config: &DataParallelConfig,
    world: usize,
    schedule: &[Vec<usize>],
    epochs: Range<usize>,
    init: Option<(&[f32], &OptimizerState)>,
    injector: Option<&FaultInjector>,
    attempt: usize,
    events: &Mutex<Vec<FaultEvent>>,
) -> Result<SegmentOutput, DataParallelError> {
    let members = ring(world);
    let mut results: Vec<Option<Result<ReplicaOutput, String>>> =
        (0..world).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = members
            .into_iter()
            .map(|member| {
                let epochs = epochs.clone();
                scope.spawn(move || {
                    let rank = member.rank();
                    // Same seed on every replica: identical initial weights
                    // and identical dropout streams, which keeps replicas in
                    // lockstep after identical updates.
                    let mut model = spec
                        .build(config.seed.wrapping_add(1), config.precision)
                        // dd-lint: allow(error-policy/expect) -- spec validated by the public entry points; replica threads cannot propagate Results
                        .expect("validated model spec");
                    let mut opt: Optimizer = config.optimizer.build();
                    if let Some((params, opt_state)) = init {
                        model.load_params(params);
                        opt.load_state(opt_state);
                    }
                    let mut losses = Vec::with_capacity(epochs.len());
                    let mut bytes_sent = 0usize;
                    let mut wire_bytes = 0usize;
                    let mut flat = vec![0f32; model.param_count()];
                    let mut topk = match config.compression {
                        GradCompression::TopK { fraction } => {
                            Some(TopKCompressor::new(fraction, flat.len()))
                        }
                        _ => None,
                    };

                    for epoch in epochs {
                        let epoch_order = &schedule[epoch];
                        let mut epoch_loss = 0f64;
                        let mut batches = 0usize;
                        for (step, global_chunk) in
                            epoch_order.chunks(config.global_batch).enumerate()
                        {
                            // Crash / straggler faults fire before the
                            // collective so a killed rank never half-joins.
                            let mut corrupt = false;
                            if let Some(inj) = injector {
                                corrupt = inj.before_step(attempt, rank, epoch, step, events);
                            }
                            // Shard the global batch by rank (block split).
                            let per = global_chunk.len().div_ceil(world);
                            let lo = (rank * per).min(global_chunk.len());
                            let hi = ((rank + 1) * per).min(global_chunk.len());
                            let shard = &global_chunk[lo..hi];
                            let shard_weight = shard.len() as f64 / global_chunk.len() as f64;

                            // The uncorrupted local gradient and its weight,
                            // kept so a corrupted exchange can be retried.
                            let mut local_grad: Option<(Vec<f32>, f32)> = None;
                            if shard.is_empty() {
                                // Rank has no samples this batch; contribute
                                // zero gradients to stay collective.
                                flat.iter_mut().for_each(|v| *v = 0.0);
                            } else {
                                let xb = x.gather_rows(shard);
                                let yb = y.gather_rows(shard);
                                let pred = model.forward(&xb, true);
                                let (loss, grad) = config.loss.compute(&pred, &yb);
                                // Rank-0's shard loss estimates the global
                                // batch loss directly (shards are i.i.d.).
                                epoch_loss += loss;
                                model.backward(&grad);
                                // Weight local mean-gradient by shard share
                                // so the allreduce mean equals the global
                                // batch gradient.
                                let g = model.flatten_grads();
                                let w = (shard_weight * world as f64) as f32;
                                for (dst, &src) in flat.iter_mut().zip(&g) {
                                    *dst = src * w;
                                }
                                local_grad = Some((g, w));
                            }
                            if let Some(inj) = injector {
                                inj.scan_gradient(
                                    attempt,
                                    rank,
                                    epoch,
                                    step,
                                    corrupt,
                                    &local_grad,
                                    &mut flat,
                                    events,
                                );
                            }
                            // Lossy compression happens on the local
                            // gradient before the (exact) allreduce — the
                            // mean of decompressed gradients is what a
                            // sparse/quantized collective would deliver.
                            match config.compression {
                                GradCompression::None => {
                                    wire_bytes += flat.len() * 4;
                                }
                                GradCompression::TopK { .. } => {
                                    let msg = topk
                                        .as_mut()
                                        // dd-lint: allow(error-policy/expect) -- constructed above whenever compression is TopK
                                        .expect("compressor initialized")
                                        .compress(&flat);
                                    wire_bytes += msg.wire_bytes();
                                    flat.copy_from_slice(&msg.decompress());
                                }
                                GradCompression::Int8 => {
                                    let msg = quantize_gradient(&flat);
                                    wire_bytes += msg.wire_bytes();
                                    flat.copy_from_slice(&msg.decompress());
                                }
                            }
                            // The comm span covers the whole collective,
                            // including time blocked on slow peers — so
                            // straggler wait shows up as comm, exactly as
                            // the hpcsim model accounts for it.
                            let comm = dd_obs::span_phase("allreduce", dd_obs::Phase::Comm);
                            let sent = member.allreduce_mean(&mut flat);
                            dd_obs::hist_record("allreduce_seconds", comm.finish());
                            if dd_obs::is_enabled() {
                                dd_obs::counter_add("bytes_allreduced", sent as u64);
                                let per_rank = format!("bytes_allreduced_rank{rank}");
                                dd_obs::counter_add(&per_rank, sent as u64);
                            }
                            bytes_sent += sent;
                            model.load_grads(&flat);
                            model.step_with(&mut opt, 1.0);
                            batches += 1;
                        }
                        losses.push(epoch_loss / batches.max(1) as f64);
                    }
                    (losses, model.flatten_params(), opt.export_state(), bytes_sent, wire_bytes)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            results[i] = Some(h.join().map_err(panic_message));
        }
    });

    // A crash cascades around the ring as "ring peer disconnected" panics;
    // report the injected fail-stop rank when one is identifiable, else the
    // first panicked rank.
    let mut first_panic = None;
    for (rank, res) in results.iter().enumerate() {
        if let Some(Err(msg)) = res {
            if msg.contains(CRASH_MARKER) {
                return Err(DataParallelError::ReplicaPanicked { rank });
            }
            if first_panic.is_none() {
                first_panic = Some(rank);
            }
        }
    }
    if let Some(rank) = first_panic {
        return Err(DataParallelError::ReplicaPanicked { rank });
    }

    let (losses0, params0, opt0, bytes0, wire0) =
        // dd-lint: allow(error-policy/expect) -- every rank is Some(Ok) after the panic scan above
        results[0].take().expect("rank 0 result").expect("rank 0 ok");
    // Replicas must agree exactly: same inputs, same reduced gradients, same
    // optimizer arithmetic.
    for (r, res) in results.iter().enumerate().skip(1) {
        let (_, params, _, _, _) =
            // dd-lint: allow(error-policy/expect) -- every rank is Some(Ok) after the panic scan above
            res.as_ref().expect("missing rank result").as_ref().expect("rank ok");
        assert_eq!(&params0, params, "replica {r} diverged from rank 0");
    }

    Ok(SegmentOutput {
        losses: losses0,
        params: params0,
        opt: opt0,
        bytes_sent: bytes0,
        wire_bytes: wire0,
    })
}

/// Train `spec` on `(x, y)` with synchronous data parallelism.
///
/// `y` is the already-materialized target matrix (one-hot for
/// classification). Configuration and shape problems come back as typed
/// [`DataParallelError`] values; a replica panic surfaces as
/// [`DataParallelError::ReplicaPanicked`] instead of tearing down the
/// caller. For runs that must *survive* faults, see
/// [`crate::fault::train_data_parallel_ft`].
pub fn train_data_parallel(
    spec: &ModelSpec,
    x: &Matrix,
    y: &Matrix,
    config: &DataParallelConfig,
) -> Result<DataParallelReport, DataParallelError> {
    config.validate(x, y)?;
    spec.validate().map_err(|e| DataParallelError::InvalidSpec(e.to_string()))?;
    // Single-clock policy: the run times itself through a dd-obs span, so
    // DataParallelReport::seconds and any exported trace share one clock.
    let run_span = dd_obs::span("dp_train");
    let schedule = build_schedule(x.rows(), config.epochs, config.seed);
    let events = Mutex::new(Vec::new());
    let seg = run_segment(
        spec,
        x,
        y,
        config,
        config.world,
        &schedule.orders,
        0..config.epochs,
        None,
        None,
        0,
        &events,
    )?;
    Ok(DataParallelReport {
        epoch_losses: seg.losses,
        final_params: seg.params,
        bytes_sent_per_rank: seg.bytes_sent,
        compressed_wire_bytes: seg.wire_bytes,
        seconds: run_span.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::Activation;

    fn toy_problem(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = Rng64::new(seed);
        let x = Matrix::randn(n, 3, 0.0, 1.0, &mut rng);
        let y = Matrix::from_fn(n, 1, |i, _| x.get(i, 0) - 2.0 * x.get(i, 1) + 0.5 * x.get(i, 2));
        (x, y)
    }

    fn spec() -> ModelSpec {
        ModelSpec::mlp(3, &[8], 1, Activation::Tanh)
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = toy_problem(256, 1);
        let report = train_data_parallel(
            &spec(),
            &x,
            &y,
            &DataParallelConfig { epochs: 20, ..Default::default() },
        )
        .expect("trains");
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < 0.3 * first, "{first} -> {last}");
    }

    #[test]
    fn equivalent_to_single_replica() {
        // Same schedule, same seeds: world=4 must produce (nearly) the same
        // parameters as world=1. Differences come only from float summation
        // order in the allreduce, so a tight tolerance applies.
        let (x, y) = toy_problem(128, 2);
        let base = DataParallelConfig {
            epochs: 3,
            global_batch: 32,
            optimizer: OptimizerConfig::sgd(0.05),
            ..Default::default()
        };
        let single =
            train_data_parallel(&spec(), &x, &y, &DataParallelConfig { world: 1, ..base.clone() })
                .expect("trains");
        let multi = train_data_parallel(&spec(), &x, &y, &DataParallelConfig { world: 4, ..base })
            .expect("trains");
        let max_diff = single
            .final_params
            .iter()
            .zip(&multi.final_params)
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(max_diff < 1e-3, "single vs multi diverged by {max_diff}");
    }

    #[test]
    fn replicas_stay_bitwise_identical() {
        // The assert inside run_segment verifies this; reaching the end
        // without panic is the test.
        let (x, y) = toy_problem(96, 3);
        let _ = train_data_parallel(
            &spec(),
            &x,
            &y,
            &DataParallelConfig { world: 3, epochs: 2, ..Default::default() },
        )
        .expect("trains");
    }

    #[test]
    fn bytes_sent_scale_with_steps_and_params() {
        let (x, y) = toy_problem(64, 4);
        let cfg =
            DataParallelConfig { world: 4, epochs: 2, global_batch: 32, ..Default::default() };
        let report = train_data_parallel(&spec(), &x, &y, &cfg).expect("trains");
        let mut model = spec().build(1, Precision::F32).unwrap();
        let params = model.flatten_params().len();
        let steps = 2 * (64usize).div_ceil(32);
        // Ring sends 2(p-1)/p of the buffer per allreduce.
        let per_step = 2 * (4 - 1) * (params / 4) * 4;
        let expect = steps * per_step;
        // Segment rounding makes this approximate.
        let ratio = report.bytes_sent_per_rank as f64 / expect as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_end_to_end() {
        let (x, y) = toy_problem(64, 5);
        let cfg = DataParallelConfig { world: 2, epochs: 2, ..Default::default() };
        let a = train_data_parallel(&spec(), &x, &y, &cfg).expect("trains");
        let b = train_data_parallel(&spec(), &x, &y, &cfg).expect("trains");
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }

    #[test]
    fn compressed_training_still_learns() {
        let (x, y) = toy_problem(256, 9);
        for compression in [GradCompression::Int8, GradCompression::TopK { fraction: 0.25 }] {
            let report = train_data_parallel(
                &spec(),
                &x,
                &y,
                &DataParallelConfig { epochs: 25, compression, ..Default::default() },
            )
            .expect("trains");
            let first = report.epoch_losses[0];
            let last = *report.epoch_losses.last().unwrap();
            assert!(last < 0.5 * first, "{}: loss {first} -> {last}", compression.name());
        }
    }

    #[test]
    fn compression_reduces_wire_bytes() {
        let (x, y) = toy_problem(64, 10);
        let run = |compression| {
            train_data_parallel(
                &spec(),
                &x,
                &y,
                &DataParallelConfig { epochs: 2, compression, ..Default::default() },
            )
            .expect("trains")
            .compressed_wire_bytes
        };
        let dense = run(GradCompression::None);
        let int8 = run(GradCompression::Int8);
        let topk = run(GradCompression::TopK { fraction: 0.05 });
        assert!(int8 * 3 < dense, "int8 {int8} vs dense {dense}");
        assert!(topk * 4 < dense, "topk {topk} vs dense {dense}");
    }

    #[test]
    fn world_larger_than_batch_is_a_typed_error() {
        let (x, y) = toy_problem(16, 6);
        let err = train_data_parallel(
            &spec(),
            &x,
            &y,
            &DataParallelConfig { world: 8, global_batch: 4, ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, DataParallelError::WorldExceedsBatch { world: 8, global_batch: 4 });
        assert!(err.to_string().contains("exceeds global batch"));
    }

    #[test]
    fn config_validation_catches_world_zero_and_shape_mismatch() {
        let (x, y) = toy_problem(16, 7);
        let err = train_data_parallel(
            &spec(),
            &x,
            &y,
            &DataParallelConfig { world: 0, ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, DataParallelError::WorldZero);

        let (x2, _) = toy_problem(8, 8);
        let err =
            train_data_parallel(&spec(), &x2, &y, &DataParallelConfig::default()).unwrap_err();
        assert_eq!(err, DataParallelError::ShapeMismatch { x_rows: 8, y_rows: 16 });
    }
}
