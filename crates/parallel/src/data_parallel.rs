//! Synchronous data-parallel SGD over real threads.
//!
//! `world` replicas each hold a copy of the model, compute gradients on a
//! disjoint shard of every minibatch, average them with the real ring
//! allreduce from [`crate::allreduce`], and apply identical optimizer
//! updates — the exact algorithm whose cost `dd-hpcsim` models analytically.
//! A correctness theorem worth testing (and we do): with full-batch shards
//! and matching seeds, data-parallel training is *mathematically equivalent*
//! to single-replica training on the concatenated batch.

use crate::allreduce::ring;
use crate::compression::{quantize_gradient, TopKCompressor};
use dd_nn::{Loss, ModelSpec, Optimizer, OptimizerConfig};
use dd_tensor::{Matrix, Precision, Rng64};
use serde::{Deserialize, Serialize};

/// Lossy gradient exchange applied before the allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GradCompression {
    /// Exchange dense f32 gradients (exact).
    None,
    /// Top-k sparsification with per-rank error feedback.
    TopK {
        /// Fraction of entries kept each step.
        fraction: f64,
    },
    /// Symmetric 8-bit quantization.
    Int8,
}

impl GradCompression {
    /// Table label.
    pub fn name(self) -> String {
        match self {
            GradCompression::None => "dense-f32".into(),
            GradCompression::TopK { fraction } => format!("top-{:.0}%", fraction * 100.0),
            GradCompression::Int8 => "int8".into(),
        }
    }
}

/// Configuration for the data-parallel trainer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataParallelConfig {
    /// Number of replicas (threads).
    pub world: usize,
    /// Global minibatch size (split evenly across replicas).
    pub global_batch: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Optimizer applied identically on every replica.
    pub optimizer: OptimizerConfig,
    /// Loss function.
    pub loss: Loss,
    /// Shuffle seed.
    pub seed: u64,
    /// Numeric precision for all replicas.
    pub precision: Precision,
    /// Gradient compression applied before the allreduce.
    pub compression: GradCompression,
}

impl Default for DataParallelConfig {
    fn default() -> Self {
        DataParallelConfig {
            world: 4,
            global_batch: 64,
            epochs: 5,
            optimizer: OptimizerConfig::sgd(0.05),
            loss: Loss::Mse,
            seed: 0,
            precision: Precision::F32,
            compression: GradCompression::None,
        }
    }
}

/// Outcome of a data-parallel run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataParallelReport {
    /// Rank 0's shard-weighted training loss per epoch (an unbiased sample
    /// of the global loss; exact when world = 1).
    pub epoch_losses: Vec<f64>,
    /// Final flattened parameters (identical on every replica; asserted).
    pub final_params: Vec<f32>,
    /// Total bytes each rank sent through the allreduce ring.
    pub bytes_sent_per_rank: usize,
    /// Wire bytes each rank's gradients would occupy after compression
    /// (equals the dense volume when compression is off).
    pub compressed_wire_bytes: usize,
    /// Wall-clock seconds of the whole run.
    pub seconds: f64,
}

/// Train `spec` on `(x, y)` with synchronous data parallelism.
///
/// `y` is the already-materialized target matrix (one-hot for
/// classification). Panics if the world size exceeds the global batch.
pub fn train_data_parallel(
    spec: &ModelSpec,
    x: &Matrix,
    y: &Matrix,
    config: &DataParallelConfig,
) -> DataParallelReport {
    assert!(config.world >= 1, "world must be >= 1");
    assert!(
        config.world <= config.global_batch,
        "world {} exceeds global batch {}",
        config.world,
        config.global_batch
    );
    assert_eq!(x.rows(), y.rows(), "feature/target mismatch");
    let start = std::time::Instant::now();
    let n = x.rows();
    let world = config.world;

    // Pre-compute the shared minibatch schedule: every replica sees the same
    // global batches, sharded by rank. One schedule per epoch.
    let mut order_rng = Rng64::new(config.seed);
    let schedule: Vec<Vec<usize>> = (0..config.epochs)
        .map(|_| {
            let mut idx: Vec<usize> = (0..n).collect();
            order_rng.shuffle(&mut idx);
            idx
        })
        .collect();

    let members = ring(world);
    let mut results: Vec<Option<(Vec<f64>, Vec<f32>, usize, usize)>> = (0..world).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = members
            .into_iter()
            .map(|member| {
                let schedule = &schedule;
                scope.spawn(move || {
                    let rank = member.rank();
                    // Same seed on every replica: identical initial weights
                    // and identical dropout streams, which keeps replicas in
                    // lockstep after identical updates.
                    let mut model = spec
                        .build(config.seed.wrapping_add(1), config.precision)
                        .expect("invalid model spec");
                    let mut opt: Optimizer = config.optimizer.build();
                    let mut losses = Vec::with_capacity(config.epochs);
                    let mut bytes_sent = 0usize;
                    let mut wire_bytes = 0usize;
                    let mut flat = vec![0f32; model.param_count()];
                    let mut topk = match config.compression {
                        GradCompression::TopK { fraction } => {
                            Some(TopKCompressor::new(fraction, flat.len()))
                        }
                        _ => None,
                    };

                    for epoch_order in schedule {
                        let mut epoch_loss = 0f64;
                        let mut batches = 0usize;
                        for global_chunk in epoch_order.chunks(config.global_batch) {
                            // Shard the global batch by rank (block split).
                            let per = global_chunk.len().div_ceil(world);
                            let lo = (rank * per).min(global_chunk.len());
                            let hi = ((rank + 1) * per).min(global_chunk.len());
                            let shard = &global_chunk[lo..hi];
                            let shard_weight = shard.len() as f64 / global_chunk.len() as f64;

                            if shard.is_empty() {
                                // Rank has no samples this batch; contribute
                                // zero gradients to stay collective.
                                flat.iter_mut().for_each(|v| *v = 0.0);
                            } else {
                                let xb = x.gather_rows(shard);
                                let yb = y.gather_rows(shard);
                                let pred = model.forward(&xb, true);
                                let (loss, grad) = config.loss.compute(&pred, &yb);
                                // Rank-0's shard loss estimates the global
                                // batch loss directly (shards are i.i.d.).
                                epoch_loss += loss;
                                model.backward(&grad);
                                // Weight local mean-gradient by shard share
                                // so the allreduce mean equals the global
                                // batch gradient.
                                let g = model.flatten_grads();
                                let w = (shard_weight * world as f64) as f32;
                                for (dst, &src) in flat.iter_mut().zip(&g) {
                                    *dst = src * w;
                                }
                            }
                            // Lossy compression happens on the local
                            // gradient before the (exact) allreduce — the
                            // mean of decompressed gradients is what a
                            // sparse/quantized collective would deliver.
                            match config.compression {
                                GradCompression::None => {
                                    wire_bytes += flat.len() * 4;
                                }
                                GradCompression::TopK { .. } => {
                                    let msg = topk
                                        .as_mut()
                                        .expect("compressor initialized")
                                        .compress(&flat);
                                    wire_bytes += msg.wire_bytes();
                                    flat.copy_from_slice(&msg.decompress());
                                }
                                GradCompression::Int8 => {
                                    let msg = quantize_gradient(&flat);
                                    wire_bytes += msg.wire_bytes();
                                    flat.copy_from_slice(&msg.decompress());
                                }
                            }
                            bytes_sent += member.allreduce_mean(&mut flat);
                            model.load_grads(&flat);
                            model.step_with(&mut opt, 1.0);
                            batches += 1;
                        }
                        losses.push(epoch_loss / batches.max(1) as f64);
                    }
                    (losses, model.flatten_params(), bytes_sent, wire_bytes)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            results[i] = Some(h.join().expect("replica thread panicked"));
        }
    });

    let (losses0, params0, bytes0, wire0) = results[0].take().expect("rank 0 result");
    // Replicas must agree exactly: same inputs, same reduced gradients, same
    // optimizer arithmetic.
    for (r, res) in results.iter().enumerate().skip(1) {
        let (_, params, _, _) = res.as_ref().expect("missing rank result");
        assert_eq!(&params0, params, "replica {r} diverged from rank 0");
    }

    DataParallelReport {
        epoch_losses: losses0,
        final_params: params0,
        bytes_sent_per_rank: bytes0,
        compressed_wire_bytes: wire0,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::Activation;

    fn toy_problem(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = Rng64::new(seed);
        let x = Matrix::randn(n, 3, 0.0, 1.0, &mut rng);
        let y = Matrix::from_fn(n, 1, |i, _| {
            x.get(i, 0) - 2.0 * x.get(i, 1) + 0.5 * x.get(i, 2)
        });
        (x, y)
    }

    fn spec() -> ModelSpec {
        ModelSpec::mlp(3, &[8], 1, Activation::Tanh)
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = toy_problem(256, 1);
        let report = train_data_parallel(
            &spec(),
            &x,
            &y,
            &DataParallelConfig { epochs: 20, ..Default::default() },
        );
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < 0.3 * first, "{first} -> {last}");
    }

    #[test]
    fn equivalent_to_single_replica() {
        // Same schedule, same seeds: world=4 must produce (nearly) the same
        // parameters as world=1. Differences come only from float summation
        // order in the allreduce, so a tight tolerance applies.
        let (x, y) = toy_problem(128, 2);
        let base = DataParallelConfig {
            epochs: 3,
            global_batch: 32,
            optimizer: OptimizerConfig::sgd(0.05),
            ..Default::default()
        };
        let single = train_data_parallel(&spec(), &x, &y, &DataParallelConfig { world: 1, ..base.clone() });
        let multi = train_data_parallel(&spec(), &x, &y, &DataParallelConfig { world: 4, ..base });
        let max_diff = single
            .final_params
            .iter()
            .zip(&multi.final_params)
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(max_diff < 1e-3, "single vs multi diverged by {max_diff}");
    }

    #[test]
    fn replicas_stay_bitwise_identical() {
        // The assert inside train_data_parallel verifies this; reaching the
        // end without panic is the test.
        let (x, y) = toy_problem(96, 3);
        let _ = train_data_parallel(
            &spec(),
            &x,
            &y,
            &DataParallelConfig { world: 3, epochs: 2, ..Default::default() },
        );
    }

    #[test]
    fn bytes_sent_scale_with_steps_and_params() {
        let (x, y) = toy_problem(64, 4);
        let cfg = DataParallelConfig { world: 4, epochs: 2, global_batch: 32, ..Default::default() };
        let report = train_data_parallel(&spec(), &x, &y, &cfg);
        let mut model = spec().build(1, Precision::F32).unwrap();
        let params = model.flatten_params().len();
        let steps = 2 * (64usize).div_ceil(32);
        // Ring sends 2(p-1)/p of the buffer per allreduce.
        let per_step = 2 * (4 - 1) * (params / 4) * 4;
        let expect = steps * per_step;
        // Segment rounding makes this approximate.
        let ratio = report.bytes_sent_per_rank as f64 / expect as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_end_to_end() {
        let (x, y) = toy_problem(64, 5);
        let cfg = DataParallelConfig { world: 2, epochs: 2, ..Default::default() };
        let a = train_data_parallel(&spec(), &x, &y, &cfg);
        let b = train_data_parallel(&spec(), &x, &y, &cfg);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }

    #[test]
    fn compressed_training_still_learns() {
        let (x, y) = toy_problem(256, 9);
        for compression in [
            GradCompression::Int8,
            GradCompression::TopK { fraction: 0.25 },
        ] {
            let report = train_data_parallel(
                &spec(),
                &x,
                &y,
                &DataParallelConfig { epochs: 25, compression, ..Default::default() },
            );
            let first = report.epoch_losses[0];
            let last = *report.epoch_losses.last().unwrap();
            assert!(
                last < 0.5 * first,
                "{}: loss {first} -> {last}",
                compression.name()
            );
        }
    }

    #[test]
    fn compression_reduces_wire_bytes() {
        let (x, y) = toy_problem(64, 10);
        let run = |compression| {
            train_data_parallel(
                &spec(),
                &x,
                &y,
                &DataParallelConfig { epochs: 2, compression, ..Default::default() },
            )
            .compressed_wire_bytes
        };
        let dense = run(GradCompression::None);
        let int8 = run(GradCompression::Int8);
        let topk = run(GradCompression::TopK { fraction: 0.05 });
        assert!(int8 * 3 < dense, "int8 {int8} vs dense {dense}");
        assert!(topk * 4 < dense, "topk {topk} vs dense {dense}");
    }

    #[test]
    #[should_panic(expected = "exceeds global batch")]
    fn world_larger_than_batch_panics() {
        let (x, y) = toy_problem(16, 6);
        let _ = train_data_parallel(
            &spec(),
            &x,
            &y,
            &DataParallelConfig { world: 8, global_batch: 4, ..Default::default() },
        );
    }
}
