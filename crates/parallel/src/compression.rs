//! Gradient compression for bandwidth-starved fabrics.
//!
//! The abstract anticipates DNNs that "rely less on dense communication
//! patterns". Two standard mechanisms are implemented: top-k sparsification
//! with error feedback (memory of the residual re-injected next step) and
//! uniform 8-bit quantization — both reduce allreduce bytes at a measurable
//! accuracy cost, which the ablation bench quantifies.

use dd_tensor::precision;
use serde::{Deserialize, Serialize};

/// A compressed gradient message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Compressed {
    /// Indices and values of the k largest-magnitude entries.
    TopK {
        /// Original dense length.
        len: usize,
        /// Kept indices.
        indices: Vec<u32>,
        /// Kept values.
        values: Vec<f32>,
    },
    /// Symmetric int8 quantization of the full vector.
    Int8 {
        /// Quantized codes.
        codes: Vec<i8>,
        /// Dequantization scale.
        scale: f32,
    },
}

impl Compressed {
    /// Wire size in bytes (indices at 4 B, values at 4 B, codes at 1 B).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Compressed::TopK { indices, values, .. } => 4 * indices.len() + 4 * values.len() + 8,
            Compressed::Int8 { codes, .. } => codes.len() + 4,
        }
    }

    /// Decompress into a dense vector.
    pub fn decompress(&self) -> Vec<f32> {
        match self {
            Compressed::TopK { len, indices, values } => {
                let mut out = vec![0f32; *len];
                for (&i, &v) in indices.iter().zip(values) {
                    out[i as usize] = v;
                }
                out
            }
            Compressed::Int8 { codes, scale } => {
                let mut out = vec![0f32; codes.len()];
                precision::dequantize_i8(codes, *scale, &mut out);
                out
            }
        }
    }
}

/// Top-k compressor with error feedback.
pub struct TopKCompressor {
    k_fraction: f64,
    residual: Vec<f32>,
}

impl TopKCompressor {
    /// Keep the top `k_fraction` (0 < f ≤ 1) of entries by magnitude.
    pub fn new(k_fraction: f64, len: usize) -> Self {
        assert!(
            k_fraction > 0.0 && k_fraction <= 1.0,
            "k fraction must be in (0, 1], got {k_fraction}"
        );
        TopKCompressor { k_fraction, residual: vec![0f32; len] }
    }

    /// Compress a gradient, adding back the stored residual first and
    /// retaining what was dropped as the new residual.
    pub fn compress(&mut self, grad: &[f32]) -> Compressed {
        assert_eq!(grad.len(), self.residual.len(), "gradient length changed");
        let n = grad.len();
        // dd-lint: allow(lossy-cast/float-to-int) -- top-k size: ceil'd fraction clamped to [1, n]
        let k = ((n as f64 * self.k_fraction).ceil() as usize).clamp(1, n);
        // Corrected gradient = grad + residual.
        let corrected: Vec<f32> = grad.iter().zip(&self.residual).map(|(&g, &r)| g + r).collect();
        // Select k largest by |value| via partial sort of indices.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            corrected[b as usize]
                .abs()
                .partial_cmp(&corrected[a as usize].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut kept = idx[..k].to_vec();
        kept.sort_unstable();
        let values: Vec<f32> = kept.iter().map(|&i| corrected[i as usize]).collect();
        // New residual: everything not sent.
        self.residual.copy_from_slice(&corrected);
        for &i in &kept {
            self.residual[i as usize] = 0.0;
        }
        Compressed::TopK { len: n, indices: kept, values }
    }

    /// Norm of the accumulated residual (diagnostic).
    pub fn residual_norm(&self) -> f32 {
        self.residual.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }
}

/// Stateless int8 gradient quantizer.
pub fn quantize_gradient(grad: &[f32]) -> Compressed {
    let (codes, scale) = precision::quantize_i8(grad);
    Compressed::Int8 { codes, scale }
}

/// Compression ratio achieved versus dense f32.
pub fn compression_ratio(dense_len: usize, compressed: &Compressed) -> f64 {
    (dense_len * 4) as f64 / compressed.wire_bytes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_tensor::Rng64;

    #[test]
    fn topk_keeps_largest() {
        let mut c = TopKCompressor::new(0.25, 8);
        let grad = [0.1f32, -5.0, 0.2, 3.0, -0.05, 0.0, 0.3, 1.0];
        let msg = c.compress(&grad);
        let dense = msg.decompress();
        // 2 of 8 kept: -5 and 3.
        assert_eq!(dense[1], -5.0);
        assert_eq!(dense[3], 3.0);
        assert_eq!(dense.iter().filter(|&&v| v != 0.0).count(), 2);
    }

    #[test]
    fn error_feedback_reinjects_dropped_mass() {
        let mut c = TopKCompressor::new(0.25, 4);
        // Repeatedly send the same gradient; small entries accumulate in the
        // residual until they win the top-k selection.
        let grad = [1.0f32, 0.4, 0.0, 0.0];
        let first = c.compress(&grad).decompress();
        assert_eq!(first, vec![1.0, 0.0, 0.0, 0.0]);
        let second = c.compress(&grad).decompress();
        // Residual 0.4 + new 0.4 = 0.8 still < 1.0... third round: 1.2 > 1.0.
        let third = c.compress(&grad).decompress();
        let total: f32 = [first, second, third].iter().map(|v| v[1]).sum();
        assert!(total >= 1.2 - 1e-6, "dropped mass must eventually ship, got {total}");
    }

    #[test]
    fn topk_mass_conservation_is_exact() {
        // Error-feedback invariant: after T rounds of the same gradient,
        // Σ shipped + residual = T·grad, exactly (up to float rounding).
        let mut rng = Rng64::new(1);
        let grad: Vec<f32> = (0..100).map(|_| rng.normal(0.0, 1.0) as f32).collect();
        let mut c = TopKCompressor::new(0.1, 100);
        let rounds = 50;
        let mut shipped = vec![0f32; 100];
        for _ in 0..rounds {
            let msg = c.compress(&grad);
            for (s, v) in shipped.iter_mut().zip(msg.decompress()) {
                *s += v;
            }
        }
        for (i, (s, &g)) in shipped.iter().zip(&grad).enumerate() {
            let total = s + c.residual[i];
            let want = rounds as f32 * g;
            assert!(
                (total - want).abs() <= 1e-3 * want.abs().max(1.0),
                "entry {i}: shipped+residual {total} vs {want}"
            );
        }
        // And the residual itself stays bounded — a few gradient magnitudes,
        // not O(rounds).
        let max_res = c.residual.iter().fold(0f32, |a, &v| a.max(v.abs()));
        let max_g = grad.iter().fold(0f32, |a, &v| a.max(v.abs()));
        assert!(max_res < 10.0 * max_g, "residual {max_res} vs grad scale {max_g}");
    }

    #[test]
    fn int8_roundtrip_close() {
        let mut rng = Rng64::new(2);
        let grad: Vec<f32> = (0..256).map(|_| rng.normal(0.0, 0.1) as f32).collect();
        let msg = quantize_gradient(&grad);
        let back = msg.decompress();
        let max_abs = grad.iter().fold(0f32, |a, &v| a.max(v.abs()));
        for (&g, &b) in grad.iter().zip(&back) {
            assert!((g - b).abs() <= max_abs / 127.0 + 1e-7);
        }
    }

    #[test]
    fn wire_bytes_and_ratio() {
        let mut c = TopKCompressor::new(0.01, 10_000);
        let grad = vec![1.0f32; 10_000];
        let msg = c.compress(&grad);
        let ratio = compression_ratio(10_000, &msg);
        assert!(ratio > 40.0, "1% top-k should compress ~50x, got {ratio}");

        let q = quantize_gradient(&grad);
        let qr = compression_ratio(10_000, &q);
        assert!((qr - 4.0).abs() < 0.1, "int8 is ~4x, got {qr}");
    }

    #[test]
    #[should_panic(expected = "k fraction")]
    fn zero_fraction_rejected() {
        let _ = TopKCompressor::new(0.0, 10);
    }
}
