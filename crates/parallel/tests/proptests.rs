//! Property-based tests for the parallel engines: the ring allreduce must
//! equal the sequential reduction for any world size and buffer length, and
//! compression must respect its accounting invariants.

use dd_parallel::allreduce::{ring, sequential_sum};
use dd_parallel::{quantize_gradient, Compressed, TopKCompressor};
use dd_tensor::Rng64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ring_allreduce_equals_sequential_sum(
        world in 1usize..8,
        len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|_| (0..len).map(|_| rng.normal(0.0, 1.0) as f32).collect())
            .collect();
        let expect = sequential_sum(&inputs);
        let members = ring(world);
        let mut outputs = inputs.clone();
        std::thread::scope(|scope| {
            for (m, buf) in members.into_iter().zip(outputs.iter_mut()) {
                scope.spawn(move || {
                    m.allreduce(buf);
                });
            }
        });
        for out in &outputs {
            for (&got, &want) in out.iter().zip(&expect) {
                prop_assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "got {got} want {want}"
                );
            }
        }
        // All ranks bitwise identical.
        for r in 1..world {
            prop_assert_eq!(&outputs[0], &outputs[r]);
        }
    }

    #[test]
    fn topk_compression_keeps_exactly_k(
        values in proptest::collection::vec(-10.0f32..10.0, 4..128),
        frac in 0.01f64..1.0,
    ) {
        let n = values.len();
        let mut c = TopKCompressor::new(frac, n);
        let msg = c.compress(&values);
        if let Compressed::TopK { indices, values: kept, len } = &msg {
            let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
            prop_assert_eq!(indices.len(), k);
            prop_assert_eq!(kept.len(), k);
            prop_assert_eq!(*len, n);
            // Indices strictly increasing and in range.
            for w in indices.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(indices.iter().all(|&i| (i as usize) < n));
        } else {
            prop_assert!(false, "wrong variant");
        }
    }

    #[test]
    fn topk_decompress_roundtrips_kept_entries(
        values in proptest::collection::vec(-10.0f32..10.0, 4..64),
    ) {
        let n = values.len();
        let mut c = TopKCompressor::new(0.25, n);
        let msg = c.compress(&values);
        let dense = msg.decompress();
        prop_assert_eq!(dense.len(), n);
        // Every nonzero entry of the decompressed vector equals the
        // (residual-corrected, first-round = raw) input at that index.
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                prop_assert_eq!(v, values[i]);
            }
        }
    }

    #[test]
    fn int8_wire_size_is_len_plus_scale(
        values in proptest::collection::vec(-10.0f32..10.0, 1..256),
    ) {
        let msg = quantize_gradient(&values);
        prop_assert_eq!(msg.wire_bytes(), values.len() + 4);
        prop_assert_eq!(msg.decompress().len(), values.len());
    }
}
