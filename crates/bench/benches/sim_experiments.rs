//! End-to-end regeneration cost of the simulator-only experiment tables
//! (E3, E4, E5, E7) plus the underlying collective cost models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_hpcsim::{allreduce_time, AllreduceAlgo, Fabric};
use deepdriver_core::experiments::{e3_parallelism, e4_memory, e5_nvram, e7_hybrid};
use deepdriver_core::report::Scale;
use std::hint::black_box;

fn bench_experiment_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_tables_smoke");
    group.sample_size(20);
    group.bench_function("e3_parallelism", |b| {
        b.iter(|| black_box(e3_parallelism::run(Scale::Smoke, 1)))
    });
    group.bench_function("e4_memory", |b| b.iter(|| black_box(e4_memory::run(Scale::Smoke, 1))));
    group.bench_function("e5_nvram", |b| b.iter(|| black_box(e5_nvram::run(Scale::Smoke, 1))));
    group.bench_function("e7_hybrid", |b| b.iter(|| black_box(e7_hybrid::run(Scale::Smoke, 1))));
    group.finish();
}

fn bench_collective_models(c: &mut Criterion) {
    let fabric = Fabric::infiniband_2017();
    let mut group = c.benchmark_group("allreduce_cost_model");
    for p in [8usize, 512, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(allreduce_time(black_box(&fabric), AllreduceAlgo::Auto, 2e8, p)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiment_tables, bench_collective_models);
criterion_main!(benches);
