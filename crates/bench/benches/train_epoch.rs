//! E2/E8 kernel bench: one full training epoch of the dense driver-workload
//! network, single-threaded versus data-parallel over threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_nn::{Activation, Loss, ModelSpec, OptimizerConfig, TrainConfig, Trainer};
use dd_parallel::{train_data_parallel, DataParallelConfig};
use dd_tensor::{Matrix, Precision, Rng64};
use std::hint::black_box;

fn data(n: usize) -> (Matrix, Matrix) {
    let mut rng = Rng64::new(1);
    let x = Matrix::randn(n, 64, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(n, 1, |i, _| x.row(i).iter().sum::<f32>().tanh());
    (x, y)
}

fn bench_single_epoch(c: &mut Criterion) {
    let (x, y) = data(1024);
    let spec = ModelSpec::mlp(64, &[128, 64], 1, Activation::Relu);
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1024));
    group.bench_function("single_thread", |b| {
        b.iter_batched(
            || {
                (
                    spec.build(1, Precision::F32).unwrap(),
                    Trainer::new(TrainConfig {
                        epochs: 1,
                        batch_size: 64,
                        optimizer: OptimizerConfig::adam(1e-3),
                        loss: Loss::Mse,
                        ..TrainConfig::default()
                    }),
                )
            },
            |(mut model, mut trainer)| {
                black_box(trainer.run_epoch(&mut model, &x, &y, 0)).unwrap();
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_data_parallel_epochs(c: &mut Criterion) {
    let (x, y) = data(1024);
    let spec = ModelSpec::mlp(64, &[128, 64], 1, Activation::Relu);
    let mut group = c.benchmark_group("data_parallel_epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1024));
    for world in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &w| {
            b.iter(|| {
                black_box(train_data_parallel(
                    &spec,
                    &x,
                    &y,
                    &DataParallelConfig {
                        world: w,
                        global_batch: 128,
                        epochs: 1,
                        ..Default::default()
                    },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_epoch, bench_data_parallel_epochs);
criterion_main!(benches);
