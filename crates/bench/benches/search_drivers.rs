//! E6 kernel bench: searcher overhead (propose + observe, objective cost
//! excluded via a trivial objective) — the scheduler must not be the
//! bottleneck when trials are cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_hypersearch::searchers::{
    EvolutionarySearch, GenerativeSearch, GridSearch, Hyperband, RandomSearch, SuccessiveHalving,
    SurrogateSearch,
};
use dd_hypersearch::{run_search, Config, SearchSpace, Searcher};
use std::hint::black_box;

fn space() -> SearchSpace {
    SearchSpace::new()
        .log_float("lr", 1e-5, 1e-1)
        .float("dropout", 0.0, 0.8)
        .int("width", 8, 256)
        .choice("act", &["relu", "tanh", "gelu"])
}

fn trivial_objective(c: &Config, _b: f64, _s: u64) -> f64 {
    (c.f64("lr").log10() + 3.0).powi(2) + c.f64("dropout")
}

fn searcher_by_name(name: &str) -> Box<dyn Searcher> {
    match name {
        "random" => Box::new(RandomSearch::new()),
        "grid" => Box::new(GridSearch::new(4)),
        "sha" => Box::new(SuccessiveHalving::new(9, 1.0 / 3.0, 3)),
        "hyperband" => Box::new(Hyperband::new(3, 2)),
        "evolutionary" => Box::new(EvolutionarySearch::new(12, 0.3)),
        "surrogate" => Box::new(SurrogateSearch::new(8)),
        "generative" => Box::new(GenerativeSearch::new(10)),
        other => panic!("unknown searcher {other}"),
    }
}

fn bench_searcher_overhead(c: &mut Criterion) {
    let sp = space();
    let mut group = c.benchmark_group("searcher_overhead_40_trials");
    group.sample_size(10);
    for name in ["random", "grid", "sha", "hyperband", "evolutionary", "surrogate", "generative"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &n| {
            b.iter(|| {
                let mut s = searcher_by_name(n);
                black_box(run_search(s.as_mut(), &sp, &trivial_objective, 40.0, 4, 1))
            });
        });
    }
    group.finish();
}

fn bench_space_operations(c: &mut Criterion) {
    let sp = space();
    let mut rng = dd_tensor::Rng64::new(1);
    let config = sp.sample(&mut rng);
    c.bench_function("space_sample", |b| {
        b.iter(|| black_box(sp.sample(&mut rng)));
    });
    c.bench_function("space_encode_decode", |b| {
        b.iter(|| {
            let e = sp.encode(black_box(&config));
            black_box(sp.decode(&e))
        });
    });
    c.bench_function("space_mutate", |b| {
        b.iter(|| black_box(sp.mutate(black_box(&config), 0.3, &mut rng)));
    });
}

criterion_group!(benches, bench_searcher_overhead, bench_space_operations);
criterion_main!(benches);
