//! E1 kernel bench: matrix multiplication under each emulated precision.
//!
//! Note: bf16/f16/int8 are *software emulated*, so they are slower than f32
//! here; the point of the bench is tracking the emulation overhead. The
//! speedups the paper anticipates are modelled by `dd-hpcsim` (see the E1
//! table), not measured on this CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_tensor::{matmul_prec, Matrix, Precision, Rng64};
use std::hint::black_box;

fn bench_matmul_precision(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let (m, k, n) = (128usize, 256usize, 128usize);
    let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
    let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
    let flops = 2 * m * k * n;

    let mut group = c.benchmark_group("matmul_precision");
    group.throughput(Throughput::Elements(flops as u64));
    for precision in Precision::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(precision), &precision, |bench, &p| {
            bench.iter(|| black_box(matmul_prec(black_box(&a), black_box(&b), p)));
        });
    }
    group.finish();
}

fn bench_matmul_sizes(c: &mut Criterion) {
    let mut rng = Rng64::new(2);
    let mut group = c.benchmark_group("matmul_f32_sizes");
    for &size in &[32usize, 128, 512] {
        let a = Matrix::randn(size, size, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(size, size, 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * size * size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| black_box(dd_tensor::matmul(black_box(&a), black_box(&b))));
        });
    }
    group.finish();
}

fn bench_backprop_orientations(c: &mut Criterion) {
    let mut rng = Rng64::new(3);
    let x = Matrix::randn(64, 512, 0.0, 1.0, &mut rng);
    let w = Matrix::randn(512, 256, 0.0, 1.0, &mut rng);
    let dy = Matrix::randn(64, 256, 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("matmul_orientations");
    group.bench_function("forward_nn", |b| {
        b.iter(|| black_box(dd_tensor::matmul(black_box(&x), black_box(&w))))
    });
    group.bench_function("grad_input_nt", |b| {
        b.iter(|| black_box(dd_tensor::matmul_nt(black_box(&dy), black_box(&w))))
    });
    group.bench_function("grad_weight_tn", |b| {
        b.iter(|| black_box(dd_tensor::matmul_tn(black_box(&x), black_box(&dy))))
    });
    group.finish();
}

criterion_group!(benches, bench_matmul_precision, bench_matmul_sizes, bench_backprop_orientations);
criterion_main!(benches);
