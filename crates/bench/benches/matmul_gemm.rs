//! E12 GEMM kernel bench: the seed naive kernel against the blocked kernel
//! on each backend and the fused int8 path, at 64/256/512 square sizes.
//!
//! This is the criterion-tracked counterpart of `exp-gemm` (which reports
//! achieved-fraction-of-roofline for the E12 table); throughput here is in
//! FLOPs (`Throughput::Elements` = 2·n³ per iteration), so criterion's
//! elements/sec readout is directly comparable across kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_tensor::kernel::{gemm_prec, simd_available, Backend, Orient};
use dd_tensor::matmul::seed;
use dd_tensor::{matmul_prec, Matrix, Precision, Rng64};
use std::hint::black_box;

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut rng = Rng64::new(0x6E33);
    let mut group = c.benchmark_group("matmul_gemm");
    group.sample_size(10);
    for &size in &[64usize, 256, 512] {
        let a = Matrix::randn(size, size, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(size, size, 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * size * size * size) as u64));

        group.bench_with_input(BenchmarkId::new("seed_naive_f32", size), &size, |bench, _| {
            bench.iter(|| black_box(seed::naive_f32(black_box(&a), black_box(&b))));
        });
        group.bench_with_input(BenchmarkId::new("blocked_scalar_f32", size), &size, |bench, _| {
            bench.iter(|| {
                black_box(gemm_prec(
                    black_box(&a),
                    black_box(&b),
                    Orient::Nn,
                    Precision::F32,
                    Backend::Scalar,
                ))
            });
        });
        if simd_available() {
            group.bench_with_input(
                BenchmarkId::new("blocked_simd_f32", size),
                &size,
                |bench, _| {
                    bench.iter(|| {
                        black_box(gemm_prec(
                            black_box(&a),
                            black_box(&b),
                            Orient::Nn,
                            Precision::F32,
                            Backend::Simd,
                        ))
                    });
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("fused_int8", size), &size, |bench, _| {
            bench.iter(|| black_box(matmul_prec(black_box(&a), black_box(&b), Precision::Int8)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_kernels);
criterion_main!(benches);
