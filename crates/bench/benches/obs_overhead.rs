//! dd-obs overhead bench: what instrumentation costs when it is off.
//!
//! The contract that lets the matmul/training hot paths stay instrumented
//! in production is "one relaxed atomic load per event while disabled".
//! These groups measure that claim directly:
//!
//! * `obs_disabled` — counter/span/hist calls against the disabled global
//!   registry, next to an uninstrumented baseline loop. The disabled cases
//!   must stay within noise of the baseline (<2% on a real workload; here
//!   the loop body is nothing *but* the instrumentation, so the absolute
//!   per-call cost — a few ns — is the number to read).
//! * `obs_enabled` — the same calls while recording, for the on/off ratio.
//! * `obs_matmul` — a real `matmul_prec` with the registry off vs on: the
//!   end-to-end check that FLOP accounting does not tax the kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_tensor::{matmul_prec, Matrix, Precision, Rng64};
use std::hint::black_box;

const CALLS: usize = 1024;

fn bench_disabled(c: &mut Criterion) {
    dd_obs::disable();
    dd_obs::reset();
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("baseline_loop", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..CALLS {
                acc = acc.wrapping_add(black_box(i as u64));
            }
            acc
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                dd_obs::counter_add("bench_counter", black_box(i as u64));
            }
        })
    });
    group.bench_function("hist_record", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                dd_obs::hist_record("bench_hist", black_box(i as f64));
            }
        })
    });
    group.bench_function("span_open_close", |b| {
        b.iter(|| {
            for _ in 0..CALLS {
                let s = dd_obs::span_phase("bench_span", dd_obs::Phase::Compute);
                black_box(s.finish());
            }
        })
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    dd_obs::reset();
    dd_obs::enable();
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                dd_obs::counter_add("bench_counter", black_box(i as u64));
            }
        })
    });
    group.bench_function("hist_record", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                dd_obs::hist_record("bench_hist", black_box(i as f64));
            }
        })
    });
    group.finish();
    dd_obs::disable();
    dd_obs::reset();
}

fn bench_matmul_off_vs_on(c: &mut Criterion) {
    let mut rng = Rng64::new(7);
    let a = Matrix::randn(128, 128, 0.0, 1.0, &mut rng);
    let b_m = Matrix::randn(128, 128, 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("obs_matmul");
    dd_obs::disable();
    dd_obs::reset();
    group.bench_function("disabled", |b| {
        b.iter(|| black_box(matmul_prec(black_box(&a), black_box(&b_m), Precision::F32)))
    });
    dd_obs::enable();
    group.bench_function("enabled", |b| {
        b.iter(|| black_box(matmul_prec(black_box(&a), black_box(&b_m), Precision::F32)))
    });
    dd_obs::disable();
    dd_obs::reset();
    group.finish();
}

criterion_group!(benches, bench_disabled, bench_enabled, bench_matmul_off_vs_on);
criterion_main!(benches);
