//! Dataset-generation throughput: the per-node "training data generated at
//! each node" path (E5's `generate` staging strategy) must be fast enough to
//! be a real alternative to I/O.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dd_datagen::amr::{self, AmrConfig};
use dd_datagen::compound::{self, CompoundConfig};
use dd_datagen::drug_response::{self, DrugResponseConfig};
use dd_datagen::expression::ExpressionModel;
use dd_datagen::records::{self, RecordsConfig};
use dd_datagen::tumor::{self, TumorConfig};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(20);

    let tumor_cfg = TumorConfig {
        samples: 500,
        expression: ExpressionModel { genes: 256, ..Default::default() },
        ..Default::default()
    };
    group.throughput(Throughput::Elements(500 * 256));
    group.bench_function("tumor_500x256", |b| {
        b.iter(|| black_box(tumor::generate(black_box(&tumor_cfg), 1)));
    });

    let drug_cfg = DrugResponseConfig { measurements: 1000, ..Default::default() };
    group.throughput(Throughput::Elements(1000));
    group.bench_function("drug_response_1000", |b| {
        b.iter(|| black_box(drug_response::generate(black_box(&drug_cfg), 1)));
    });

    let compound_cfg = CompoundConfig { samples: 2000, ..Default::default() };
    group.throughput(Throughput::Elements(2000));
    group.bench_function("compound_2000", |b| {
        b.iter(|| black_box(compound::generate(black_box(&compound_cfg), 1)));
    });

    let records_cfg = RecordsConfig { patients: 2000, ..Default::default() };
    group.throughput(Throughput::Elements(2000));
    group.bench_function("records_2000", |b| {
        b.iter(|| black_box(records::generate(black_box(&records_cfg), 1)));
    });

    let amr_cfg = AmrConfig { genomes: 1000, ..Default::default() };
    group.throughput(Throughput::Elements(1000));
    group.bench_function("amr_1000", |b| {
        b.iter(|| black_box(amr::generate(black_box(&amr_cfg), 1)));
    });

    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
