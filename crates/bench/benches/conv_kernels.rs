//! W1 kernel bench: 1-D convolution forward/backward (the NT3-style tumor
//! classifier's hot path) and pooling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_nn::{Conv1d, Init, Layer, MaxPool1d};
use dd_tensor::{Matrix, Precision, Rng64};
use std::hint::black_box;

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let mut group = c.benchmark_group("conv1d_forward");
    for &(in_ch, len, out_ch, kernel) in &[(1usize, 512usize, 8usize, 7usize), (8, 128, 16, 5)] {
        let mut conv = Conv1d::new(in_ch, len, out_ch, kernel, 1, Init::He, &mut rng);
        let x = Matrix::randn(32, in_ch * len, 0.0, 1.0, &mut rng);
        let id = format!("{in_ch}x{len}->{out_ch}k{kernel}");
        group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
            b.iter(|| black_box(conv.forward(black_box(&x), false, Precision::F32)));
        });
    }
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = Rng64::new(2);
    let mut conv = Conv1d::new(4, 256, 8, 5, 1, Init::He, &mut rng);
    let x = Matrix::randn(32, 4 * 256, 0.0, 1.0, &mut rng);
    let y = conv.forward(&x, true, Precision::F32);
    c.bench_function("conv1d_backward", |b| {
        b.iter(|| black_box(conv.backward(black_box(&y), Precision::F32)));
    });
}

fn bench_maxpool(c: &mut Criterion) {
    let mut rng = Rng64::new(3);
    let mut pool = MaxPool1d::new(8, 512, 2);
    let x = Matrix::randn(32, 8 * 512, 0.0, 1.0, &mut rng);
    c.bench_function("maxpool1d_forward", |b| {
        b.iter(|| black_box(pool.forward(black_box(&x), true, Precision::F32)));
    });
}

criterion_group!(benches, bench_conv_forward, bench_conv_backward, bench_maxpool);
criterion_main!(benches);
