//! Telemetry hot-path bench: what a windowed record costs on the serve path.
//!
//! dd-serve's request paths call `dd_obs::window_record` / `gauge_set` on
//! every enqueue, dispatch, and completion, so the contract that lets them
//! stay instrumented in production is the same one the span/counter paths
//! honour: **one relaxed atomic load per event while disabled**
//! (`Registry::window_record_cfg` returns before touching the windows map).
//! These groups measure that claim directly, and under contention:
//!
//! * `telemetry_disabled` — `window_record` + `gauge_set` against the
//!   disabled global registry at 1, 8, and 64 concurrent recorder threads,
//!   next to an uninstrumented baseline loop at the same widths. The
//!   disabled cases must stay within noise of the baseline — there is no
//!   shared cache line to bounce besides the read-only enabled flag, so the
//!   cost must not grow with thread count.
//! * `telemetry_enabled` — the same calls while recording, for the on/off
//!   ratio. Here the registry's window mutex serialises recorders, so this
//!   group is also the "what does it cost to leave telemetry on" number.
//!
//! Each thread records into its own window name (`bench_win_{t}`), matching
//! how dd-serve shards per-replica gauges, so the enabled numbers measure
//! lock traffic rather than artificial single-window contention.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_obs::WindowConfig;
use std::hint::black_box;

const CALLS: usize = 1024;
const THREADS: [usize; 3] = [1, 8, 64];

/// One recorder's share of the loop: a windowed latency sample plus a
/// queue-depth gauge update, the pair every serve-path event records.
fn record_burst(tid: usize, calls: usize) {
    let name = format!("bench_win_{tid}");
    let cfg = WindowConfig::new(0.05, 4);
    for i in 0..calls {
        let now = i as f64 * 1e-4;
        dd_obs::window_record_cfg(&name, black_box(now), black_box(1e-3), cfg);
        dd_obs::gauge_set("bench_depth", black_box(i as f64));
    }
}

fn spawn_recorders(threads: usize) {
    if threads == 1 {
        record_burst(0, CALLS);
        return;
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || record_burst(t, CALLS / threads));
        }
    });
}

fn bench_disabled(c: &mut Criterion) {
    dd_obs::disable();
    dd_obs::reset();
    let mut group = c.benchmark_group("telemetry_disabled");
    for &threads in &THREADS {
        group.bench_function(format!("baseline_{threads}_threads"), |b| {
            b.iter(|| {
                if threads == 1 {
                    let mut acc = 0u64;
                    for i in 0..CALLS {
                        acc = acc.wrapping_add(black_box(i as u64));
                    }
                    black_box(acc);
                } else {
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            s.spawn(|| {
                                let mut acc = 0u64;
                                for i in 0..CALLS / threads {
                                    acc = acc.wrapping_add(black_box(i as u64));
                                }
                                black_box(acc)
                            });
                        }
                    });
                }
            })
        });
        group.bench_function(format!("window_record_{threads}_threads"), |b| {
            b.iter(|| spawn_recorders(threads))
        });
    }
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    dd_obs::reset();
    dd_obs::enable();
    let mut group = c.benchmark_group("telemetry_enabled");
    for &threads in &THREADS {
        group.bench_function(format!("window_record_{threads}_threads"), |b| {
            b.iter(|| spawn_recorders(threads))
        });
    }
    group.finish();
    dd_obs::disable();
    dd_obs::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
