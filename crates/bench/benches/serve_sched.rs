//! E18 kernel bench: the weighted-fair scheduling decision at 1/4/16
//! tenants (the per-dispatch cost every multi-tenant batch pays) plus the
//! autoscaler decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_serve::{
    plan_fair, AutoscalePolicy, Autoscaler, BatchPolicy, DrrScheduler, PriorityClass, QueueView,
    SchedDecision, TenantDirectory, TenantSpec,
};
use std::hint::black_box;

/// Directory of `n` tenants cycling through the three priority classes
/// with weights 1..=3, mirroring the E18 mixes.
fn directory(n: usize) -> TenantDirectory {
    let classes = [PriorityClass::Interactive, PriorityClass::Batch, PriorityClass::BestEffort];
    let specs = (0..n)
        .map(|t| {
            TenantSpec::new(
                &format!("tenant-{t}"),
                classes[t % classes.len()],
                (t % 3) as u32 + 1,
                256,
                "m",
            )
        })
        .collect();
    TenantDirectory::new(specs).expect("static directory is valid")
}

fn bench_plan_fair(c: &mut Criterion) {
    let policy = BatchPolicy::new(16, 2e-3, 0.25);
    let mut group = c.benchmark_group("serve_plan_fair");
    for n in [1usize, 4, 16] {
        let dir = directory(n);
        let mut sched = DrrScheduler::new(&dir);
        // Every tenant backlogged past max_batch: plan_fair always returns a
        // Dispatch, so each iteration measures one full select+charge cycle
        // (the steady-state hot path under sustained load).
        let queues: Vec<QueueView> =
            (0..n).map(|t| QueueView { pending: 64, oldest_s: t as f64 * 1e-4 }).collect();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &queues, |b, queues| {
            b.iter(|| {
                let d = plan_fair(&policy, &mut sched, black_box(1.0), queues, false);
                if let SchedDecision::Dispatch { tenant, n } = d {
                    sched.charge(tenant, n);
                }
                black_box(d)
            });
        });
    }
    group.finish();
}

fn bench_autoscaler_decide(c: &mut Criterion) {
    let mut scaler = Autoscaler::new(AutoscalePolicy::new(1, 4, 64, 8, 0.25));
    c.bench_function("serve_autoscaler_decide", |b| {
        let mut now = 0.0f64;
        b.iter(|| {
            now += 1e-3;
            // Depth sweeps through both watermarks so grow/shrink/hold and
            // the cooldown path are all exercised.
            let depth = ((now * 1e3) as usize) % 96;
            black_box(scaler.decide(black_box(now), depth, 2))
        });
    });
}

criterion_group!(benches, bench_plan_fair, bench_autoscaler_decide);
criterion_main!(benches);
