//! E2 kernel bench: the real threaded ring allreduce across world sizes and
//! buffer lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_parallel::ring;
use std::hint::black_box;

fn run_ring(world: usize, len: usize) {
    let members = ring(world);
    let mut bufs: Vec<Vec<f32>> = (0..world).map(|r| vec![r as f32; len]).collect();
    std::thread::scope(|scope| {
        for (m, buf) in members.into_iter().zip(bufs.iter_mut()) {
            scope.spawn(move || {
                m.allreduce(buf);
            });
        }
    });
    black_box(bufs);
}

fn bench_world_sizes(c: &mut Criterion) {
    let len = 1 << 16; // 256 KiB of f32 — a small dense layer's gradients
    let mut group = c.benchmark_group("ring_allreduce_world");
    group.throughput(Throughput::Bytes((len * 4) as u64));
    for world in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &w| {
            b.iter(|| run_ring(w, len));
        });
    }
    group.finish();
}

fn bench_buffer_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce_bytes");
    for shift in [10usize, 14, 18] {
        let len = 1usize << shift;
        group.throughput(Throughput::Bytes((len * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len * 4), &len, |b, &l| {
            b.iter(|| run_ring(4, l));
        });
    }
    group.finish();
}

fn bench_gradient_compression(c: &mut Criterion) {
    use dd_parallel::{quantize_gradient, TopKCompressor};
    use dd_tensor::Rng64;
    let mut rng = Rng64::new(5);
    let grad: Vec<f32> = (0..1 << 16).map(|_| rng.normal(0.0, 0.1) as f32).collect();
    let mut group = c.benchmark_group("gradient_compression");
    group.throughput(Throughput::Bytes((grad.len() * 4) as u64));
    group.bench_function("topk_1pct", |b| {
        let mut comp = TopKCompressor::new(0.01, grad.len());
        b.iter(|| black_box(comp.compress(black_box(&grad))));
    });
    group.bench_function("int8_quantize", |b| {
        b.iter(|| black_box(quantize_gradient(black_box(&grad))));
    });
    group.finish();
}

criterion_group!(benches, bench_world_sizes, bench_buffer_sizes, bench_gradient_compression);
criterion_main!(benches);
