//! E13 kernel bench: batched inference dispatch at batch 1/8/64 (the
//! amortization the serving knee rides on) plus the pure batching decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_nn::{Activation, ModelSpec};
use dd_serve::{dispatch_batch, plan, BatchPolicy, ModelRegistry};
use dd_tensor::{Matrix, Precision, Rng64};
use std::hint::black_box;

fn bench_dispatch_batch(c: &mut Criterion) {
    let width = 60;
    let registry = ModelRegistry::new();
    let spec = ModelSpec::mlp(width, &[256, 128], 1, Activation::Relu);
    let model = spec.build(1, Precision::F32).expect("static spec builds");
    registry.install("scorer", spec, model);
    let snapshot = registry.get("scorer").expect("installed");

    let mut group = c.benchmark_group("serve_dispatch_batch");
    for batch in [1usize, 8, 64] {
        let mut rng = Rng64::new(batch as u64);
        let rows = Matrix::randn(batch, width, 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &rows, |b, rows| {
            b.iter(|| black_box(dispatch_batch(&snapshot, rows)));
        });
    }
    group.finish();
}

fn bench_plan_decision(c: &mut Criterion) {
    let policy = BatchPolicy::new(16, 2e-3, 0.25);
    c.bench_function("serve_plan_decision", |b| {
        b.iter(|| {
            let mut d = 0usize;
            for pending in 0..64usize {
                if let dd_serve::BatchDecision::Dispatch(n) =
                    plan(&policy, black_box(1.0), black_box(0.999), pending, false)
                {
                    d += n;
                }
            }
            black_box(d)
        });
    });
}

criterion_group!(benches, bench_dispatch_batch, bench_plan_decision);
criterion_main!(benches);
