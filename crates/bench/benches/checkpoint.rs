//! E11 kernel bench: checkpoint save/restore throughput versus model size.
//! The write path is the δ in the Young/Daly interval; these numbers anchor
//! the per-checkpoint cost the fault-tolerant trainer pays at each epoch
//! boundary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_nn::checkpoint::{load_with_state, save_with_state};
use dd_nn::{Activation, ModelSpec, OptimizerState, TrainState};
use dd_tensor::{Precision, Rng64};
use std::hint::black_box;

fn sized_spec(hidden: usize) -> ModelSpec {
    ModelSpec::mlp(64, &[hidden, hidden], 1, Activation::Relu)
}

fn bench_checkpoint_roundtrip(c: &mut Criterion) {
    let mut save_group = c.benchmark_group("checkpoint_save");
    for hidden in [64usize, 256, 1024] {
        let spec = sized_spec(hidden);
        let mut model = spec.build(1, Precision::F32).unwrap();
        let state =
            TrainState { epoch: 3, optimizer: OptimizerState::default(), rng: Rng64::new(7) };
        let bytes = save_with_state(&spec, &mut model, &state).unwrap().len() as u64;
        save_group.throughput(Throughput::Bytes(bytes));
        save_group.bench_with_input(BenchmarkId::from_parameter(hidden), &hidden, |b, _| {
            b.iter(|| black_box(save_with_state(&spec, &mut model, &state).unwrap()));
        });
    }
    save_group.finish();

    let mut load_group = c.benchmark_group("checkpoint_restore");
    for hidden in [64usize, 256, 1024] {
        let spec = sized_spec(hidden);
        let mut model = spec.build(1, Precision::F32).unwrap();
        let state =
            TrainState { epoch: 3, optimizer: OptimizerState::default(), rng: Rng64::new(7) };
        let blob = save_with_state(&spec, &mut model, &state).unwrap();
        load_group.throughput(Throughput::Bytes(blob.len() as u64));
        load_group.bench_with_input(BenchmarkId::from_parameter(hidden), &hidden, |b, _| {
            b.iter(|| black_box(load_with_state(&blob).unwrap()));
        });
    }
    load_group.finish();
}

criterion_group!(benches, bench_checkpoint_roundtrip);
criterion_main!(benches);
