//! E9/W7 kernel bench: Lennard-Jones integration at coarse vs fine
//! resolution, and the surrogate's feature extraction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_mdsim::{LjSystem, SurrogateController, FINE_SUBSTEPS};
use std::hint::black_box;

fn bench_step_resolutions(c: &mut Criterion) {
    let mut group = c.benchmark_group("lj_macro_step");
    group.sample_size(30);
    for &(name, substeps) in &[("coarse", 1usize), ("fine", FINE_SUBSTEPS)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &substeps, |b, &s| {
            b.iter_batched(
                || LjSystem::lattice(6, 1.3, 0.4, 1),
                |mut sys| {
                    sys.advance(0.04, s);
                    black_box(sys);
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_system_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("lj_force_eval");
    group.sample_size(30);
    for &side in &[4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &side, |b, &s| {
            let mut sys = LjSystem::lattice(s, 1.3, 0.4, 1);
            b.iter(|| black_box(sys.forces()));
        });
    }
    group.finish();
}

fn bench_surrogate_features(c: &mut Criterion) {
    let mut sys = LjSystem::lattice(8, 1.3, 0.4, 2);
    c.bench_function("surrogate_features", |b| {
        b.iter(|| black_box(SurrogateController::features(black_box(&mut sys), 0.04)));
    });
}

criterion_group!(benches, bench_step_resolutions, bench_system_sizes, bench_surrogate_features);
criterion_main!(benches);
