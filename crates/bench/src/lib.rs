//! dd-bench — Criterion benchmark harness (all content lives in `benches/`).
//!
//! One bench target per performance-sensitive kernel behind the experiments:
//! `matmul_precision` (E1), `allreduce` (E2), `conv_kernels` (W1),
//! `datagen_throughput` (W1–W6), `md_step` (E9/W7), `train_epoch` (E2/E8),
//! `search_drivers` (E6), `sim_experiments` (E3–E5, E7 table
//! regeneration end to end), and `checkpoint` (E11 save/restore
//! throughput vs model size).
