//! Full-workspace analysis bench: discover + lex + IR + call graph + all
//! eight rule families over every `.rs` file in the repository.
//!
//! check.sh gates the release binary at 5 seconds wall clock for the whole
//! two-pass run; this bench tracks the same quantity with statistics, so a
//! superlinear regression in the fixpoint propagation or the lock-order
//! cycle search shows up as a trend long before the hard gate trips.

use std::hint::black_box;
use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_workspace(c: &mut Criterion) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut group = c.benchmark_group("lint_workspace");
    group.sample_size(20);
    group.bench_function("two_pass_full", |b| {
        b.iter(|| {
            let analysis =
                dd_lint::analyze_workspace(black_box(&root)).expect("workspace analyzable");
            black_box(analysis.diags.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workspace);
criterion_main!(benches);
