//! Self check: the analyzer must agree with the committed baseline on the
//! workspace itself. A full two-pass run from the repo root has to exit 0 —
//! every diagnostic grandfathered by `lint-baseline.txt`, no fresh
//! violations, no stale budgets. This keeps the committed baseline and the
//! analyzer honest against each other: any rule change that alters the
//! workspace diagnostics set fails here before it fails in CI.

use std::path::PathBuf;
use std::process::Command;

#[test]
fn workspace_matches_committed_baseline() {
    // Normally `crates/lint/../..`; overridable so the suite can run from a
    // vendored copy of the package outside the repo checkout.
    let root = std::env::var_os("DD_LINT_SELF_CHECK_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    if !root.join("lint-baseline.txt").exists() {
        eprintln!("self_check: no lint-baseline.txt under {}; skipping", root.display());
        return;
    }
    let out = Command::new(env!("CARGO_BIN_EXE_dd-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("dd-lint runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace run must match the committed baseline exactly\nstdout:\n{}stderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
