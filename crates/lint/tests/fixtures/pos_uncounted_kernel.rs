//! Fixture: `instrumentation/uncounted-kernel` must fire on line 2.
pub fn matmul_naive(a: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    out[0] = a[0];
    out
}
