//! Fixture: `concurrency/lock-order` must fire on lines 6 and 11 (the two
//! edges of an alpha/beta ordering cycle) and on line 16 (re-acquisition of
//! a lock whose guard is still held).
fn forward(s: &Shared) -> u32 {
    let g = s.alpha.lock();
    let h = s.beta.lock();
    *g + *h
}
fn backward(s: &Shared) -> u32 {
    let g = s.beta.lock();
    let h = s.alpha.lock();
    *g + *h
}
fn reentrant(s: &Shared) -> u32 {
    let g = s.alpha.lock();
    let h = s.alpha.lock();
    *g + *h
}
