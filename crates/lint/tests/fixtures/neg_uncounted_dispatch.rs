//! Fixture: a dd-obs accounting call satisfies the serve dispatch check.
pub fn dispatch_batch(rows: &[f32], n: usize) -> Vec<f32> {
    dd_obs::counter_add("serve_batches_total", 1);
    let mut out = vec![0.0f32; n];
    out[0] = rows[0];
    out
}
