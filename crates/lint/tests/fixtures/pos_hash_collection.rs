//! Fixture: `determinism/hash-collection` must fire on line 2.
use std::collections::HashMap;

pub fn fresh() -> Vec<u32> {
    Vec::new()
}
