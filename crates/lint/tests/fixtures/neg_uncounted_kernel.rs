//! Fixture: a dd-obs accounting call satisfies the instrumentation check.
pub fn matmul_naive(a: &[f32], n: usize) -> Vec<f32> {
    dd_obs::counter_add("matmul_calls", 1);
    let mut out = vec![0.0f32; n * n];
    out[0] = a[0];
    out
}
