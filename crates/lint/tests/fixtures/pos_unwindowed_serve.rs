//! Fixture: `instrumentation/unwindowed-serve-path` must fire on line 2.
fn serve_job(job: &str) -> Vec<f32> {
    let mut out = vec![0.0f32; 4];
    out[0] = job.len() as f32;
    out
}
