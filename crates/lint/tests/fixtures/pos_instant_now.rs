//! Fixture: `single-clock/instant-now` must fire on line 3.
pub fn elapsed() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
