//! Fixture: the allow annotation suppresses `determinism/hash-collection`.
// dd-lint: allow(determinism/hash-collection) -- fixture: keys are sorted before iteration
use std::collections::HashMap;

pub fn fresh() -> Vec<u32> {
    Vec::new()
}
