//! Fixture: `lossy-cast/float-to-int` must fire on line 3.
pub fn truncate(frac: f64, n: usize) -> usize {
    (frac * n as f64) as usize
}
