//! Fixture: `concurrency/guard-across-spawn` must fire on line 5 — the
//! `state` guard is still live when the new thread starts.
fn start(s: &Shared) -> u32 {
    let g = s.state.lock();
    std::thread::spawn(move || work());
    let seed = *g;
    drop(g);
    seed
}
