//! Fixture: `instrumentation/uncounted-kernel` must fire on line 2.
pub fn dispatch_batch(rows: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    out[0] = rows[0];
    out
}
