//! Fixture: guard scope ends (inner block / explicit `drop`) before the
//! blocking operation, so `concurrency/blocking-under-lock` stays quiet.
fn drain_scoped(state: &Shared, rx: &Receiver<u32>) -> u32 {
    let held = {
        let g = state.queue.lock();
        *g
    };
    let v = rx.recv().unwrap_or(0);
    held + v
}
fn drain_dropped(state: &Shared, rx: &Receiver<u32>) -> u32 {
    let g = state.queue.lock();
    let held = *g;
    drop(g);
    let v = rx.recv().unwrap_or(0);
    held + v
}
