//! Fixture: a ServeTelemetry hook satisfies the serve-path telemetry check.
fn serve_job(job: &str) -> Vec<f32> {
    let mut telemetry = acquire_telemetry();
    telemetry.on_dispatch(0.0, 0, 1);
    let mut out = vec![0.0f32; 4];
    out[0] = job.len() as f32;
    telemetry.on_complete(0.0, 0, 0.0, 0.0);
    out
}
