fn serve(job: &str) -> Vec<f32> {
    loop {
        if let Ok(y) = dispatch_batch(job) {
            return y;
        }
    }
}
