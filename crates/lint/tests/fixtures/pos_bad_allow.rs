//! Fixture: `lint/bad-allow` must fire on line 2 (missing `-- reason`).
// dd-lint: allow(error-policy/unwrap)
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}
