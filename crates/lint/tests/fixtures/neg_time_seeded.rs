//! Fixture: the allow annotation suppresses `determinism/time-seeded-rng`.
pub fn seed() -> u64 {
    // dd-lint: allow(determinism/time-seeded-rng) -- fixture: wall-clock stamp, not a seed
    let _t = std::time::SystemTime::now();
    0
}
