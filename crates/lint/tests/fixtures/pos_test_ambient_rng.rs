//! Fixture: `determinism/test-ambient-rng` must fire on line 3.
pub fn sample() -> u64 {
    let mut _rng = rand::thread_rng();
    0
}
