//! Fixture: `error-policy/expect` must fire on line 3.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().expect("non-empty")
}
