//! Fixture: the allow annotation suppresses `determinism/thread-rng`.
pub fn seed() -> u64 {
    // dd-lint: allow(determinism/thread-rng) -- fixture: entropy explicitly requested
    let mut _rng = rand::thread_rng();
    0
}
