//! Fixture: both functions acquire in the same global order (alpha before
//! beta), so the acquisition graph is acyclic and `concurrency/lock-order`
//! stays quiet.
fn sum(s: &Shared) -> u32 {
    let g = s.alpha.lock();
    let h = s.beta.lock();
    *g + *h
}
fn diff(s: &Shared) -> u32 {
    let g = s.alpha.lock();
    let h = s.beta.lock();
    *g - *h
}
fn sequential(s: &Shared) -> u32 {
    let a = {
        let g = s.beta.lock();
        *g
    };
    let h = s.alpha.lock();
    a + *h
}
