//! Fixture: bounded constructors carry backpressure, so
//! `concurrency/unbounded-channel` stays quiet.
fn make_queue(cap: usize) -> (Sender<u32>, Receiver<u32>) {
    bounded(cap)
}
fn make_ring(cap: usize) -> (SyncSender<u32>, Receiver<u32>) {
    sync_channel(cap)
}
