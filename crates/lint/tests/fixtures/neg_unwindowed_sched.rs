//! Fixture: admission/autoscale paths touching ServeTelemetry hooks (or
//! delegating to a serve-path fn that does) satisfy the telemetry check.
fn admit_request(depth: usize, capacity: usize) -> bool {
    let mut telemetry = acquire_telemetry();
    if depth >= capacity {
        telemetry.on_reject(0.0);
        return false;
    }
    telemetry.on_enqueue(0.0, depth + 1);
    true
}

fn scale_replicas(active: usize, grow: bool) -> usize {
    let mut tel = acquire();
    tel.on_scale(0.0, grow, active);
    if grow {
        active + 1
    } else {
        active.saturating_sub(1)
    }
}

// Delegation counts: a wrapper that hands off to an admit_* entry point is
// on a windowed path.
fn admit_batch(sizes: &[usize], capacity: usize) -> usize {
    sizes.iter().filter(|&&d| admit_request(d, capacity)).count()
}

// Accessors that merely *report* admission counts are not serve paths.
fn admitted(counts: &[usize]) -> usize {
    counts.iter().sum()
}
