//! Fixture: trailing allow suppresses `error-policy/expect`.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().expect("non-empty") // dd-lint: allow(error-policy/expect) -- fixture
}
