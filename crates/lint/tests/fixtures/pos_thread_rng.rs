//! Fixture: `determinism/thread-rng` must fire on line 3.
pub fn seed() -> u64 {
    let mut _rng = rand::thread_rng();
    0
}
