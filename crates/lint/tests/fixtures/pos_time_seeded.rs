//! Fixture: `determinism/time-seeded-rng` must fire on line 3.
pub fn seed() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}
