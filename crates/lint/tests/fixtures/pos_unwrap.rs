//! Fixture: `error-policy/unwrap` must fire on line 3.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}
