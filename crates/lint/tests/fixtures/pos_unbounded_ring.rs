//! Fixture: `telemetry/unbounded-buffer` must fire on line 2.
pub struct EventRing {
    events: Vec<u64>,
}
