//! Fixture: SAFETY comments (and an allow annotation) satisfy
//! `safety/undocumented-unsafe`; `unsafe fn` declarations are exempt.
#[allow(unsafe_code)]
pub fn read_first(values: &[f32]) -> f32 {
    assert!(!values.is_empty());
    // SAFETY: the assert above guarantees the slice is non-empty, so the
    // pointer to its first element is valid for reads.
    unsafe { *values.as_ptr() }
}

#[allow(unsafe_code)]
pub fn read_second(values: &[f32]) -> f32 {
    assert!(values.len() > 1);
    unsafe { *values.as_ptr().add(1) } // SAFETY: len > 1 was just asserted
}

#[allow(unsafe_code)]
pub fn read_third(values: &[f32]) -> f32 {
    assert!(values.len() > 2);
    // dd-lint: allow(safety/undocumented-unsafe) -- fixture: annotation instead of a SAFETY comment
    unsafe { *values.as_ptr().add(2) }
}

/// Documented via a `# Safety` section, not a block comment.
///
/// # Safety
/// `values` must be non-empty.
#[allow(unsafe_code)]
pub unsafe fn read_unchecked(values: &[f32]) -> f32 {
    // SAFETY: the function's own contract requires a non-empty slice.
    unsafe { *values.as_ptr() }
}
