//! Fixture: a declared capacity bound satisfies the buffer check, and a
//! name merely containing `Ring` (not ending in it) is not a buffer.
pub struct EventRing {
    capacity: usize,
    events: Vec<u64>,
}

pub struct RingMember {
    rank: usize,
}
