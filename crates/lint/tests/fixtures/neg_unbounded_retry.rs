fn serve(job: &str) -> Result<Vec<f32>, ()> {
    let max_attempts = 4;
    let mut attempts = 0;
    while attempts < max_attempts {
        attempts += 1;
        if let Ok(y) = dispatch_batch(job) {
            return Ok(y);
        }
    }
    Err(())
}

fn drain(jobs: &[&str]) {
    // `for` loops are bounded by their iterator.
    for job in jobs {
        let _ = dispatch_batch(job);
    }
}
