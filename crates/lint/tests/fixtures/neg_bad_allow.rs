//! Fixture: a well-formed annotation is accepted and suppresses the rule.
pub fn first(xs: &[u32]) -> u32 {
    // dd-lint: allow(error-policy/unwrap) -- fixture: justified and spelled correctly
    xs.first().copied().unwrap()
}
