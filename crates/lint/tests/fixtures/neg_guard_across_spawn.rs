//! Fixture: the guard's scope ends before the spawn, so
//! `concurrency/guard-across-spawn` stays quiet.
fn start(s: &Shared) -> u32 {
    let seed = {
        let g = s.state.lock();
        *g
    };
    std::thread::spawn(move || work(seed));
    seed
}
