//! Fixture: the allow annotation suppresses `single-clock/instant-now`.
pub fn elapsed() -> f64 {
    // dd-lint: allow(single-clock/instant-now) -- fixture: local timing scaffold
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
