//! Fixture: `safety/undocumented-unsafe` must fire on line 4.
#[allow(unsafe_code)]
pub fn read_first(values: &[f32]) -> f32 {
    unsafe { *values.as_ptr() }
}
