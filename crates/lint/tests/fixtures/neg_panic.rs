//! Fixture: the allow annotation suppresses `error-policy/panic`.
pub fn broken() {
    // dd-lint: allow(error-policy/panic) -- fixture: deliberate crash injection
    panic!("library code must not panic");
}
