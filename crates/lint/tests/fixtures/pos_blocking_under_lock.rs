//! Fixture: `concurrency/blocking-under-lock` must fire on lines 6
//! (direct `recv` under a live guard) and 14 (call into a function that
//! transitively blocks).
fn drain_direct(state: &Shared, rx: &Receiver<u32>) -> u32 {
    let g = state.queue.lock();
    let v = rx.recv().unwrap_or(0);
    *g + v
}
fn blocking_helper(rx: &Receiver<u32>) -> u32 {
    rx.recv().unwrap_or(0)
}
fn aggregate(state: &Shared, rx: &Receiver<u32>) -> u32 {
    let g = state.queue.lock();
    let v = blocking_helper(rx);
    *g + v
}
