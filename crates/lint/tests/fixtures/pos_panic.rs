//! Fixture: `error-policy/panic` must fire on line 3.
pub fn broken() {
    panic!("library code must not panic");
}
