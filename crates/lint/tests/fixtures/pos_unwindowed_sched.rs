//! Fixture: `instrumentation/unwindowed-serve-path` must fire on lines 3
//! and 10 — admission and autoscaling are serve paths too.
fn admit_request(depth: usize, capacity: usize) -> bool {
    depth < capacity
}

// An autoscaler actuation that adjusts the pool without telling the
// telemetry windows hides capacity changes from every SLO that divides by
// active replicas.
fn scale_replicas(active: usize, grow: bool) -> usize {
    if grow {
        active + 1
    } else {
        active.saturating_sub(1)
    }
}
