//! Fixture: the allow annotation suppresses `lossy-cast/float-to-int`.
pub fn truncate(frac: f64, n: usize) -> usize {
    // dd-lint: allow(lossy-cast/float-to-int) -- fixture: fraction-of-n count
    (frac * n as f64) as usize
}
