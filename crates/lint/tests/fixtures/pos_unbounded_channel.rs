//! Fixture: `concurrency/unbounded-channel` must fire on lines 5 and 8 in
//! the backpressure-critical crates (dd-serve, dd-parallel), and stay quiet
//! everywhere else.
fn make_queue() -> (Sender<u32>, Receiver<u32>) {
    channel()
}
fn make_ring() -> (Sender<u32>, Receiver<u32>) {
    unbounded()
}
