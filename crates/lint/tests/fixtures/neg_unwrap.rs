//! Fixture: the allow annotation suppresses `error-policy/unwrap`.
pub fn first(xs: &[u32]) -> u32 {
    // dd-lint: allow(error-policy/unwrap) -- fixture demonstrating the escape hatch
    xs.first().copied().unwrap()
}
