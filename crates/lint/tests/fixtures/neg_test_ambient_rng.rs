//! Fixture: seeded test code passes `determinism/test-ambient-rng`.
pub fn sample() -> u64 {
    let mut rng = Rng64::new(0xDD_5EED);
    rng.next_u64()
}
