//! End-to-end tests for the dd-lint binary: each rule's positive fixture
//! must fail with the exact rule id and line, each allow-annotated negative
//! must pass, and the exit-code contract must hold.

use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Run dd-lint in fixture mode; returns (exit code, stdout).
fn run(name: &str, as_spec: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dd-lint"))
        .args(["--check-file", &fixture(name), "--as", as_spec])
        .output()
        .expect("dd-lint runs");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Assert the positive fixture exits 1 and reports `rule` at `line`.
fn assert_fires(name: &str, as_spec: &str, line: u32, rule: &str) {
    let (code, stdout) = run(name, as_spec);
    assert_eq!(code, 1, "{name} should fail\nstdout: {stdout}");
    let needle = format!(":{line}: {rule}:");
    assert!(stdout.contains(&needle), "{name}: expected `{needle}` in:\n{stdout}");
}

/// Assert the negative fixture exits 0 with no diagnostics.
fn assert_clean(name: &str, as_spec: &str) {
    let (code, stdout) = run(name, as_spec);
    assert_eq!(code, 0, "{name} should pass\nstdout: {stdout}");
}

#[test]
fn error_policy_unwrap() {
    assert_fires("pos_unwrap.rs", "dd-nn:lib", 3, "error-policy/unwrap");
    assert_clean("neg_unwrap.rs", "dd-nn:lib");
}

#[test]
fn error_policy_expect() {
    assert_fires("pos_expect.rs", "dd-nn:lib", 3, "error-policy/expect");
    assert_clean("neg_expect.rs", "dd-nn:lib");
}

#[test]
fn error_policy_panic() {
    assert_fires("pos_panic.rs", "dd-nn:lib", 3, "error-policy/panic");
    assert_clean("neg_panic.rs", "dd-nn:lib");
}

#[test]
fn determinism_thread_rng() {
    assert_fires("pos_thread_rng.rs", "dd-tensor:lib", 3, "determinism/thread-rng");
    assert_clean("neg_thread_rng.rs", "dd-tensor:lib");
}

#[test]
fn determinism_time_seeded_rng() {
    assert_fires("pos_time_seeded.rs", "dd-tensor:lib", 3, "determinism/time-seeded-rng");
    assert_clean("neg_time_seeded.rs", "dd-tensor:lib");
}

#[test]
fn determinism_hash_collection() {
    assert_fires("pos_hash_collection.rs", "dd-tensor:lib", 2, "determinism/hash-collection");
    assert_clean("neg_hash_collection.rs", "dd-tensor:lib");
}

#[test]
fn determinism_test_ambient_rng() {
    // Test targets must not draw ambient entropy — in ANY crate, not just
    // the deterministic set.
    assert_fires("pos_test_ambient_rng.rs", "dd-lint:test", 3, "determinism/test-ambient-rng");
    assert_fires("pos_test_ambient_rng.rs", "dd-obs:bench", 3, "determinism/test-ambient-rng");
    assert_clean("neg_test_ambient_rng.rs", "dd-lint:test");
    // Scoping pin: the same code classified as non-test library code in a
    // crate outside the deterministic set triggers no rule at all.
    let (code, stdout) = run("pos_test_ambient_rng.rs", "dd-lint:lib");
    assert_eq!(code, 0, "test-ambient-rng must not fire on lib code\nstdout: {stdout}");
}

#[test]
fn single_clock_instant_now() {
    assert_fires("pos_instant_now.rs", "dd-nn:lib", 3, "single-clock/instant-now");
    assert_clean("neg_instant_now.rs", "dd-nn:lib");
}

#[test]
fn instrumentation_uncounted_kernel() {
    assert_fires("pos_uncounted_kernel.rs", "dd-tensor:lib", 2, "instrumentation/uncounted-kernel");
    assert_clean("neg_uncounted_kernel.rs", "dd-tensor:lib");
}

#[test]
fn instrumentation_uncounted_serve_dispatch() {
    // dd-serve's `dispatch*` entry points are instrumented kernels too.
    assert_fires(
        "pos_uncounted_dispatch.rs",
        "dd-serve:lib",
        2,
        "instrumentation/uncounted-kernel",
    );
    assert_clean("neg_uncounted_dispatch.rs", "dd-serve:lib");
    // Outside the instrumented crates the same code is fine.
    let (code, stdout) = run("pos_uncounted_dispatch.rs", "dd-nn:lib");
    assert_eq!(code, 0, "dd-nn has no dispatch kernels\nstdout: {stdout}");
}

#[test]
fn instrumentation_unwindowed_serve_path() {
    // dd-serve's request paths must record into a telemetry window — the
    // rule covers private `fn`s (serve_job and dispatch_prefix are
    // crate-internal).
    assert_fires(
        "pos_unwindowed_serve.rs",
        "dd-serve:lib",
        2,
        "instrumentation/unwindowed-serve-path",
    );
    assert_clean("neg_unwindowed_serve.rs", "dd-serve:lib");
    // The rule is scoped to dd-serve: the same code elsewhere is fine.
    let (code, stdout) = run("pos_unwindowed_serve.rs", "dd-nn:lib");
    assert_eq!(code, 0, "only dd-serve has serve paths\nstdout: {stdout}");
    // And to library code: a test-target helper named serve_job is exempt.
    let (code, stdout) = run("pos_unwindowed_serve.rs", "dd-serve:test");
    assert_eq!(code, 0, "test targets need no telemetry\nstdout: {stdout}");
}

#[test]
fn instrumentation_unwindowed_sched_path() {
    // The multi-tenant tier extends the rule: `admit_*` (quota admission)
    // and `scale_*` (autoscaler actuation) are serve paths too, and both
    // must reach a ServeTelemetry hook on some call path.
    assert_fires(
        "pos_unwindowed_sched.rs",
        "dd-serve:lib",
        3,
        "instrumentation/unwindowed-serve-path",
    );
    assert_fires(
        "pos_unwindowed_sched.rs",
        "dd-serve:lib",
        10,
        "instrumentation/unwindowed-serve-path",
    );
    // on_scale/on_reject hooks, delegation to an admit_* entry point, and
    // plain `admitted` accessors (no underscore prefix) are all clean.
    assert_clean("neg_unwindowed_sched.rs", "dd-serve:lib");
    // The rule stays scoped to dd-serve lib code.
    let (code, stdout) = run("pos_unwindowed_sched.rs", "dd-nn:lib");
    assert_eq!(code, 0, "only dd-serve has admission paths\nstdout: {stdout}");
    let (code, stdout) = run("pos_unwindowed_sched.rs", "dd-serve:test");
    assert_eq!(code, 0, "test targets need no telemetry\nstdout: {stdout}");
}

#[test]
fn telemetry_unbounded_buffer() {
    // Flight-recorder rings and friends must declare a capacity bound. The
    // negative fixture also pins the naming scope: `RingMember` (contains
    // but does not end in `Ring`) is a topology rank, not a buffer.
    assert_fires("pos_unbounded_ring.rs", "dd-obs:lib", 2, "telemetry/unbounded-buffer");
    assert_clean("neg_unbounded_ring.rs", "dd-obs:lib");
    // The rule binds library code in every crate.
    assert_fires("pos_unbounded_ring.rs", "dd-serve:lib", 2, "telemetry/unbounded-buffer");
}

#[test]
fn lossy_cast_float_to_int() {
    assert_fires("pos_lossy_cast.rs", "dd-nn:lib", 3, "lossy-cast/float-to-int");
    assert_clean("neg_lossy_cast.rs", "dd-nn:lib");
}

#[test]
fn safety_undocumented_unsafe() {
    // An `unsafe` block with no adjacent `// SAFETY:` comment, in any
    // library crate. The negative fixture pins the accepted forms: comment
    // directly above, trailing on the same line, an allow annotation, and
    // the `unsafe fn` exemption (contract lives in `# Safety` docs).
    assert_fires("pos_undocumented_unsafe.rs", "dd-tensor:lib", 4, "safety/undocumented-unsafe");
    assert_fires("pos_undocumented_unsafe.rs", "dd-obs:lib", 4, "safety/undocumented-unsafe");
    assert_clean("neg_undocumented_unsafe.rs", "dd-tensor:lib");
    // Test targets are exempt, like the other per-file policies.
    let (code, stdout) = run("pos_undocumented_unsafe.rs", "dd-tensor:test");
    assert_eq!(code, 0, "undocumented-unsafe must not fire on test code\nstdout: {stdout}");
}

#[test]
fn resilience_unbounded_retry() {
    assert_fires("pos_unbounded_retry.rs", "dd-serve:lib", 2, "resilience/unbounded-retry");
    assert_clean("neg_unbounded_retry.rs", "dd-serve:lib");
    // The rule binds library code in every crate; the same loop in a test
    // target is exempt.
    let (code, stdout) = run("pos_unbounded_retry.rs", "dd-serve:test");
    assert_eq!(code, 0, "test targets may spin-retry\nstdout: {stdout}");
}

#[test]
fn concurrency_blocking_under_lock() {
    // Direct `recv` under a live guard, and a call into a helper that
    // transitively blocks (the call-graph case).
    assert_fires(
        "pos_blocking_under_lock.rs",
        "dd-serve:lib",
        6,
        "concurrency/blocking-under-lock",
    );
    assert_fires(
        "pos_blocking_under_lock.rs",
        "dd-serve:lib",
        14,
        "concurrency/blocking-under-lock",
    );
    assert_clean("neg_blocking_under_lock.rs", "dd-serve:lib");
    // Test targets may block under a guard (deterministic harnesses).
    let (code, stdout) = run("pos_blocking_under_lock.rs", "dd-serve:test");
    assert_eq!(code, 0, "test targets may block under locks\nstdout: {stdout}");
}

#[test]
fn concurrency_lock_order() {
    // Both edges of the alpha/beta cycle are reported, plus the
    // self-deadlock re-acquisition.
    assert_fires("pos_lock_order.rs", "dd-serve:lib", 6, "concurrency/lock-order");
    assert_fires("pos_lock_order.rs", "dd-serve:lib", 11, "concurrency/lock-order");
    assert_fires("pos_lock_order.rs", "dd-serve:lib", 16, "concurrency/lock-order");
    assert_clean("neg_lock_order.rs", "dd-serve:lib");
}

#[test]
fn concurrency_guard_across_spawn() {
    assert_fires("pos_guard_across_spawn.rs", "dd-serve:lib", 5, "concurrency/guard-across-spawn");
    assert_clean("neg_guard_across_spawn.rs", "dd-serve:lib");
}

#[test]
fn concurrency_unbounded_channel() {
    assert_fires("pos_unbounded_channel.rs", "dd-serve:lib", 5, "concurrency/unbounded-channel");
    assert_fires("pos_unbounded_channel.rs", "dd-serve:lib", 8, "concurrency/unbounded-channel");
    assert_fires("pos_unbounded_channel.rs", "dd-parallel:lib", 5, "concurrency/unbounded-channel");
    assert_clean("neg_unbounded_channel.rs", "dd-serve:lib");
    // The rule binds only the backpressure-critical crates; elsewhere an
    // unbounded channel is a legitimate tool.
    let (code, stdout) = run("pos_unbounded_channel.rs", "dd-nn:lib");
    assert_eq!(code, 0, "non-serving crates may use unbounded channels\nstdout: {stdout}");
    // And only library code: test targets are exempt.
    let (code, stdout) = run("pos_unbounded_channel.rs", "dd-serve:test");
    assert_eq!(code, 0, "test targets may use unbounded channels\nstdout: {stdout}");
}

#[test]
fn lint_bad_allow() {
    assert_fires("pos_bad_allow.rs", "dd-nn:lib", 2, "lint/bad-allow");
    assert_clean("neg_bad_allow.rs", "dd-nn:lib");
}

#[test]
fn error_policy_exempts_test_kind() {
    // The same offending code is fine when classified as a test target.
    let (code, stdout) = run("pos_unwrap.rs", "dd-nn:test");
    assert_eq!(code, 0, "test targets may unwrap\nstdout: {stdout}");
}

#[test]
fn single_clock_exempts_dd_obs() {
    // Instant::now() is the one thing dd-obs itself is allowed to own.
    let (code, stdout) = run("pos_instant_now.rs", "dd-obs:lib");
    assert_eq!(code, 0, "dd-obs owns the clock\nstdout: {stdout}");
}

#[test]
fn determinism_scoped_to_numeric_crates() {
    // HashMap is acceptable in crates outside the deterministic set.
    let (code, stdout) = run("pos_hash_collection.rs", "dd-obs:lib");
    assert_eq!(code, 0, "non-numeric crates may hash\nstdout: {stdout}");
}

#[test]
fn json_format_is_emitted() {
    let out = Command::new(env!("CARGO_BIN_EXE_dd-lint"))
        .args(["--check-file", &fixture("pos_unwrap.rs"), "--as", "dd-nn:lib"])
        .args(["--format", "json"])
        .output()
        .expect("dd-lint runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\": \"error-policy/unwrap\""), "json output:\n{stdout}");
    assert!(stdout.contains("\"line\": 3"), "json output:\n{stdout}");
    assert!(stdout.contains("\"total\": 1"), "json output:\n{stdout}");
}

#[test]
fn missing_file_is_a_usage_error() {
    let (code, _) = run("does_not_exist.rs", "dd-nn:lib");
    assert_eq!(code, 2, "IO problems use exit code 2, distinct from violations");
}
