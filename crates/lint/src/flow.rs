//! Pass 2b: the `concurrency/*` dataflow rules.
//!
//! These consume the per-file IR (guard liveness ranges) and the workspace
//! call graph (transitive blocking and lock-acquisition facts) built by
//! [`crate::ir`] and [`crate::graph`]:
//!
//! - `concurrency/lock-order`: builds the lock-acquisition order graph —
//!   intra-function nested acquisitions plus guard-held call edges into
//!   functions that (transitively) acquire other locks — and reports every
//!   edge that participates in a cycle, plus re-acquisition of a lock whose
//!   guard is still held (self-deadlock on non-reentrant locks).
//! - `concurrency/blocking-under-lock`: a live guard at a `recv`/`join`/
//!   `sleep`/`send` site, or at a call into a function that transitively
//!   blocks.
//! - `concurrency/guard-across-spawn`: a guard live at a `spawn`/
//!   `thread::scope` boundary.
//! - `concurrency/unbounded-channel`: `channel()`/`unbounded()` in the
//!   backpressure-critical crates (dd-serve, dd-parallel), where every
//!   queue must be bounded so overload reaches admission control.
//!
//! All four bind library code only (`FileKind::Lib`) and skip test regions,
//! like the error-policy family.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ctx::FileKind;
use crate::graph::Workspace;
use crate::rules::{push, Diag};

/// Crates where every channel must be bounded: dd-serve's admission control
/// and dd-parallel's ring allreduce both rely on queue backpressure.
pub const BOUNDED_CHANNEL_CRATES: &[&str] = &["dd-serve", "dd-parallel"];

/// Run every concurrency rule over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Diag>) {
    blocking_under_lock(ws, out);
    guard_across_spawn(ws, out);
    lock_order(ws, out);
    unbounded_channel(ws, out);
}

/// `concurrency/blocking-under-lock`.
fn blocking_under_lock(ws: &Workspace, out: &mut Vec<Diag>) {
    for (fi, (ctx, fir)) in ws.files.iter().enumerate() {
        if ctx.kind != FileKind::Lib {
            continue;
        }
        for (ki, f) in fir.fns.iter().enumerate() {
            // Direct blocking operations under a live guard.
            for b in &f.blocking {
                if ctx.in_test(b.line) {
                    continue;
                }
                for g in f.guards_at(b.tok, b.in_spawn) {
                    push(
                        ctx,
                        out,
                        b.line,
                        "concurrency/blocking-under-lock",
                        format!(
                            "`{}` can block while the `{}` guard (line {}) is \
                             held: finish the critical section and drop the \
                             guard before the {}",
                            b.what,
                            ws.lock_id(fi, &g.lock),
                            g.line,
                            b.kind.label()
                        ),
                    );
                }
            }
            // Calls into functions that (transitively) block.
            for (ci, site) in f.calls.iter().enumerate() {
                if ctx.in_test(site.line) {
                    continue;
                }
                let guards = f.guards_at(site.tok, site.in_spawn);
                if guards.is_empty() {
                    continue;
                }
                let Some(c) = ws.unique(fi, ki, ci).filter(|&c| ws.blocks[c.0][c.1].is_some())
                else {
                    continue;
                };
                let why = ws.blocks[c.0][c.1].clone().unwrap_or_default();
                for g in guards {
                    push(
                        ctx,
                        out,
                        site.line,
                        "concurrency/blocking-under-lock",
                        format!(
                            "call to `{}` can block ({why}) while the `{}` \
                             guard (line {}) is held: drop the guard before \
                             the call",
                            ws.fn_ir(c).qual_name(),
                            ws.lock_id(fi, &g.lock),
                            g.line
                        ),
                    );
                }
            }
        }
    }
}

/// `concurrency/guard-across-spawn`.
fn guard_across_spawn(ws: &Workspace, out: &mut Vec<Diag>) {
    for (fi, (ctx, fir)) in ws.files.iter().enumerate() {
        if ctx.kind != FileKind::Lib {
            continue;
        }
        for f in &fir.fns {
            for s in &f.spawns {
                if ctx.in_test(s.line) {
                    continue;
                }
                for g in f.guards_at(s.tok, s.in_spawn) {
                    push(
                        ctx,
                        out,
                        s.line,
                        "concurrency/guard-across-spawn",
                        format!(
                            "the `{}` guard (line {}) is live across this \
                             `{}` boundary: the new thread can contend on the \
                             same lock while the parent still holds it; end \
                             the guard's scope before spawning",
                            ws.lock_id(fi, &g.lock),
                            g.line,
                            s.name
                        ),
                    );
                }
            }
        }
    }
}

/// One directed lock-order edge: `from` held while `to` is acquired.
struct Edge {
    from: String,
    to: String,
    file: usize,
    line: usize,
    via: String,
}

/// `concurrency/lock-order`.
fn lock_order(ws: &Workspace, out: &mut Vec<Diag>) {
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen_edges: BTreeSet<(String, String, usize, usize)> = BTreeSet::new();
    let mut reacq: BTreeSet<(usize, usize, String)> = BTreeSet::new();

    for (fi, (ctx, fir)) in ws.files.iter().enumerate() {
        if ctx.kind != FileKind::Lib {
            continue;
        }
        for (ki, f) in fir.fns.iter().enumerate() {
            // Intra-function: acquisition B while guard A is live.
            for g in &f.locks {
                if ctx.in_test(g.line) {
                    continue;
                }
                for h in &f.locks {
                    if h.tok <= g.tok
                        || h.in_spawn != g.in_spawn
                        || !(g.live.0 <= h.tok && h.tok <= g.live.1)
                    {
                        continue;
                    }
                    let from = ws.lock_id(fi, &g.lock);
                    let to = ws.lock_id(fi, &h.lock);
                    if from == to {
                        reacq.insert((
                            fi,
                            h.line,
                            format!(
                                "re-acquisition of `{from}` while its guard \
                                 from line {} is still held: self-deadlock on \
                                 a non-reentrant lock",
                                g.line
                            ),
                        ));
                    } else if seen_edges.insert((from.clone(), to.clone(), fi, h.line)) {
                        edges.push(Edge {
                            from,
                            to,
                            file: fi,
                            line: h.line,
                            via: format!("in `{}`", f.qual_name()),
                        });
                    }
                }
            }
            // Interprocedural: guard live at a call whose callee
            // (transitively) acquires other locks.
            for (ci, site) in f.calls.iter().enumerate() {
                if ctx.in_test(site.line) {
                    continue;
                }
                let guards = f.guards_at(site.tok, site.in_spawn);
                if guards.is_empty() {
                    continue;
                }
                if let Some(c) = ws.unique(fi, ki, ci) {
                    if ws.acquires[c.0][c.1].is_empty() {
                        continue;
                    }
                    let callee = ws.fn_ir(c).qual_name();
                    for g in &guards {
                        let from = ws.lock_id(fi, &g.lock);
                        for to in &ws.acquires[c.0][c.1] {
                            if *to == from {
                                reacq.insert((
                                    fi,
                                    site.line,
                                    format!(
                                        "call to `{callee}` re-acquires \
                                         `{from}` while its guard (line {}) \
                                         is held: self-deadlock on a \
                                         non-reentrant lock",
                                        g.line
                                    ),
                                ));
                            } else if seen_edges.insert((from.clone(), to.clone(), fi, site.line)) {
                                edges.push(Edge {
                                    from: from.clone(),
                                    to: to.clone(),
                                    file: fi,
                                    line: site.line,
                                    via: format!("via call to `{callee}`"),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    for (fi, line, msg) in reacq {
        push(&ws.files[fi].0, out, line, "concurrency/lock-order", msg);
    }

    // Adjacency over lock ids; an edge is a finding iff its target reaches
    // back to its source (the edge closes a cycle).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    for e in &edges {
        if let Some(path) = reaches(&adj, &e.to, &e.from) {
            let cycle: Vec<&str> =
                std::iter::once(e.from.as_str()).chain(path.iter().copied()).collect();
            push(
                &ws.files[e.file].0,
                out,
                e.line,
                "concurrency/lock-order",
                format!(
                    "acquiring `{}` while holding `{}` ({}) closes a \
                     lock-order cycle: {}; pick one global acquisition order",
                    e.to,
                    e.from,
                    e.via,
                    cycle.join(" → ")
                ),
            );
        }
    }
}

/// BFS from `from` to `to`; returns the node path `[from, .., to]`.
fn reaches<'g>(
    adj: &BTreeMap<&'g str, BTreeSet<&'g str>>,
    from: &'g str,
    to: &str,
) -> Option<Vec<&'g str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut q: VecDeque<&str> = VecDeque::new();
    q.push_back(from);
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    visited.insert(from);
    while let Some(n) = q.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if visited.insert(m) {
                prev.insert(m, n);
                q.push_back(m);
            }
        }
    }
    None
}

/// `concurrency/unbounded-channel`.
fn unbounded_channel(ws: &Workspace, out: &mut Vec<Diag>) {
    for (ctx, fir) in ws.files.iter() {
        if ctx.kind != FileKind::Lib || !BOUNDED_CHANNEL_CRATES.contains(&ctx.crate_name.as_str()) {
            continue;
        }
        for f in &fir.fns {
            for c in &f.chans {
                if ctx.in_test(c.line) {
                    continue;
                }
                push(
                    ctx,
                    out,
                    c.line,
                    "concurrency/unbounded-channel",
                    format!(
                        "`{}()` creates an unbounded queue in a \
                         backpressure-critical crate: use a bounded channel \
                         (`bounded(n)` / `sync_channel(n)`) so overload \
                         reaches admission control instead of growing the \
                         heap",
                        c.name
                    ),
                );
            }
        }
    }
}
