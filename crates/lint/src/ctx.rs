//! File context: crate classification, `#[cfg(test)]` region detection and
//! `dd-lint: allow(...)` annotation parsing.

use crate::lex::{Comment, Lexed, Token, TokenKind};

/// What kind of compilation target a file belongs to. Policies apply per
/// kind: the error policy binds library code only; tests, benches, examples
/// and binaries may unwrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/*/src/**`, excluding `src/bin`).
    Lib,
    /// Binary source (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
}

impl FileKind {
    /// Parse a kind label (the `--as name:kind` CLI form).
    pub fn parse(s: &str) -> Option<FileKind> {
        Some(match s {
            "lib" => FileKind::Lib,
            "bin" => FileKind::Bin,
            "test" => FileKind::Test,
            "bench" => FileKind::Bench,
            "example" => FileKind::Example,
            _ => return None,
        })
    }
}

/// A parsed `dd-lint: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids or family prefixes being allowed.
    pub rules: Vec<String>,
    /// 1-based line of the annotation comment.
    pub line: usize,
    /// True when the comment stands on its own line (applies to the next
    /// code line); false when trailing (applies to its own line).
    pub own_line: bool,
    /// True for `allow-file(...)`: applies to the whole file.
    pub whole_file: bool,
}

/// One malformed annotation (missing reason / unparsable), reported as a
/// diagnostic by the driver.
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// 1-based line.
    pub line: usize,
    /// Why it is malformed.
    pub why: String,
}

/// Everything a rule needs to know about one source file.
pub struct FileCtx {
    /// Path relative to the workspace root (diagnostic prefix).
    pub path: String,
    /// Package the file belongs to (e.g. `dd-tensor`).
    pub crate_name: String,
    /// Target kind.
    pub kind: FileKind,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed annotations.
    pub bad_allows: Vec<BadAllow>,
    /// Sorted set of lines that contain code tokens (for standalone-comment
    /// annotation scoping).
    pub code_lines: Vec<usize>,
    /// Lines of comments carrying a `SAFETY:` marker (the std convention
    /// for justifying an `unsafe` block), for `safety/undocumented-unsafe`.
    pub safety_lines: Vec<usize>,
}

impl FileCtx {
    /// Build a context from lexed source.
    pub fn new(path: String, crate_name: String, kind: FileKind, lexed: Lexed) -> FileCtx {
        let test_regions = find_test_regions(&lexed.tokens);
        let (allows, bad_allows) = parse_annotations(&lexed.comments);
        let mut code_lines: Vec<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        code_lines.dedup();
        let safety_lines: Vec<usize> =
            lexed.comments.iter().filter(|c| c.text.contains("SAFETY:")).map(|c| c.line).collect();
        FileCtx {
            path,
            crate_name,
            kind,
            tokens: lexed.tokens,
            test_regions,
            allows,
            bad_allows,
            code_lines,
            safety_lines,
        }
    }

    /// Is line `l` inside test code?
    pub fn in_test(&self, l: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| l >= s && l <= e)
    }

    /// Does an annotation allow `rule` on line `l`? `rule` is a full id
    /// (`family/name`); annotations may name the full id or just the family.
    pub fn allowed(&self, rule: &str, l: usize) -> bool {
        let family = rule.split('/').next().unwrap_or(rule);
        self.allows.iter().any(|a| {
            let names_rule = a.rules.iter().any(|r| r == rule || r == family);
            if !names_rule {
                return false;
            }
            if a.whole_file {
                return true;
            }
            if a.own_line {
                // Standalone comment: applies to the next line with code.
                self.code_lines.iter().find(|&&cl| cl > a.line).copied() == Some(l)
            } else {
                a.line == l
            }
        })
    }
}

/// Locate `#[cfg(test)]` / `#[cfg(any(.., test, ..))]` / `#[test]` /
/// `#[bench]` items and return the (inclusive) line ranges of their bodies.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        // Parse the attribute group `[...]`.
        let Some(open) = next_is(tokens, i + 1, "[") else {
            i += 1;
            continue;
        };
        let Some(close) = matching(tokens, open, "[", "]") else {
            i += 1;
            continue;
        };
        let attr_is_test = tokens[open + 1..close]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && (t.text == "test" || t.text == "bench"));
        if !attr_is_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then find the item body.
        let mut j = close + 1;
        while j + 1 < tokens.len()
            && tokens[j].kind == TokenKind::Punct
            && tokens[j].text == "#"
            && tokens[j + 1].text == "["
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // Scan forward to the item's opening brace; a `;` first means a
        // body-less item (e.g. `#[cfg(test)] use x;`).
        let mut body_open = None;
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].kind == TokenKind::Punct {
                match tokens[k].text.as_str() {
                    "{" => {
                        body_open = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
            }
            k += 1;
        }
        if let Some(open_b) = body_open {
            if let Some(close_b) = matching(tokens, open_b, "{", "}") {
                regions.push((tokens[i].line, tokens[close_b].line));
                i = close_b + 1;
                continue;
            }
        }
        i = k + 1;
    }
    regions
}

/// Index of token `at` if it is the punct `what`.
fn next_is(tokens: &[Token], at: usize, what: &str) -> Option<usize> {
    (at < tokens.len() && tokens[at].kind == TokenKind::Punct && tokens[at].text == what)
        .then_some(at)
}

/// Index of the delimiter matching the opener at `open`.
pub fn matching(tokens: &[Token], open: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Annotation grammar (documented in DESIGN.md):
///
/// ```text
/// // dd-lint: allow(<rule>[, <rule>...]) -- <justification>
/// // dd-lint: allow-file(<rule>[, <rule>...]) -- <justification>
/// ```
///
/// `<rule>` is a full id (`error-policy/unwrap`) or a family
/// (`error-policy`). The justification is mandatory: an allow without one is
/// itself a diagnostic (`lint/bad-allow`). A trailing annotation applies to
/// its own line; a standalone one to the next code line; `allow-file` to the
/// whole file.
fn parse_annotations(comments: &[Comment]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Annotations live in plain `//` comments only; doc comments
        // (`///` = text starting with `/`, `//!` = text starting with `!`)
        // may mention the grammar in prose without being parsed.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(pos) = c.text.find("dd-lint:") else { continue };
        let body = c.text[pos + "dd-lint:".len()..].trim();
        let whole_file = body.starts_with("allow-file");
        let rest = if whole_file {
            body.trim_start_matches("allow-file").trim_start()
        } else if body.starts_with("allow") {
            body.trim_start_matches("allow").trim_start()
        } else {
            bad.push(BadAllow {
                line: c.line,
                why: format!("unknown dd-lint directive: `{body}`"),
            });
            continue;
        };
        let Some(open) = rest.strip_prefix('(') else {
            bad.push(BadAllow { line: c.line, why: "expected `(` after allow".into() });
            continue;
        };
        let Some(close_at) = open.find(')') else {
            bad.push(BadAllow { line: c.line, why: "unclosed `(` in allow".into() });
            continue;
        };
        let rules: Vec<String> = open[..close_at]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push(BadAllow { line: c.line, why: "allow() names no rules".into() });
            continue;
        }
        let tail = open[close_at + 1..].trim();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad.push(BadAllow {
                line: c.line,
                why: "allow needs a justification: `-- <reason>`".into(),
            });
            continue;
        }
        allows.push(Allow { rules, line: c.line, own_line: c.own_line, whole_file });
    }
    (allows, bad)
}
