//! The policy families: per-file token-stream scans over a [`FileCtx`],
//! plus graph-aware rules that consume the two-pass IR/call-graph view
//! ([`crate::graph::Workspace`]). The `concurrency/*` family lives in
//! [`crate::flow`].
//!
//! Every rule has a stable id `family/name`; ids are what allow annotations
//! and the baseline file refer to. The full list lives in [`KNOWN_RULES`].

use crate::ctx::{matching, FileCtx, FileKind};
use crate::graph::Workspace;
use crate::ir::FileIr;
use crate::lex::TokenKind;

/// One diagnostic, rendered as `file:line: rule-id: message`.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id (`family/name`).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Every rule id dd-lint can emit. Allow annotations must name one of these
/// (or a family prefix) — anything else is a `lint/bad-allow`.
pub const KNOWN_RULES: &[&str] = &[
    "error-policy/unwrap",
    "error-policy/expect",
    "error-policy/panic",
    "determinism/thread-rng",
    "determinism/time-seeded-rng",
    "determinism/hash-collection",
    "determinism/test-ambient-rng",
    "single-clock/instant-now",
    "instrumentation/uncounted-kernel",
    "instrumentation/unwindowed-serve-path",
    "lossy-cast/float-to-int",
    "resilience/unbounded-retry",
    "telemetry/unbounded-buffer",
    "concurrency/lock-order",
    "concurrency/blocking-under-lock",
    "concurrency/guard-across-spawn",
    "concurrency/unbounded-channel",
    "safety/undocumented-unsafe",
    "lint/bad-allow",
];

/// Family prefixes accepted by allow annotations.
pub const KNOWN_FAMILIES: &[&str] = &[
    "error-policy",
    "determinism",
    "single-clock",
    "instrumentation",
    "lossy-cast",
    "resilience",
    "telemetry",
    "concurrency",
    "safety",
    "lint",
];

/// Crates whose numeric results must be bit-reproducible: iteration order
/// and wall-clock entropy must not leak into floats here. dd-serve is on
/// the list for its virtual-time serving simulator, whose E13 CSV must be
/// byte-identical across runs.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["dd-tensor", "dd-nn", "dd-parallel", "dd-mdsim", "dd-hypersearch", "dd-datagen", "dd-serve"];

/// The only crate allowed to read the monotonic clock directly.
pub const CLOCK_OWNER: &str = "dd-obs";

/// Crates whose kernel entry points must be instrumented. In dd-serve the
/// kernel is the batch dispatch (`dispatch*`): the point where a coalesced
/// batch hits `predict_batch` and its FLOPs must be accounted.
pub const INSTRUMENTED_CRATES: &[&str] = &["dd-tensor", "dd-parallel", "dd-serve"];

/// Run every rule over the workspace: per-file scans, then the graph-aware
/// rules over the two-pass view. This is the single entry point for both
/// workspace mode and fixture mode (a fixture is a one-file workspace, so
/// interprocedural rules still work within the fixture).
pub fn check_workspace(files: &[(FileCtx, FileIr)]) -> Vec<Diag> {
    let ws = Workspace::build(files);
    let mut out = Vec::new();
    for (fi, (ctx, _)) in files.iter().enumerate() {
        bad_allows(ctx, &mut out);
        error_policy(ctx, &mut out);
        determinism(ctx, &mut out);
        test_ambient_rng(ctx, &mut out);
        single_clock(ctx, &mut out);
        undocumented_unsafe(ctx, &mut out);
        lossy_cast(ctx, &mut out);
        unbounded_buffer(ctx, &mut out);
        instrumentation(&ws, fi, &mut out);
        unwindowed_serve_path(&ws, fi, &mut out);
        unbounded_retry(&ws, fi, &mut out);
    }
    crate::flow::check(&ws, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Report a diagnostic unless an annotation allows it at that line.
pub(crate) fn push(
    ctx: &FileCtx,
    out: &mut Vec<Diag>,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if ctx.allowed(rule, line) {
        return;
    }
    out.push(Diag { file: ctx.path.clone(), line, rule, message });
}

/// `lint/bad-allow`: malformed annotations and annotations naming unknown
/// rules. These are unconditional — an allow cannot allow itself.
fn bad_allows(ctx: &FileCtx, out: &mut Vec<Diag>) {
    for b in &ctx.bad_allows {
        out.push(Diag {
            file: ctx.path.clone(),
            line: b.line,
            rule: "lint/bad-allow",
            message: b.why.clone(),
        });
    }
    for a in &ctx.allows {
        for r in &a.rules {
            if !KNOWN_RULES.contains(&r.as_str()) && !KNOWN_FAMILIES.contains(&r.as_str()) {
                out.push(Diag {
                    file: ctx.path.clone(),
                    line: a.line,
                    rule: "lint/bad-allow",
                    message: format!("allow names unknown rule `{r}`"),
                });
            }
        }
    }
}

/// Error policy: library code must surface failures as typed `Result`s, not
/// aborts. `assert!`/`unreachable!` stay legal: they document invariants,
/// not fallible paths.
fn error_policy(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let t = &ctx.tokens;
    for i in 0..t.len() {
        let line = t[i].line;
        if ctx.in_test(line) {
            continue;
        }
        // `.unwrap()` / `.unwrap_err()` / `.expect(` / `.expect_err(`.
        if t[i].kind == TokenKind::Punct
            && t[i].text == "."
            && i + 2 < t.len()
            && t[i + 1].kind == TokenKind::Ident
            && t[i + 2].text == "("
        {
            match t[i + 1].text.as_str() {
                "unwrap" | "unwrap_err" => push(
                    ctx,
                    out,
                    t[i + 1].line,
                    "error-policy/unwrap",
                    format!(
                        ".{}() in library code: return a typed error instead \
                         (see DataParallelError / NnError)",
                        t[i + 1].text
                    ),
                ),
                "expect" | "expect_err" => push(
                    ctx,
                    out,
                    t[i + 1].line,
                    "error-policy/expect",
                    format!(
                        ".{}() in library code: return a typed error instead \
                         (see DataParallelError / NnError)",
                        t[i + 1].text
                    ),
                ),
                _ => {}
            }
        }
        // `panic!` / `todo!` / `unimplemented!` macro invocations.
        if t[i].kind == TokenKind::Ident
            && i + 1 < t.len()
            && t[i + 1].kind == TokenKind::Punct
            && t[i + 1].text == "!"
            && matches!(t[i].text.as_str(), "panic" | "todo" | "unimplemented")
        {
            push(
                ctx,
                out,
                line,
                "error-policy/panic",
                format!(
                    "{}! in library code: return a typed error instead \
                     (assert!/unreachable! for invariants are fine)",
                    t[i].text
                ),
            );
        }
    }
}

/// Determinism policy: no ambient entropy or unordered iteration in crates
/// whose floats must be bit-reproducible.
fn determinism(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    if !matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    for tok in &ctx.tokens {
        if tok.kind != TokenKind::Ident || ctx.in_test(tok.line) {
            continue;
        }
        match tok.text.as_str() {
            "thread_rng" => push(
                ctx,
                out,
                tok.line,
                "determinism/thread-rng",
                "thread_rng() is ambient entropy: derive from the run seed \
                 (SplitMix-style split), never the OS"
                    .into(),
            ),
            "SystemTime" => push(
                ctx,
                out,
                tok.line,
                "determinism/time-seeded-rng",
                "SystemTime in a deterministic crate: wall-clock state leaks \
                 into results; thread the run seed / dd-obs instead"
                    .into(),
            ),
            "HashMap" | "HashSet" => push(
                ctx,
                out,
                tok.line,
                "determinism/hash-collection",
                format!(
                    "{} in a deterministic crate: iteration order is \
                     randomized per-process and leaks into float reductions; \
                     use BTreeMap/BTreeSet or sort keys",
                    tok.text
                ),
            ),
            _ => {}
        }
    }
}

/// Determinism policy for *test* code, in every crate: a failing test must
/// reproduce from the seed it prints, which dies the moment the test draws
/// ambient entropy. Integration tests, benches and `#[cfg(test)]` modules
/// must seed explicitly (`Rng64::new`, dd-testkit `Config::with_seed`) —
/// never `thread_rng()`, `from_entropy()` or the wall clock.
fn test_ambient_rng(ctx: &FileCtx, out: &mut Vec<Diag>) {
    for tok in &ctx.tokens {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let in_test_code =
            matches!(ctx.kind, FileKind::Test | FileKind::Bench) || ctx.in_test(tok.line);
        if !in_test_code {
            continue;
        }
        if matches!(tok.text.as_str(), "thread_rng" | "from_entropy" | "SystemTime") {
            push(
                ctx,
                out,
                tok.line,
                "determinism/test-ambient-rng",
                format!(
                    "{} in test code: tests must reproduce from a fixed seed \
                     (Rng64::new / dd-testkit Config::with_seed), not ambient \
                     entropy",
                    tok.text
                ),
            );
        }
    }
}

/// Single-clock policy: only dd-obs may read `Instant::now()`. Everything
/// else times itself through spans so traces and reports can never disagree.
fn single_clock(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if ctx.crate_name == CLOCK_OWNER {
        return;
    }
    if !matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let t = &ctx.tokens;
    for i in 0..t.len() {
        if t[i].kind == TokenKind::Ident
            && t[i].text == "Instant"
            && !ctx.in_test(t[i].line)
            && i + 3 < t.len()
            && t[i + 1].text == ":"
            && t[i + 2].text == ":"
            && t[i + 3].kind == TokenKind::Ident
            && t[i + 3].text == "now"
        {
            push(
                ctx,
                out,
                t[i].line,
                "single-clock/instant-now",
                "Instant::now() outside dd-obs: time through a dd_obs span \
                 (SpanGuard::finish returns elapsed seconds) so the trace and \
                 the report share one clock"
                    .into(),
            );
        }
    }
}

/// Safety policy: every `unsafe` *block* must carry a `// SAFETY:` comment
/// immediately above it (or trailing on the same line) stating why its
/// obligations hold — the std convention, enforced. `unsafe fn` and
/// `unsafe impl` declarations are exempt: their contract belongs in a
/// `# Safety` doc section, and the blocks *inside* callers are where the
/// obligations get discharged. A block whose justification lives three
/// screens away is treated as undocumented: the comment must sit between
/// the previous code line and the block.
fn undocumented_unsafe(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if !matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let t = &ctx.tokens;
    for i in 0..t.len() {
        if !(t[i].kind == TokenKind::Ident && t[i].text == "unsafe") || ctx.in_test(t[i].line) {
            continue;
        }
        // Only `unsafe {` blocks; `unsafe fn` / `unsafe impl` / `unsafe
        // trait` continue with an identifier, not a brace.
        let Some(next) = t.get(i + 1) else { continue };
        if !(next.kind == TokenKind::Punct && next.text == "{") {
            continue;
        }
        let line = t[i].line;
        let prev_code = ctx.code_lines.iter().rev().find(|&&cl| cl < line).copied().unwrap_or(0);
        let documented =
            ctx.safety_lines.iter().any(|&sl| sl == line || (sl > prev_code && sl < line));
        if !documented {
            push(
                ctx,
                out,
                line,
                "safety/undocumented-unsafe",
                "unsafe block without a `// SAFETY:` comment: state, directly \
                 above the block, why its obligations hold (which asserts or \
                 invariants discharge them)"
                    .into(),
            );
        }
    }
}

/// Does a name look like a kernel entry point?
fn kernel_name(name: &str) -> bool {
    name.starts_with("matmul")
        || name.starts_with("matvec")
        || name.starts_with("allreduce")
        || name.starts_with("dispatch")
}

/// Instrumentation coverage: every public matmul/matvec/allreduce entry
/// point in the kernel crates must reach the dd-obs accounting hooks on
/// some call path. Reachability comes from the workspace call graph; a
/// call-by-name into another kernel entry point (resolvable or not) also
/// counts as delegation evidence.
fn instrumentation(ws: &Workspace, fi: usize, out: &mut Vec<Diag>) {
    let (ctx, fir) = &ws.files[fi];
    if ctx.kind != FileKind::Lib || !INSTRUMENTED_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (ki, f) in fir.fns.iter().enumerate() {
        if !f.is_pub || !kernel_name(&f.name) || ctx.in_test(f.line) {
            continue;
        }
        let counted = ws.accounts[fi][ki] || f.calls.iter().any(|site| kernel_name(&site.name));
        if !counted {
            push(
                ctx,
                out,
                f.line,
                "instrumentation/uncounted-kernel",
                format!(
                    "pub fn {} reaches no dd-obs accounting on any call path: \
                     call the note_matmul/allreduce hooks (or delegate to an \
                     entry point that does) so FLOP/byte totals stay exact",
                    f.name
                ),
            );
        }
    }
}

/// Telemetry coverage: dd-serve's request paths — `serve_job*` (the worker
/// loop driving one batch through the resilience core), `dispatch_prefix*`
/// (the batcher handing a prefix to a worker), `admit_*` (quota-gated
/// admission) and `scale_*` (autoscaler actuation) — must record into the
/// streaming-telemetry bundle, or delegate to a path that does. A request
/// that crosses these functions without touching a telemetry hook is
/// invisible to the sliding-window SLOs, so burn-rate alerts silently
/// under-count exactly when they matter; an unrecorded scale action hides
/// capacity changes from the same windows. Unlike the kernel rule this
/// covers private `fn`s too: all four paths are crate-internal.
fn unwindowed_serve_path(ws: &Workspace, fi: usize, out: &mut Vec<Diag>) {
    let (ctx, fir) = &ws.files[fi];
    if ctx.kind != FileKind::Lib || ctx.crate_name != "dd-serve" {
        return;
    }
    let serve_path = |name: &str| {
        name.starts_with("serve_job")
            || name.starts_with("dispatch_prefix")
            || name.starts_with("admit_")
            || name.starts_with("scale_")
    };
    for (ki, f) in fir.fns.iter().enumerate() {
        if !serve_path(&f.name) || ctx.in_test(f.line) {
            continue;
        }
        // Reaches a telemetry hook on some call path, or delegates by name
        // to another serve-path function.
        let windowed = ws.windows[fi][ki] || f.calls.iter().any(|site| serve_path(&site.name));
        if !windowed {
            push(
                ctx,
                out,
                f.line,
                "instrumentation/unwindowed-serve-path",
                format!(
                    "fn {} reaches no telemetry window on any call path: call \
                     the ServeTelemetry hooks (on_dispatch/on_outcome/\
                     on_complete or equivalents) so the sliding-window SLOs \
                     see every request this path handles",
                    f.name
                ),
            );
        }
    }
}

/// Resilience policy: a `loop`/`while` that dispatches work or retries a
/// call must carry evidence of a bound — an attempt cap, a deadline, or a
/// budget — somewhere in the loop. Without one, a dead replica or a
/// permanently failing callee turns the retry loop into a spin that never
/// surfaces an error. `for` loops are exempt: their iterator is the bound.
/// "Dispatches" is judged both by name prefix inside the loop (the
/// original heuristic) and by call-graph reachability: a loop calling a
/// helper that transitively reaches a `dispatch*`/`retry*` entry point is
/// a retry loop even when the helper's own name says nothing.
fn unbounded_retry(ws: &Workspace, fi: usize, out: &mut Vec<Diag>) {
    let (ctx, fir) = &ws.files[fi];
    if ctx.kind != FileKind::Lib {
        return;
    }
    let t = &ctx.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident
            || !matches!(t[i].text.as_str(), "loop" | "while")
            || ctx.in_test(t[i].line)
        {
            continue;
        }
        // Find the loop body: first `{` after the keyword (for `while` this
        // also skips the condition; a `;` first means this `loop`/`while`
        // was an identifier in disguise — nothing to check).
        let mut k = i + 1;
        let mut body = None;
        while k < t.len() {
            if t[k].kind == TokenKind::Punct {
                match t[k].text.as_str() {
                    "{" => {
                        body = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(open) = body else { continue };
        let Some(close) = matching(t, open, "{", "}") else { continue };
        // The inspected region includes the `while` condition, so a bound
        // expressed there (`while attempts < cap`) counts as evidence.
        let region = &t[i..=close];
        let by_name = region.windows(2).any(|w| {
            w[0].kind == TokenKind::Ident
                && (w[0].text.starts_with("dispatch") || w[0].text.starts_with("retry"))
                && w[1].kind == TokenKind::Punct
                && w[1].text == "("
        });
        let by_reach = fir.fns.iter().enumerate().any(|(ki, f)| {
            f.calls.iter().enumerate().any(|(ci, site)| {
                site.tok > open
                    && site.tok < close
                    && ws.resolved[fi][ki][ci].iter().any(|&c| ws.dispatches[c.0][c.1])
            })
        });
        if !by_name && !by_reach {
            continue;
        }
        let bounded = region.iter().any(|tok| {
            if tok.kind != TokenKind::Ident {
                return false;
            }
            let l = tok.text.to_ascii_lowercase();
            l.contains("attempt")
                || l.contains("deadline")
                || l.contains("budget")
                || l.contains("exhaust")
                || l.contains("tries")
                || l.contains("remaining")
                || l.contains("giveup")
                || l.contains("give_up")
        });
        if !bounded {
            push(
                ctx,
                out,
                t[i].line,
                "resilience/unbounded-retry",
                "retry/dispatch loop with no visible bound: cap attempts, \
                 check a deadline, or spend a budget (see ResilientCall) so \
                 a dead replica cannot spin this loop forever"
                    .into(),
            );
        }
    }
}

/// Telemetry policy: event-buffer types — structs named `*Recorder*` or
/// ending in `Ring` — must declare a capacity bound in their definition
/// (a field whose name carries `capacity`/`bound`/`max`/`len`). A flight
/// recorder or time-bucket ring that grows without bound turns "always-on
/// observability" into a slow memory leak on exactly the long runs it
/// exists to explain. Names merely *containing* `Ring` (e.g. a `RingMember`
/// rank in the allreduce topology) are not buffers and are exempt.
fn unbounded_buffer(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let t = &ctx.tokens;
    let mut i = 0usize;
    while i < t.len() {
        if !(t[i].kind == TokenKind::Ident && t[i].text == "struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = t.get(i + 1) else { break };
        let name = name_tok.text.clone();
        if !(name.contains("Recorder") || name.ends_with("Ring")) || ctx.in_test(name_tok.line) {
            i += 2;
            continue;
        }
        // Find the field block: first `{` before any `;` (unit and tuple
        // structs carry no named capacity field and are skipped).
        let mut k = i + 2;
        let mut body = None;
        while k < t.len() {
            if t[k].kind == TokenKind::Punct {
                match t[k].text.as_str() {
                    "{" => {
                        body = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(open) = body else {
            i = k + 1;
            continue;
        };
        let Some(close) = matching(t, open, "{", "}") else {
            i = open + 1;
            continue;
        };
        let bounded = t[open + 1..close].iter().any(|tok| {
            if tok.kind != TokenKind::Ident {
                return false;
            }
            let l = tok.text.to_ascii_lowercase();
            l.contains("capacity") || l.contains("bound") || l.contains("max") || l == "len"
        });
        if !bounded {
            push(
                ctx,
                out,
                name_tok.line,
                "telemetry/unbounded-buffer",
                format!(
                    "struct {name} looks like an event buffer but declares no \
                     capacity bound: add a `capacity`-style field and evict \
                     past it (see FlightRecorder) so telemetry memory stays \
                     fixed on long runs"
                ),
            );
        }
        i = close + 1;
    }
}

/// Integer target types for the lossy-cast rule.
const INT_TYPES: &[&str] =
    &["i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize"];

/// Lossy-cast policy: `<float expr> as <int>` silently truncates and
/// saturates; outside annotated quantization code it is almost always a
/// bug. Heuristic: walk the postfix expression to the left of `as` and flag
/// if it shows float evidence (a float literal, `f32`/`f64`, or a rounding
/// call).
fn lossy_cast(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let t = &ctx.tokens;
    for i in 0..t.len() {
        if !(t[i].kind == TokenKind::Ident && t[i].text == "as") || ctx.in_test(t[i].line) {
            continue;
        }
        let Some(target) = t.get(i + 1) else { continue };
        if target.kind != TokenKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
            continue;
        }
        // Walk the postfix expression backwards from the `as`.
        let mut depth = 0usize;
        let mut j = i;
        let mut floaty = false;
        while j > 0 {
            j -= 1;
            let tok = &t[j];
            match tok.kind {
                TokenKind::Punct => match tok.text.as_str() {
                    ")" | "]" => depth += 1,
                    "(" | "[" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "." | ":" => {}
                    _ if depth > 0 => {}
                    _ => break,
                },
                TokenKind::Float => floaty = true,
                TokenKind::Ident => {
                    if tok.text == "f32"
                        || tok.text == "f64"
                        || matches!(tok.text.as_str(), "round" | "floor" | "ceil" | "trunc")
                    {
                        floaty = true;
                    }
                    // `as` chains (`x as f64 as usize`) and statement
                    // keywords end the postfix walk.
                    if depth == 0
                        && matches!(tok.text.as_str(), "let" | "return" | "if" | "while" | "match")
                    {
                        break;
                    }
                }
                _ => {}
            }
        }
        if floaty {
            push(
                ctx,
                out,
                t[i].line,
                "lossy-cast/float-to-int",
                format!(
                    "float-to-{} cast truncates/saturates silently: round \
                     explicitly and annotate, or keep the value in floats",
                    target.text
                ),
            );
        }
    }
}
