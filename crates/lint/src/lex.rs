//! A minimal, lossless-enough Rust lexer for policy checking.
//!
//! dd-lint deliberately does not depend on `syn`: the policies it enforces
//! are lexical/structural (method names, macro invocations, token
//! neighbourhoods), and a hand-rolled lexer keeps the checker
//! dependency-free so it builds and runs even in offline environments.
//! The lexer understands everything that can *hide* a token — line and
//! nested block comments, string/char/byte/raw-string literals, lifetimes —
//! so rules never fire on text inside a string or comment.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Floating-point literal (has `.`, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Source text (for `Literal`, only a placeholder — contents are never
    /// inspected by rules).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// One comment with its 1-based line and layout info.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the `//` / inside the `/* */`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// True when only whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails: unexpected bytes become
/// `Punct` tokens, unterminated literals run to end of input.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut line_has_code = false;
    let n = chars.len();

    macro_rules! bump_lines {
        ($s:expr, $e:expr) => {
            for k in $s..$e {
                if chars[k] == '\n' {
                    line += 1;
                }
            }
        };
    }

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: chars[start..j].iter().collect(),
                line,
                own_line: !line_has_code,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let own = !line_has_code;
            let mut depth = 1usize;
            let mut j = i + 2;
            let text_start = j;
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let text_end = j.saturating_sub(2).max(text_start);
            out.comments.push(Comment {
                text: chars[text_start..text_end].iter().collect(),
                line: start_line,
                own_line: own,
            });
            let crossed = chars[i..j.min(n)].contains(&'\n');
            bump_lines!(i, j);
            if crossed {
                line_has_code = false;
            }
            i = j;
            continue;
        }
        // Raw strings: r"...", r#"..."#, br"...", br#"..."# etc.
        if (c == 'r' || c == 'b') && i + 1 < n && is_raw_string_start(&chars, i) {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if j < n && chars[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            // Opening quote.
            j += 1;
            // Scan for closing quote followed by `hashes` #'s.
            while j < n {
                if chars[j] == '"' {
                    let mut k = j + 1;
                    let mut seen = 0usize;
                    while k < n && seen < hashes && chars[k] == '#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        j = k;
                        break;
                    }
                }
                j += 1;
            }
            out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line });
            bump_lines!(i, j.min(n));
            line_has_code = true;
            i = j.min(n);
            continue;
        }
        // Plain or byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line });
            bump_lines!(i, j.min(n));
            line_has_code = true;
            i = j.min(n);
            continue;
        }
        // Char literal vs lifetime (also b'x').
        if c == '\'' || (c == 'b' && i + 1 < n && chars[i + 1] == '\'') {
            let q = if c == 'b' { i + 1 } else { i };
            let after = q + 1;
            if after < n && chars[after] == '\\' {
                // Escaped char literal: skip the escaped char, then scan to
                // the closing quote.
                let mut j = after + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line });
                line_has_code = true;
                i = (j + 1).min(n);
                continue;
            }
            if after + 1 < n && chars[after + 1] == '\'' {
                // 'x' single-char literal.
                out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line });
                line_has_code = true;
                i = after + 2;
                continue;
            }
            // Lifetime: consume identifier chars, no closing quote.
            let mut j = after;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: chars[q..j].iter().collect(),
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            let hex = c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'X' | 'o' | 'b');
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            // Exponent sign: 1e-3, 2.5E+7 (but not `3usize-1`, whose `e` is
            // part of the suffix — require a digit before the `e`).
            if !hex
                && j < n
                && matches!(chars[j], '+' | '-')
                && matches!(chars[j - 1], 'e' | 'E')
                && j >= 2
                && chars[j - 2].is_ascii_digit()
            {
                j += 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            let mut has_dot = false;
            // Fractional part: `1.5` but not the range `1..5` or field `1.x`.
            if !hex && j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                has_dot = true;
                j += 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j < n && matches!(chars[j], '+' | '-') && matches!(chars[j - 1], 'e' | 'E') {
                    j += 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                }
            }
            let text: String = chars[start..j].iter().collect();
            let float = !hex
                && (has_dot
                    || text.ends_with("f32")
                    || text.ends_with("f64")
                    || text.contains(['e', 'E']));
            out.tokens.push(Token {
                kind: if float { TokenKind::Float } else { TokenKind::Int },
                text,
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..j].iter().collect(),
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }
        // Everything else: single punctuation char.
        out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
        line_has_code = true;
        i += 1;
    }
    out
}

/// Is position `i` (at `r` or `b`) the start of a raw-string literal?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j >= chars.len() || chars[j] != 'r' {
            return false;
        }
    }
    if chars[j] != 'r' {
        return false;
    }
    j += 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}
