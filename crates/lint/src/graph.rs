//! Pass 2a: the workspace symbol table, call graph, and transitive facts.
//!
//! Call edges are resolved by simple callee name against every `fn` item in
//! the workspace, preferring definitions in the caller's own crate and
//! falling back to all crates (the repo has no function-name collisions
//! that matter; ubiquitous std method names are never resolved at all, see
//! [`NO_RESOLVE`]). Over the resolved graph four transitive facts are
//! computed to fixpoint:
//!
//! - `blocks`: the function (or something it reaches) performs a
//!   potentially-blocking operation — `recv`, zero-arg `join`, `sleep`, or
//!   a channel `send` (bounded sends block when full). Sites inside
//!   `spawn(..)` closures are excluded: they block the *spawned* thread.
//! - `acquires`: the set of lock ids the function (transitively) acquires,
//!   again excluding spawned-closure acquisitions.
//! - `accounts` / `windows`: reaches a dd-obs accounting hook / a
//!   streaming-telemetry hook (upgrades the `instrumentation/*` rules from
//!   name-prefix matching to reachability).
//! - `dispatches`: is, or reaches, a `dispatch*`/`retry*` entry point
//!   (upgrades `resilience/unbounded-retry` the same way).

use std::collections::{BTreeMap, BTreeSet};

use crate::ctx::FileCtx;
use crate::ir::{FileIr, FnIr};

/// Identifies one function item: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// Ubiquitous std/collection method names that are never resolved to
/// workspace definitions: an edge from `v.push(x)` to some workspace
/// `push` method would wire unrelated types together and poison the
/// transitive facts.
const NO_RESOLVE: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "take",
    "replace",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "drain",
    "retain",
    "to_vec",
    "to_string",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "min",
    "max",
    "abs",
    "sqrt",
    "exp",
    "ln",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "trunc",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "flush",
    "sum",
    "product",
    "collect",
    "fold",
    "filter",
    "filter_map",
    "flat_map",
    "rev",
    "zip",
    "enumerate",
    "take_while",
    "skip",
    "skip_while",
    "chain",
    "all",
    "any",
    "position",
    "find",
    "count",
    "last",
    "first",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "swap",
    "split_at",
    "split_off",
    "chunks",
    "windows",
    "join",
    "send",
    "recv",
    "lock",
    "read",
    "write",
    "spawn",
    "scope",
    "channel",
    "unbounded",
    "sleep",
    "resize",
    "reserve",
    "with_capacity",
    "truncate",
    "starts_with",
    "ends_with",
    "trim",
    "split",
    "splitn",
    "parse",
    "expect",
    "unwrap",
    "keys",
    "values",
    "values_mut",
    "entry",
    "or_insert",
    "or_insert_with",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "copied",
    "cloned",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "checked_add",
    "to_owned",
    "borrow",
    "borrow_mut",
    "clamp",
    "signum",
    "abs_diff",
    "rem_euclid",
    "div_euclid",
    "push_str",
    "write_str",
    "format",
    "wrapping_add",
    "wrapping_mul",
];

/// The workspace view: per-file IRs plus the resolved call graph and the
/// transitive facts the dataflow rules consume.
pub struct Workspace<'a> {
    /// The analyzed files: context + IR, in discovery order.
    pub files: &'a [(FileCtx, FileIr)],
    /// `resolved[file][fn][call_site]`: candidate definitions for the
    /// call site (empty when unresolved or stoplisted). Indices parallel
    /// `FnIr::calls`.
    pub resolved: Vec<Vec<Vec<Vec<FnId>>>>,
    /// `blocks[file][fn]`: why the function can block, when it can.
    pub blocks: Vec<Vec<Option<String>>>,
    /// `acquires[file][fn]`: lock ids (crate-qualified) transitively
    /// acquired.
    pub acquires: Vec<Vec<BTreeSet<String>>>,
    /// `accounts[file][fn]`: reaches dd-obs FLOP/byte accounting.
    pub accounts: Vec<Vec<bool>>,
    /// `windows[file][fn]`: reaches a streaming-telemetry hook.
    pub windows: Vec<Vec<bool>>,
    /// `dispatches[file][fn]`: is or reaches a `dispatch*`/`retry*` fn.
    pub dispatches: Vec<Vec<bool>>,
}

impl<'a> Workspace<'a> {
    /// The [`FnIr`] behind an id.
    pub fn fn_ir(&self, id: FnId) -> &'a FnIr {
        &self.files[id.0].1.fns[id.1]
    }

    /// The crate a function belongs to.
    pub fn crate_of(&self, id: FnId) -> &'a str {
        &self.files[id.0].0.crate_name
    }

    /// Crate-qualified lock id for an acquisition in `file`.
    pub fn lock_id(&self, file: usize, lock: &str) -> String {
        format!("{}::{}", self.files[file].0.crate_name, lock)
    }

    /// The call site's target iff resolution is unambiguous (exactly one
    /// candidate). The lock/blocking facts only flow through unique edges:
    /// unioning over same-name candidates would attribute one definition's
    /// locks to every caller of the *name* and flood the concurrency rules
    /// with false positives. The boolean coverage flags keep using all
    /// candidates — over-approximating those can only suppress findings,
    /// never invent them.
    pub fn unique(&self, fi: usize, ki: usize, ci: usize) -> Option<FnId> {
        match self.resolved[fi][ki][ci].as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Iterate every function id in deterministic (file, index) order.
    pub fn fn_ids(&self) -> impl Iterator<Item = FnId> + 'a {
        let files = self.files;
        files
            .iter()
            .enumerate()
            .flat_map(|(fi, (_, fir))| (0..fir.fns.len()).map(move |ki| (fi, ki)))
    }

    /// Build the graph and compute every transitive fact to fixpoint.
    pub fn build(files: &'a [(FileCtx, FileIr)]) -> Workspace<'a> {
        // Symbol table: fn name -> definitions.
        let mut defs: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (fi, (_, fir)) in files.iter().enumerate() {
            for (ki, f) in fir.fns.iter().enumerate() {
                defs.entry(&f.name).or_default().push((fi, ki));
            }
        }

        // Resolve call sites: same-crate definitions first, all crates as
        // fallback.
        let mut resolved: Vec<Vec<Vec<Vec<FnId>>>> = Vec::with_capacity(files.len());
        for (ctx, fir) in files.iter() {
            let mut per_fn = Vec::with_capacity(fir.fns.len());
            for f in &fir.fns {
                let mut per_site = Vec::with_capacity(f.calls.len());
                for site in &f.calls {
                    if NO_RESOLVE.contains(&site.name.as_str()) {
                        per_site.push(Vec::new());
                        continue;
                    }
                    let cands = defs.get(site.name.as_str()).cloned().unwrap_or_default();
                    let same_crate: Vec<FnId> = cands
                        .iter()
                        .copied()
                        .filter(|&(cf, _)| files[cf].0.crate_name == ctx.crate_name)
                        .collect();
                    per_site.push(if same_crate.is_empty() { cands } else { same_crate });
                }
                per_fn.push(per_site);
            }
            resolved.push(per_fn);
        }

        let mut ws = Workspace {
            files,
            resolved,
            blocks: files.iter().map(|(_, f)| vec![None; f.fns.len()]).collect(),
            acquires: files.iter().map(|(_, f)| vec![BTreeSet::new(); f.fns.len()]).collect(),
            accounts: files.iter().map(|(_, f)| vec![false; f.fns.len()]).collect(),
            windows: files.iter().map(|(_, f)| vec![false; f.fns.len()]).collect(),
            dispatches: files.iter().map(|(_, f)| vec![false; f.fns.len()]).collect(),
        };
        ws.compute_blocks();
        ws.compute_acquires();
        ws.compute_flags();
        ws
    }

    /// Fixpoint for the `blocks` fact, carrying a human-readable reason.
    fn compute_blocks(&mut self) {
        // Seed: direct blocking ops on this thread.
        for (fi, (_, fir)) in self.files.iter().enumerate() {
            for (ki, f) in fir.fns.iter().enumerate() {
                if let Some(b) = f.blocking.iter().find(|b| !b.in_spawn) {
                    self.blocks[fi][ki] = Some(format!("`{}` ({})", b.what, b.kind.label()));
                }
            }
        }
        // Propagate callee -> caller through same-thread call sites.
        loop {
            let mut changed = false;
            for (fi, ki) in self.fn_ids().collect::<Vec<_>>() {
                if self.blocks[fi][ki].is_some() {
                    continue;
                }
                let f = self.fn_ir((fi, ki));
                for (ci, site) in f.calls.iter().enumerate() {
                    if site.in_spawn {
                        continue;
                    }
                    let hit = self.unique(fi, ki, ci).filter(|&c| self.blocks[c.0][c.1].is_some());
                    if let Some(c) = hit {
                        let why = self.blocks[c.0][c.1].clone().unwrap_or_default();
                        let callee = self.fn_ir(c).qual_name();
                        self.blocks[fi][ki] = Some(format!("`{callee}` → {why}"));
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Fixpoint for the transitive lock-acquisition sets.
    fn compute_acquires(&mut self) {
        for (fi, (_, fir)) in self.files.iter().enumerate() {
            for (ki, f) in fir.fns.iter().enumerate() {
                for g in f.locks.iter().filter(|g| !g.in_spawn) {
                    let id = self.lock_id(fi, &g.lock);
                    self.acquires[fi][ki].insert(id);
                }
            }
        }
        loop {
            let mut changed = false;
            for (fi, ki) in self.fn_ids().collect::<Vec<_>>() {
                let f = self.fn_ir((fi, ki));
                let mut add: BTreeSet<String> = BTreeSet::new();
                for (ci, site) in f.calls.iter().enumerate() {
                    if site.in_spawn {
                        continue;
                    }
                    let Some(c) = self.unique(fi, ki, ci) else { continue };
                    for id in &self.acquires[c.0][c.1] {
                        if !self.acquires[fi][ki].contains(id) {
                            add.insert(id.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    self.acquires[fi][ki].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Fixpoint for the boolean reachability flags (`accounts`, `windows`,
    /// `dispatches`). These use *all* call edges, including spawned
    /// closures: work handed to a worker thread is still this entry
    /// point's work for coverage purposes.
    fn compute_flags(&mut self) {
        for (fi, (_, fir)) in self.files.iter().enumerate() {
            for (ki, f) in fir.fns.iter().enumerate() {
                self.accounts[fi][ki] = f.accounts;
                self.windows[fi][ki] = f.windows;
                self.dispatches[fi][ki] =
                    f.name.starts_with("dispatch") || f.name.starts_with("retry");
            }
        }
        loop {
            let mut changed = false;
            for (fi, ki) in self.fn_ids().collect::<Vec<_>>() {
                let f = self.fn_ir((fi, ki));
                for (ci, _) in f.calls.iter().enumerate() {
                    for &c in &self.resolved[fi][ki][ci] {
                        if self.accounts[c.0][c.1] && !self.accounts[fi][ki] {
                            self.accounts[fi][ki] = true;
                            changed = true;
                        }
                        if self.windows[c.0][c.1] && !self.windows[fi][ki] {
                            self.windows[fi][ki] = true;
                            changed = true;
                        }
                        if self.dispatches[c.0][c.1] && !self.dispatches[fi][ki] {
                            self.dispatches[fi][ki] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}
