//! dd-lint as a library: the two-pass workspace analysis behind the CLI.
//!
//! Pass 1 ([`ir`]) lexes every file and lowers it to a lightweight IR —
//! function items with call sites, lock-guard acquisitions and liveness,
//! blocking operations, spawn boundaries and channel constructors. Pass 2
//! links the IRs into a workspace call graph ([`graph`]) and runs the
//! policy rules over it ([`rules`] for the per-file families and the
//! reachability-upgraded instrumentation/resilience rules, [`flow`] for
//! the `concurrency/*` dataflow family).
//!
//! The crate stays dependency-free (hand-rolled lexer, hand-built JSON in
//! the CLI) so the gate builds in offline/minimal environments. This
//! library face exists for the `lint_workspace` criterion bench and the
//! `lint_self_check` integration test; the CLI in `src/main.rs` is a thin
//! argument-parsing and rendering shell over [`analyze_workspace`].

pub mod ctx;
pub mod flow;
pub mod graph;
pub mod ir;
pub mod lex;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ctx::{FileCtx, FileKind};
use ir::FileIr;
use rules::Diag;

/// One discovered source file.
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path (diagnostic prefix).
    pub rel: String,
    /// Owning package name.
    pub crate_name: String,
    /// Target kind.
    pub kind: FileKind,
}

/// Result of a full workspace run.
pub struct Analysis {
    /// How many files were analyzed.
    pub file_count: usize,
    /// Every diagnostic, sorted by (file, line, rule).
    pub diags: Vec<Diag>,
}

/// Run the two-pass analysis over already-built file contexts. A fixture
/// is just a one-file workspace, so fixture mode and workspace mode share
/// this path (and interprocedural rules work within a fixture file).
pub fn analyze_files(ctxs: Vec<FileCtx>) -> Vec<Diag> {
    let files: Vec<(FileCtx, FileIr)> = ctxs
        .into_iter()
        .map(|c| {
            let fir = ir::build(&c.tokens);
            (c, fir)
        })
        .collect();
    rules::check_workspace(&files)
}

/// Discover, lex, lower and check every source file under `root`.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let files = discover(root).map_err(|e| format!("discovery failed: {e}"))?;
    let mut ctxs = Vec::with_capacity(files.len());
    for f in &files {
        let src = std::fs::read_to_string(&f.abs).map_err(|e| format!("{}: {e}", f.rel))?;
        ctxs.push(FileCtx::new(f.rel.clone(), f.crate_name.clone(), f.kind, lex::lex(&src)));
    }
    let file_count = files.len();
    Ok(Analysis { file_count, diags: analyze_files(ctxs) })
}

/// Walk the workspace and classify every `.rs` file by owning package and
/// target kind. Skips `target/`, VCS metadata, and dd-lint's own test
/// fixtures (they are violations by design).
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, std::io::Error> {
    let mut names: BTreeMap<String, String> = BTreeMap::new();
    names.insert(String::new(), package_name(&root.join("Cargo.toml")).unwrap_or_default());
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let dir = e.path();
            if let Some(name) = package_name(&dir.join("Cargo.toml")) {
                names.insert(format!("crates/{}", e.file_name().to_string_lossy()), name);
            }
        }
    }

    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for p in entries {
            let fname = p.file_name().unwrap_or_default().to_string_lossy().to_string();
            if p.is_dir() {
                if matches!(fname.as_str(), "target" | ".git" | "results" | "fixtures") {
                    continue;
                }
                stack.push(p);
                continue;
            }
            if p.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            let crate_dir = if rel.starts_with("crates/") {
                rel.split('/').take(2).collect::<Vec<_>>().join("/")
            } else {
                String::new()
            };
            let Some(crate_name) = names.get(&crate_dir) else { continue };
            let within = rel.strip_prefix(&crate_dir).unwrap_or(&rel).trim_start_matches('/');
            let kind = classify(within);
            let Some(kind) = kind else { continue };
            out.push(SourceFile { abs: p, rel, crate_name: crate_name.clone(), kind });
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Classify a crate-relative path into a target kind.
fn classify(within: &str) -> Option<FileKind> {
    if within.starts_with("tests/") {
        Some(FileKind::Test)
    } else if within.starts_with("benches/") {
        Some(FileKind::Bench)
    } else if within.starts_with("examples/") {
        Some(FileKind::Example)
    } else if within.starts_with("src/bin/") || within == "src/main.rs" || within == "build.rs" {
        Some(FileKind::Bin)
    } else if within.starts_with("src/") {
        Some(FileKind::Lib)
    } else {
        None
    }
}

/// Pull `name = "..."` out of a Cargo.toml `[package]` section without a
/// TOML parser.
fn package_name(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}
