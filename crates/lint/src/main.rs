//! dd-lint: the workspace invariant checker (CLI).
//!
//! v2 is a two-pass analyzer: pass 1 lowers every `.rs` file to a
//! lightweight IR (fn items, call sites, lock-guard liveness, blocking
//! operations, spawn boundaries); pass 2 links the IRs into a workspace
//! call graph and runs the policy rules over it — the seven per-file
//! families plus the `concurrency/*` dataflow family (lock-order cycles,
//! blocking-under-lock, guard-across-spawn, unbounded channels). See
//! DESIGN.md "Invariants" for the rationale and the allow-annotation
//! grammar.
//!
//! ```text
//! cargo run -p dd-lint                      # human-readable, gate exit code
//! cargo run -p dd-lint -- --format json     # machine-readable
//! cargo run -p dd-lint -- --emit-baseline   # regenerate lint-baseline.txt
//! cargo run -p dd-lint -- --check-file f.rs --as dd-nn:lib   # fixture mode
//! ```
//!
//! Exit codes: 0 clean (no non-grandfathered diagnostics), 1 violations,
//! 2 usage or I/O error.
//!
//! dd-lint is deliberately dependency-free (hand-rolled lexer, hand-built
//! JSON) so the gate itself builds in offline/minimal environments.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dd_lint::ctx::{FileCtx, FileKind};
use dd_lint::rules::Diag;
use dd_lint::{analyze_files, analyze_workspace, lex};

/// Parsed command line.
struct Cli {
    root: PathBuf,
    format_json: bool,
    no_baseline: bool,
    emit_baseline: bool,
    check_file: Option<PathBuf>,
    check_as: Option<(String, FileKind)>,
}

fn usage() -> &'static str {
    "usage: dd-lint [--root DIR] [--format text|json] [--no-baseline] \
     [--emit-baseline] [--check-file FILE --as CRATE:KIND]"
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        format_json: false,
        no_baseline: false,
        emit_baseline: false,
        check_file: None,
        check_as: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => cli.root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--format" => match args.next().as_deref() {
                Some("json") => cli.format_json = true,
                Some("text") => cli.format_json = false,
                other => return Err(format!("--format text|json, got {other:?}")),
            },
            "--no-baseline" => cli.no_baseline = true,
            "--emit-baseline" => cli.emit_baseline = true,
            "--check-file" => {
                cli.check_file =
                    Some(PathBuf::from(args.next().ok_or("--check-file needs a value")?));
            }
            "--as" => {
                let v = args.next().ok_or("--as needs CRATE:KIND")?;
                let (name, kind) = v.split_once(':').ok_or("--as needs CRATE:KIND")?;
                let kind = FileKind::parse(kind)
                    .ok_or_else(|| format!("unknown kind `{kind}` in --as"))?;
                cli.check_as = Some((name.to_string(), kind));
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(cli)
}

/// The canonical `lint-baseline.txt` header, emitted by `--emit-baseline`
/// so regeneration round-trips without manual header restoration.
const BASELINE_HEADER: &str = "\
# dd-lint grandfather baseline.
# Format: <file> <rule> <budget>
# Each line budgets pre-existing violations in one file for one rule.
# The gate fails on any NEW violation (a file over its budget) and also
# when a budget goes stale (fixes landed: shrink the number or drop the
# line). Regenerate after a cleanup with:
#   cargo run --release -p dd-lint -- --emit-baseline > lint-baseline.txt
# (this header is emitted automatically). Never regenerate to absorb new
# violations, and keep the DESIGN.md burn-down table in sync.";

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    // Fixture mode: check exactly one file under an assumed identity. The
    // file becomes a one-file workspace, so the call-graph rules still see
    // intra-file edges.
    if let Some(file) = &cli.check_file {
        let Some((crate_name, kind)) = cli.check_as.clone() else {
            eprintln!("--check-file requires --as CRATE:KIND");
            return ExitCode::from(2);
        };
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let ctx = FileCtx::new(file.display().to_string(), crate_name, kind, lex::lex(&src));
        let diags = analyze_files(vec![ctx]);
        render(&diags, &[], cli.format_json);
        return if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    // Workspace mode: the full two-pass run.
    let analysis = match analyze_workspace(&cli.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let diags = analysis.diags;

    if cli.emit_baseline {
        println!("{BASELINE_HEADER}");
        for ((file, rule), count) in group(&diags) {
            println!("{file} {rule} {count}");
        }
        return ExitCode::SUCCESS;
    }

    // Baseline: grandfathered (file, rule) counts. A group within budget is
    // suppressed; a group over budget reports every occurrence so the new
    // one is visible among them.
    let baseline = if cli.no_baseline {
        BTreeMap::new()
    } else {
        load_baseline(&cli.root.join("lint-baseline.txt"))
    };
    let counts = group(&diags);
    let mut fresh: Vec<&Diag> = Vec::new();
    let mut grandfathered = 0usize;
    for d in &diags {
        let key = (d.file.clone(), d.rule.to_string());
        let budget = baseline.get(&key).copied().unwrap_or(0);
        let actual = counts.get(&key).copied().unwrap_or(0);
        if actual <= budget {
            grandfathered += 1;
        } else {
            fresh.push(d);
        }
    }
    // Baseline entries whose violations were fixed: remind to burn them
    // down (stale budget would mask regressions).
    let mut stale: Vec<String> = Vec::new();
    for ((file, rule), budget) in &baseline {
        let actual = counts.get(&(file.clone(), rule.clone())).copied().unwrap_or(0);
        if actual < *budget {
            stale.push(format!(
                "{file}: {rule}: baseline says {budget} but found {actual} — \
                 shrink lint-baseline.txt (and the DESIGN.md burn-down table)"
            ));
        }
    }

    let fresh_owned: Vec<Diag> = fresh.into_iter().cloned().collect();
    render(&fresh_owned, &stale, cli.format_json);
    if !cli.format_json {
        eprintln!(
            "dd-lint: {} file(s), {} diagnostic(s) ({} grandfathered, {} fresh)",
            analysis.file_count,
            diags.len(),
            grandfathered,
            fresh_owned.len()
        );
    }
    if fresh_owned.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Render diagnostics to stdout in the selected format.
fn render(diags: &[Diag], stale: &[String], json: bool) {
    if json {
        let mut s = String::from("{\n  \"diagnostics\": [");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                esc(&d.file),
                d.line,
                esc(d.rule),
                esc(&d.message)
            ));
        }
        s.push_str("\n  ],\n  \"stale_baseline\": [");
        for (i, m) in stale.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\"", esc(m)));
        }
        s.push_str(&format!("\n  ],\n  \"total\": {}\n}}", diags.len()));
        println!("{s}");
    } else {
        for d in diags {
            println!("{}:{}: {}: {}", d.file, d.line, d.rule, d.message);
        }
        for m in stale {
            println!("stale-baseline: {m}");
        }
    }
}

/// Minimal JSON string escaping (the only non-ASCII-safe bytes our messages
/// can contain are quotes and backslashes from file paths and code refs).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Count diagnostics per (file, rule).
fn group(diags: &[Diag]) -> BTreeMap<(String, String), usize> {
    let mut m = BTreeMap::new();
    for d in diags {
        *m.entry((d.file.clone(), d.rule.to_string())).or_insert(0) += 1;
    }
    m
}

/// Load `lint-baseline.txt`: one `<file> <rule> <count>` triple per line,
/// `#` comments allowed. Plain text, not JSON, so the gate has no parser
/// dependencies.
fn load_baseline(path: &Path) -> BTreeMap<(String, String), usize> {
    let mut m = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else { return m };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(file), Some(rule), Some(count)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(count) = count.parse::<usize>() {
                m.insert((file.to_string(), rule.to_string()), count);
            }
        }
    }
    m
}
