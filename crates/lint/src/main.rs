//! dd-lint: the workspace invariant checker.
//!
//! Parses every `.rs` file in the workspace and mechanically enforces the
//! policies PR 1 and PR 2 introduced by convention: typed errors in library
//! crates, deterministic seeded RNG, one timing source (dd-obs), FLOP/byte
//! accounting at every kernel entry point, and no silent float-to-int
//! truncation. See DESIGN.md "Invariants" for the rationale and the
//! allow-annotation grammar.
//!
//! ```text
//! cargo run -p dd-lint                      # human-readable, gate exit code
//! cargo run -p dd-lint -- --format json     # machine-readable
//! cargo run -p dd-lint -- --emit-baseline   # regenerate lint-baseline.txt
//! cargo run -p dd-lint -- --check-file f.rs --as dd-nn:lib   # fixture mode
//! ```
//!
//! Exit codes: 0 clean (no non-grandfathered diagnostics), 1 violations,
//! 2 usage or I/O error.
//!
//! dd-lint is deliberately dependency-free (hand-rolled lexer, hand-built
//! JSON) so the gate itself builds in offline/minimal environments.

mod ctx;
mod lex;
mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ctx::{FileCtx, FileKind};
use rules::Diag;

/// Parsed command line.
struct Cli {
    root: PathBuf,
    format_json: bool,
    no_baseline: bool,
    emit_baseline: bool,
    check_file: Option<PathBuf>,
    check_as: Option<(String, FileKind)>,
}

fn usage() -> &'static str {
    "usage: dd-lint [--root DIR] [--format text|json] [--no-baseline] \
     [--emit-baseline] [--check-file FILE --as CRATE:KIND]"
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        format_json: false,
        no_baseline: false,
        emit_baseline: false,
        check_file: None,
        check_as: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => cli.root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--format" => match args.next().as_deref() {
                Some("json") => cli.format_json = true,
                Some("text") => cli.format_json = false,
                other => return Err(format!("--format text|json, got {other:?}")),
            },
            "--no-baseline" => cli.no_baseline = true,
            "--emit-baseline" => cli.emit_baseline = true,
            "--check-file" => {
                cli.check_file =
                    Some(PathBuf::from(args.next().ok_or("--check-file needs a value")?));
            }
            "--as" => {
                let v = args.next().ok_or("--as needs CRATE:KIND")?;
                let (name, kind) = v.split_once(':').ok_or("--as needs CRATE:KIND")?;
                let kind = FileKind::parse(kind)
                    .ok_or_else(|| format!("unknown kind `{kind}` in --as"))?;
                cli.check_as = Some((name.to_string(), kind));
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    // Fixture mode: check exactly one file under an assumed identity.
    if let Some(file) = &cli.check_file {
        let Some((crate_name, kind)) = cli.check_as.clone() else {
            eprintln!("--check-file requires --as CRATE:KIND");
            return ExitCode::from(2);
        };
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let ctx = FileCtx::new(file.display().to_string(), crate_name, kind, lex::lex(&src));
        let diags = rules::check_file(&ctx);
        render(&diags, &[], cli.format_json);
        return if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    // Workspace mode.
    let files = match discover(&cli.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("discovery failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut diags: Vec<Diag> = Vec::new();
    for f in &files {
        let src = match std::fs::read_to_string(&f.abs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", f.rel);
                return ExitCode::from(2);
            }
        };
        let ctx = FileCtx::new(f.rel.clone(), f.crate_name.clone(), f.kind, lex::lex(&src));
        diags.extend(rules::check_file(&ctx));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    if cli.emit_baseline {
        for ((file, rule), count) in group(&diags) {
            println!("{file} {rule} {count}");
        }
        return ExitCode::SUCCESS;
    }

    // Baseline: grandfathered (file, rule) counts. A group within budget is
    // suppressed; a group over budget reports every occurrence so the new
    // one is visible among them.
    let baseline = if cli.no_baseline {
        BTreeMap::new()
    } else {
        load_baseline(&cli.root.join("lint-baseline.txt"))
    };
    let counts = group(&diags);
    let mut fresh: Vec<&Diag> = Vec::new();
    let mut grandfathered = 0usize;
    for d in &diags {
        let key = (d.file.clone(), d.rule.to_string());
        let budget = baseline.get(&key).copied().unwrap_or(0);
        let actual = counts.get(&key).copied().unwrap_or(0);
        if actual <= budget {
            grandfathered += 1;
        } else {
            fresh.push(d);
        }
    }
    // Baseline entries whose violations were fixed: remind to burn them
    // down (stale budget would mask regressions).
    let mut stale: Vec<String> = Vec::new();
    for ((file, rule), budget) in &baseline {
        let actual = counts.get(&(file.clone(), rule.clone())).copied().unwrap_or(0);
        if actual < *budget {
            stale.push(format!(
                "{file}: {rule}: baseline says {budget} but found {actual} — \
                 shrink lint-baseline.txt (and the DESIGN.md burn-down table)"
            ));
        }
    }

    let fresh_owned: Vec<Diag> = fresh.into_iter().cloned().collect();
    render(&fresh_owned, &stale, cli.format_json);
    if !cli.format_json {
        eprintln!(
            "dd-lint: {} file(s), {} diagnostic(s) ({} grandfathered, {} fresh)",
            files.len(),
            diags.len(),
            grandfathered,
            fresh_owned.len()
        );
    }
    if fresh_owned.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Render diagnostics to stdout in the selected format.
fn render(diags: &[Diag], stale: &[String], json: bool) {
    if json {
        let mut s = String::from("{\n  \"diagnostics\": [");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                esc(&d.file),
                d.line,
                esc(d.rule),
                esc(&d.message)
            ));
        }
        s.push_str("\n  ],\n  \"stale_baseline\": [");
        for (i, m) in stale.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\"", esc(m)));
        }
        s.push_str(&format!("\n  ],\n  \"total\": {}\n}}", diags.len()));
        println!("{s}");
    } else {
        for d in diags {
            println!("{}:{}: {}: {}", d.file, d.line, d.rule, d.message);
        }
        for m in stale {
            println!("stale-baseline: {m}");
        }
    }
}

/// Minimal JSON string escaping (the only non-ASCII-safe bytes our messages
/// can contain are quotes and backslashes from file paths and code refs).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Count diagnostics per (file, rule).
fn group(diags: &[Diag]) -> BTreeMap<(String, String), usize> {
    let mut m = BTreeMap::new();
    for d in diags {
        *m.entry((d.file.clone(), d.rule.to_string())).or_insert(0) += 1;
    }
    m
}

/// Load `lint-baseline.txt`: one `<file> <rule> <count>` triple per line,
/// `#` comments allowed. Plain text, not JSON, so the gate has no parser
/// dependencies.
fn load_baseline(path: &Path) -> BTreeMap<(String, String), usize> {
    let mut m = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else { return m };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(file), Some(rule), Some(count)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(count) = count.parse::<usize>() {
                m.insert((file.to_string(), rule.to_string()), count);
            }
        }
    }
    m
}

/// One discovered source file.
struct SourceFile {
    abs: PathBuf,
    rel: String,
    crate_name: String,
    kind: FileKind,
}

/// Walk the workspace and classify every `.rs` file by owning package and
/// target kind. Skips `target/`, VCS metadata, and dd-lint's own test
/// fixtures (they are violations by design).
fn discover(root: &Path) -> Result<Vec<SourceFile>, std::io::Error> {
    let mut names: BTreeMap<String, String> = BTreeMap::new();
    names.insert(String::new(), package_name(&root.join("Cargo.toml")).unwrap_or_default());
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let dir = e.path();
            if let Some(name) = package_name(&dir.join("Cargo.toml")) {
                names.insert(format!("crates/{}", e.file_name().to_string_lossy()), name);
            }
        }
    }

    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for p in entries {
            let fname = p.file_name().unwrap_or_default().to_string_lossy().to_string();
            if p.is_dir() {
                if matches!(fname.as_str(), "target" | ".git" | "results" | "fixtures") {
                    continue;
                }
                stack.push(p);
                continue;
            }
            if p.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            let crate_dir = if rel.starts_with("crates/") {
                rel.split('/').take(2).collect::<Vec<_>>().join("/")
            } else {
                String::new()
            };
            let Some(crate_name) = names.get(&crate_dir) else { continue };
            let within = rel.strip_prefix(&crate_dir).unwrap_or(&rel).trim_start_matches('/');
            let kind = classify(within);
            let Some(kind) = kind else { continue };
            out.push(SourceFile { abs: p, rel, crate_name: crate_name.clone(), kind });
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Classify a crate-relative path into a target kind.
fn classify(within: &str) -> Option<FileKind> {
    if within.starts_with("tests/") {
        Some(FileKind::Test)
    } else if within.starts_with("benches/") {
        Some(FileKind::Bench)
    } else if within.starts_with("examples/") {
        Some(FileKind::Example)
    } else if within.starts_with("src/bin/") || within == "src/main.rs" || within == "build.rs" {
        Some(FileKind::Bin)
    } else if within.starts_with("src/") {
        Some(FileKind::Lib)
    } else {
        None
    }
}

/// Pull `name = "..."` out of a Cargo.toml `[package]` section without a
/// TOML parser.
fn package_name(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}
