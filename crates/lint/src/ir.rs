//! Pass 1: a lightweight per-file intermediate representation.
//!
//! From the raw token stream each file is lowered to a list of function
//! items, each carrying the structural facts the dataflow rules need:
//! call sites (by callee name), lock-guard acquisition sites with a
//! computed liveness range, potentially-blocking operations (`recv`,
//! zero-argument `join`, `sleep`, channel `send`), spawn/scope boundaries,
//! channel-constructor sites, and whether the body touches the dd-obs
//! accounting or telemetry-window hooks directly. Pass 2 (`graph`/`flow`)
//! links these per-file IRs into a workspace-wide call graph.
//!
//! Guard liveness is lexical and deliberately simple, mirroring the Rust
//! 2021 temporary rules closely enough for policy checking:
//!
//! - `let g = x.lock();` (optionally chained through `unwrap`/`expect`)
//!   binds a named guard, live until the end of the enclosing block or an
//!   explicit `drop(g)`.
//! - Any other acquisition is a temporary, live to the end of its
//!   statement; when the statement is a `match`/`if let`/`while let`/`for`
//!   head, the temporary lives through the attached block (the scrutinee
//!   rule), while a plain `if`/`while` condition drops it at the `{`.

use crate::ctx::matching;
use crate::lex::{Token, TokenKind};

/// One named call site (`foo(..)` or `.foo(..)`).
#[derive(Debug, Clone)]
pub struct Site {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// 1-based source line.
    pub line: usize,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// True when the site sits inside the argument list of a `spawn(..)`
    /// call — i.e. inside a closure that runs on *another* thread, so the
    /// site must not contribute to the enclosing function's own dataflow.
    pub in_spawn: bool,
}

/// One lock-guard acquisition (`path.lock()` / `path.read()` /
/// `path.write()` with no arguments).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Canonical lock id: the dotted receiver path with any leading
    /// `self.` stripped, e.g. `resil.telemetry`. The graph layer prefixes
    /// the owning crate so ids never collide across crates.
    pub lock: String,
    /// 1-based source line.
    pub line: usize,
    /// Token index of the acquisition method identifier.
    pub tok: usize,
    /// Token range (inclusive) over which the guard is live.
    pub live: (usize, usize),
    /// Acquired inside a `spawn(..)` closure (on the spawned thread).
    pub in_spawn: bool,
}

/// What kind of potentially-blocking operation a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `recv()` / `recv_timeout()` / `recv_deadline()`.
    Recv,
    /// Zero-argument `join()` (thread/scope handle).
    Join,
    /// `sleep(..)`.
    Sleep,
    /// Channel `send(..)` — blocks when the channel is bounded and full.
    Send,
}

impl BlockKind {
    /// Human-readable operation label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::Recv => "recv",
            BlockKind::Join => "join",
            BlockKind::Sleep => "sleep",
            BlockKind::Send => "send",
        }
    }
}

/// One potentially-blocking operation site.
#[derive(Debug, Clone)]
pub struct Blocking {
    /// Operation kind.
    pub kind: BlockKind,
    /// Receiver path + method, e.g. `resp.send`, for diagnostics.
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// Token index of the operation identifier.
    pub tok: usize,
    /// Sits inside a `spawn(..)` closure (runs on the spawned thread).
    pub in_spawn: bool,
}

/// One function item with its structural facts.
#[derive(Debug, Clone)]
pub struct FnIr {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when any (`Server` for `Server::submit`).
    pub owner: Option<String>,
    /// 1-based line of the name token.
    pub line: usize,
    /// Whether the item is `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// Token indices of the body braces (open, close).
    pub body: (usize, usize),
    /// Call sites, in token order.
    pub calls: Vec<Site>,
    /// Lock acquisitions with liveness.
    pub locks: Vec<LockAcq>,
    /// Potentially-blocking operations.
    pub blocking: Vec<Blocking>,
    /// `spawn(..)` / `thread::scope(..)` boundary sites.
    pub spawns: Vec<Site>,
    /// Unbounded channel constructor sites (`channel()`, `unbounded()`).
    pub chans: Vec<Site>,
    /// Body directly touches dd-obs accounting
    /// (`note_matmul`/`note_allreduce`/`dd_obs`).
    pub accounts: bool,
    /// Body directly records into the streaming-telemetry hooks.
    pub windows: bool,
}

impl FnIr {
    /// Qualified display name (`Server::submit` or `serve_job`).
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Guards live at token index `at` (acquired before it, still live).
    /// `in_spawn` is the flag of the site being asked about: a guard
    /// acquired on the parent thread is not held by a spawned closure and
    /// vice versa, so only same-thread (same-flag) guards match.
    pub fn guards_at(&self, at: usize, in_spawn: bool) -> Vec<&LockAcq> {
        self.locks
            .iter()
            .filter(|g| g.in_spawn == in_spawn && g.tok < at && g.live.0 <= at && at <= g.live.1)
            .collect()
    }
}

/// The per-file IR: every function item in the file.
#[derive(Debug, Clone, Default)]
pub struct FileIr {
    /// Functions in source order.
    pub fns: Vec<FnIr>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "let", "else", "move",
    "break", "continue", "where", "unsafe", "dyn", "impl", "ref", "mut", "pub", "use", "struct",
    "enum", "trait", "type", "const", "static", "mod",
];

/// Lower one lexed file to IR.
pub fn build(tokens: &[Token]) -> FileIr {
    let impls = find_impl_blocks(tokens);
    let headers = find_fns(tokens);
    let mut fns = Vec::new();
    for h in &headers {
        let owner = impls
            .iter()
            .rfind(|(range, _)| range.0 < h.fn_tok && h.fn_tok < range.1)
            .map(|(_, name)| name.clone());
        // Token ranges owned by fns nested inside this body are skipped so
        // every site is attributed to its innermost enclosing function.
        let nested: Vec<(usize, usize)> = headers
            .iter()
            .filter(|n| n.fn_tok > h.body.0 && n.body.1 < h.body.1)
            .map(|n| (n.fn_tok, n.body.1))
            .collect();
        fns.push(lower_fn(tokens, h, owner, &nested));
    }
    FileIr { fns }
}

/// A located `fn` item header.
struct FnHeader {
    fn_tok: usize,
    name: String,
    line: usize,
    is_pub: bool,
    body: (usize, usize),
}

/// Find every `fn` item with a body.
fn find_fns(tokens: &[Token]) -> Vec<FnHeader> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { break };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Body: first `{` before any `;` (a `;` first means a body-less
        // trait/extern declaration).
        let mut k = i + 2;
        let mut body = None;
        while k < tokens.len() {
            if tokens[k].kind == TokenKind::Punct {
                match tokens[k].text.as_str() {
                    "{" => {
                        body = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(open) = body else {
            i = k + 1;
            continue;
        };
        let Some(close) = matching(tokens, open, "{", "}") else {
            i = open + 1;
            continue;
        };
        out.push(FnHeader {
            fn_tok: i,
            name: name_tok.text.clone(),
            line: name_tok.line,
            is_pub: is_pub_before(tokens, i),
            body: (open, close),
        });
        // Continue scanning INSIDE the body too (nested fns).
        i += 2;
    }
    out
}

/// Is the `fn` at token `at` preceded by a visibility qualifier? Walks back
/// over `const`/`unsafe`/`extern "C"`/`async` qualifiers.
fn is_pub_before(tokens: &[Token], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        match t.kind {
            TokenKind::Ident
                if matches!(t.text.as_str(), "const" | "unsafe" | "extern" | "async") => {}
            TokenKind::Literal => {} // the "C" in `extern "C"`
            TokenKind::Punct if t.text == ")" => {
                // `pub(crate)` / `pub(in ..)` — walk to the opener.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].text.as_str() {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
            }
            TokenKind::Ident if t.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Locate `impl` blocks and the type they attach methods to.
fn find_impl_blocks(tokens: &[Token]) -> Vec<((usize, usize), String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident && tokens[i].text == "impl") {
            i += 1;
            continue;
        }
        // Walk to the opening `{`, tracking angle-bracket depth; the owner
        // is the last top-level identifier (after `for`, for trait impls).
        let mut angle = 0i32;
        let mut owner: Option<String> = None;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            match t.kind {
                TokenKind::Punct => match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" => break,
                    _ => {}
                },
                TokenKind::Ident if angle <= 0 && t.text != "for" && t.text != "where" => {
                    owner = Some(t.text.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let (Some(open), Some(owner)) = (open, owner) else {
            i = j + 1;
            continue;
        };
        let Some(close) = matching(tokens, open, "{", "}") else {
            i = open + 1;
            continue;
        };
        out.push(((open, close), owner));
        i = open + 1; // nested impls (rare) still get found
    }
    out
}

/// Names a chained adapter that preserves guard-ness of the value
/// (`x.lock().expect("..")` still yields the guard).
fn guard_preserving(name: &str) -> bool {
    matches!(name, "unwrap" | "expect" | "unwrap_err" | "expect_err")
}

/// Lower one function body to IR facts.
fn lower_fn(
    tokens: &[Token],
    h: &FnHeader,
    owner: Option<String>,
    nested: &[(usize, usize)],
) -> FnIr {
    let (open, close) = h.body;
    let mut f = FnIr {
        name: h.name.clone(),
        owner,
        line: h.line,
        is_pub: h.is_pub,
        body: h.body,
        calls: Vec::new(),
        locks: Vec::new(),
        blocking: Vec::new(),
        spawns: Vec::new(),
        chans: Vec::new(),
        accounts: false,
        windows: false,
    };
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, skip_to)) = nested.iter().find(|&&(s, _)| s == i) {
            i = skip_to + 1;
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Direct-evidence flags.
        if t.text == "note_matmul" || t.text == "note_allreduce" || t.text == "dd_obs" {
            f.accounts = true;
        }
        if t.text.contains("telemetry")
            || t.text.starts_with("window_record")
            || t.text.starts_with("on_dispatch")
            || t.text.starts_with("on_complete")
            || t.text.starts_with("on_outcome")
            || t.text.starts_with("on_enqueue")
            || t.text.starts_with("on_reject")
            || t.text.starts_with("on_shed")
            || t.text.starts_with("on_failure")
            || t.text.starts_with("on_scale")
        {
            f.windows = true;
        }
        // Call site: `ident (` that is not a keyword, macro (`ident !`)
        // or tuple-struct/variant constructor (capitalized).
        let is_call = i + 1 < close
            && tokens[i + 1].kind == TokenKind::Punct
            && tokens[i + 1].text == "("
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && !t.text.starts_with(|c: char| c.is_ascii_uppercase());
        if !is_call {
            i += 1;
            continue;
        }
        let name = t.text.clone();
        let site = Site { name: name.clone(), line: t.line, tok: i, in_spawn: false };
        match name.as_str() {
            "lock" | "read" | "write" => {
                // Acquisition only when the receiver is a dotted path and
                // the call takes no arguments.
                let zero_arg = i + 2 < close && tokens[i + 2].text == ")";
                if zero_arg {
                    if let Some(path) = receiver_path(tokens, i) {
                        let live = liveness(tokens, i, open, close);
                        f.locks.push(LockAcq {
                            lock: path,
                            line: t.line,
                            tok: i,
                            live,
                            in_spawn: false,
                        });
                    }
                }
            }
            "recv" | "recv_timeout" | "recv_deadline" => {
                f.blocking.push(blocking_at(tokens, i, BlockKind::Recv));
            }
            "join" => {
                let zero_arg = i + 2 < close && tokens[i + 2].text == ")";
                if zero_arg {
                    f.blocking.push(blocking_at(tokens, i, BlockKind::Join));
                }
            }
            "sleep" => f.blocking.push(blocking_at(tokens, i, BlockKind::Sleep)),
            "send" => f.blocking.push(blocking_at(tokens, i, BlockKind::Send)),
            "spawn" => f.spawns.push(site.clone()),
            // `thread::scope(..)` / `crossbeam::scope(..)` only; a method
            // named `scope` on something else is not a thread boundary.
            "scope" if path_prefixed_by(tokens, i, &["thread", "crossbeam", "rayon"]) => {
                f.spawns.push(site.clone());
            }
            "channel" | "unbounded" | "unbounded_channel" => f.chans.push(site.clone()),
            _ => {}
        }
        f.calls.push(site);
        i += 1;
    }
    // Second pass: sites inside the argument list of a `spawn(..)` call run
    // on the spawned thread, not this one. (`thread::scope(..)` closures run
    // on the *current* thread, so scope sites do not open a range.)
    let spawn_ranges: Vec<(usize, usize)> = f
        .spawns
        .iter()
        .filter(|s| s.name == "spawn")
        .filter_map(|s| {
            let open_paren = s.tok + 1;
            matching(tokens, open_paren, "(", ")").map(|c| (open_paren, c))
        })
        .collect();
    let inside = |tok: usize| spawn_ranges.iter().any(|&(a, b)| a < tok && tok < b);
    for s in &mut f.calls {
        s.in_spawn = inside(s.tok);
    }
    for s in &mut f.spawns {
        s.in_spawn = inside(s.tok);
    }
    for s in &mut f.chans {
        s.in_spawn = inside(s.tok);
    }
    for b in &mut f.blocking {
        b.in_spawn = inside(b.tok);
    }
    for g in &mut f.locks {
        g.in_spawn = inside(g.tok);
    }
    f
}

/// Build a [`Blocking`] record for the operation ident at `at`.
fn blocking_at(tokens: &[Token], at: usize, kind: BlockKind) -> Blocking {
    Blocking { kind, what: site_what(tokens, at), line: tokens[at].line, tok: at, in_spawn: false }
}

/// The dotted receiver path of a method call at token `at` (the method
/// ident), with a leading `self.` stripped: `resil.set.lock` → `resil.set`.
/// `None` when the method has no dotted receiver (`lock(..)` free call) or
/// the receiver is a call result (`foo().lock()` — not a stable lock id).
fn receiver_path(tokens: &[Token], at: usize) -> Option<String> {
    if at == 0 || tokens[at - 1].text != "." {
        return None;
    }
    let mut parts: Vec<String> = Vec::new();
    let mut j = at - 1; // at the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &tokens[j - 1];
        match prev.kind {
            TokenKind::Ident => {
                parts.push(prev.text.clone());
                j -= 1;
            }
            TokenKind::Punct if prev.text == ")" => return None, // call result
            _ => break,
        }
        // Continue only through `.` / `::` separators.
        if j == 0 {
            break;
        }
        let sep = &tokens[j - 1];
        if sep.text == "." {
            j -= 1;
        } else if sep.text == ":" && j >= 2 && tokens[j - 2].text == ":" {
            j -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    if let Some(first) = parts.first() {
        if first == "self" {
            parts.remove(0);
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("."))
    }
}

/// `receiver.method` display string for diagnostics.
fn site_what(tokens: &[Token], at: usize) -> String {
    match receiver_path(tokens, at) {
        Some(p) => format!("{p}.{}", tokens[at].text),
        None => tokens[at].text.clone(),
    }
}

/// Is the path call at `at` prefixed by one of `roots` (`thread::scope`)?
fn path_prefixed_by(tokens: &[Token], at: usize, roots: &[&str]) -> bool {
    if at >= 3
        && tokens[at - 1].text == ":"
        && tokens[at - 2].text == ":"
        && tokens[at - 3].kind == TokenKind::Ident
    {
        return roots.contains(&tokens[at - 3].text.as_str());
    }
    false
}

/// Compute the guard-liveness token range for the acquisition at `acq`
/// (the `lock`/`read`/`write` ident) inside the body `(open, close)`.
fn liveness(tokens: &[Token], acq: usize, open: usize, close: usize) -> (usize, usize) {
    let stmt_start = statement_start(tokens, acq, open);
    if let Some(binding) = named_guard_binding(tokens, stmt_start, acq, close) {
        // Named guard: live to the end of the enclosing block, or to an
        // explicit `drop(<binding>)`.
        let block_close = enclosing_block_close(tokens, stmt_start, open, close);
        let mut end = block_close;
        let mut j = acq;
        while j < end {
            if tokens[j].kind == TokenKind::Ident
                && tokens[j].text == "drop"
                && j + 2 < end
                && tokens[j + 1].text == "("
                && tokens[j + 2].text == binding
            {
                end = j;
                break;
            }
            j += 1;
        }
        return (acq, end);
    }
    // Temporary: live to the end of the statement. `match`/`if let`/
    // `while let`/`for` heads keep scrutinee temporaries alive through the
    // attached block; plain `if`/`while` conditions drop at the `{`.
    let through_block = statement_head_extends(tokens, stmt_start);
    let mut depth = 0i32;
    let mut j = acq;
    while j < close {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => return (acq, j),
                "{" if depth <= 0 => {
                    if through_block {
                        if let Some(c) = matching(tokens, j, "{", "}") {
                            return (acq, c.min(close));
                        }
                    }
                    return (acq, j);
                }
                _ => {}
            }
        }
        j += 1;
    }
    (acq, close)
}

/// Token index where the statement containing `at` starts (first token
/// after the previous `;`, `{` or `}` at the same nesting level).
fn statement_start(tokens: &[Token], at: usize, open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j > open {
        let t = &tokens[j - 1];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => depth -= 1,
                ";" | "{" | "}" if depth <= 0 => return j,
                _ => {}
            }
        }
        j -= 1;
    }
    open + 1
}

/// Does the statement starting at `start` bind the acquisition's value to
/// a named guard? Returns the binding identifier. The pattern recognized:
/// `let [mut] <ident> = <acquisition chain>;` where only guard-preserving
/// adapters (`unwrap`/`expect`) follow the acquisition before the `;`.
fn named_guard_binding(tokens: &[Token], start: usize, acq: usize, close: usize) -> Option<String> {
    if !(tokens[start].kind == TokenKind::Ident && tokens[start].text == "let") {
        return None;
    }
    let mut j = start + 1;
    if j < close && tokens[j].text == "mut" {
        j += 1;
    }
    let binding = (tokens[j].kind == TokenKind::Ident).then(|| tokens[j].text.clone())?;
    if !(j + 1 < close && tokens[j + 1].text == "=") {
        return None;
    }
    // After the acquisition's `()`, only `.unwrap()/.expect(..)` chains may
    // follow before the statement ends for the binding to be the guard.
    let mut k = acq + 1; // at `(`
    let k_close = matching(tokens, k, "(", ")")?;
    k = k_close + 1;
    while k < close {
        let t = &tokens[k];
        if t.kind == TokenKind::Punct && t.text == ";" {
            return Some(binding);
        }
        if t.kind == TokenKind::Punct && t.text == "." {
            let m = tokens.get(k + 1)?;
            if m.kind == TokenKind::Ident && guard_preserving(&m.text) && tokens[k + 2].text == "("
            {
                let c = matching(tokens, k + 2, "(", ")")?;
                k = c + 1;
                continue;
            }
            return None; // further projection — result is not the guard
        }
        return None;
    }
    None
}

/// Closing-brace token index of the block enclosing the statement at
/// `start`.
fn enclosing_block_close(tokens: &[Token], start: usize, open: usize, close: usize) -> usize {
    // Walk back from `start` to the nearest unmatched `{`, then forward to
    // its match.
    let mut depth = 0i32;
    let mut j = start;
    while j > open {
        let t = &tokens[j - 1];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "}" => depth += 1,
                "{" => {
                    if depth == 0 {
                        return matching(tokens, j - 1, "{", "}").unwrap_or(close).min(close);
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        j -= 1;
    }
    close
}

/// Does a statement head keep scrutinee temporaries alive through its
/// attached block? (`match x { .. }`, `if let`, `while let`, `for`.)
fn statement_head_extends(tokens: &[Token], start: usize) -> bool {
    let t = &tokens[start];
    if t.kind != TokenKind::Ident {
        return false;
    }
    match t.text.as_str() {
        "match" | "for" => true,
        "if" | "while" => tokens.get(start + 1).map(|n| n.text == "let").unwrap_or(false),
        _ => false,
    }
}
