#!/usr/bin/env bash
# Sanitizer sweep for the concurrency-heavy surfaces, complementing the
# static `concurrency/*` family in dd-lint with dynamic checking:
#
#  - ThreadSanitizer over the threaded integration suites
#    (tests/serving.rs, tests/resilience.rs, tests/fault_tolerance.rs):
#    real worker pools, replica sets, and chaos schedules under a data-race
#    detector.
#  - Miri over the deterministic decision cores in dd-serve
#    (batcher::plan, ResilientCall, SloMonitor): UB detection on the pure
#    logic the servers are built around.
#
# Both need a nightly toolchain with extra components (rust-src for
# `-Zbuild-std`, the miri component for `cargo miri`). CI images and dev
# machines that lack them must still pass scripts/check.sh, so every
# missing prerequisite downgrades to a loud, clean skip — this script only
# fails when a sanitizer actually ran and found something.
set -euo pipefail
cd "$(dirname "$0")/.."

ran_any=0

have_nightly() {
  rustup toolchain list 2>/dev/null | grep -q '^nightly'
}

have_component() {
  rustup component list --toolchain nightly --installed 2>/dev/null | grep -q "^$1"
}

echo "== ThreadSanitizer: tests/serving.rs, tests/resilience.rs, tests/fault_tolerance.rs"
if have_nightly && have_component rust-src; then
  # -Zbuild-std instruments std itself; without it TSan misreports
  # synchronization that happens inside uninstrumented std primitives.
  host="$(rustc -vV | sed -n 's/^host: //p')"
  for t in serving resilience fault_tolerance; do
    echo "-- tsan: --test $t"
    RUSTFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -q -Zbuild-std --target "$host" --test "$t"
  done
  ran_any=1
else
  echo "sanitize: SKIP ThreadSanitizer (needs nightly toolchain with the rust-src component)"
fi

echo "== Miri: dd-serve decision cores (batcher::, resil::, telemetry::)"
if have_nightly && have_component miri; then
  # Unit tests only: the integration suites spawn real threads and use the
  # wall clock, which Miri forbids; the decision cores are pure.
  cargo +nightly miri test -p dd-serve --lib batcher:: resil:: telemetry::
  ran_any=1
else
  echo "sanitize: SKIP Miri (cargo-miri not installed for the nightly toolchain)"
fi

if [ "$ran_any" -eq 0 ]; then
  echo "sanitize: no sanitizer prerequisites available; all stages skipped (ok)"
else
  echo "sanitize: all available sanitizer stages passed"
fi
