#!/usr/bin/env bash
# Repo-wide quality gate: build, test, formatting, lints.
# Run from the repository root; any failure aborts with a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy"
cargo clippy --workspace -- -D warnings

echo "All checks passed."
