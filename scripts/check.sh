#!/usr/bin/env bash
# Repo-wide quality gate: static analysis first (cheap, catches policy
# violations before a long build), then build, tests, and integration
# checks. Run from the repository root; any failure aborts non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy"
# unwrap_used/expect_used are workspace-level `warn` lints surfaced by
# clippy but *enforced* by dd-lint below (which knows about the allow
# annotations and the grandfather baseline), so they are exempted from
# -D warnings here. Everything else is an error.
cargo clippy --workspace -- -D warnings -A clippy::unwrap_used -A clippy::expect_used

echo "== dd-lint (workspace invariant checker)"
# Gates on *new* violations: grandfathered sites live in lint-baseline.txt
# and the run fails if a file regresses past its budget (or if the
# baseline has gone stale and should shrink).
cargo run -q --release -p dd-lint

echo "== dd-lint --format json parses"
# The JSON stream must parse regardless of the exit code, so capture
# stdout first and validate it separately.
cargo run -q --release -p dd-lint -- --format json --no-baseline >/tmp/dd-lint.json || true
python3 -m json.tool </tmp/dd-lint.json >/dev/null
echo "dd-lint JSON parses"

echo "== cargo build --release"
cargo build --release

echo "== dd-lint full two-pass workspace analysis stays under 5 seconds"
# The analyzer runs on every commit, so the IR + call-graph passes must
# stay interactive; `timeout` exits 124 on a budget blowout.
timeout 5 ./target/release/dd-lint
echo "dd-lint finished within its 5s budget"

echo "== cargo test"
cargo test -q

echo "== sanitizers (TSan + Miri; skip cleanly without nightly components)"
scripts/sanitize.sh

echo "== dd-testkit self-tests and migrated nn property suite"
cargo test -q -p dd-testkit
cargo test -q -p dd-nn --test proptests

echo "== determinism: bitwise-identical results across global pool widths"
# tests/determinism.rs exercises scoped pools of 1 and 4 threads inside one
# process; these runs pin the *global* rayon pool path as well.
RAYON_NUM_THREADS=1 cargo test -q --test determinism
RAYON_NUM_THREADS=4 cargo test -q --test determinism

echo "== gradient checks and kernel oracle"
cargo test -q --test gradcheck
cargo test -q --test kernel_oracle

echo "== observability integration test"
cargo test -q --test observability

echo "== exp-profile emits a parsable Chrome trace"
DD_TRACE=results/e12_trace.json ./target/release/exp-profile smoke >/dev/null
python3 -m json.tool results/e12_trace.json >/dev/null
echo "results/e12_trace.json parses"

echo "== exp-13-serving smoke: CSV schema + byte-identical reruns"
./target/release/exp-13-serving quick >/dev/null
expected_header="max_batch,wait_ms,offered_rps,requests,admitted,rejected,shed,completed,throughput_rps,mean_batch,qwait_p50_ms,svc_p50_ms,e2e_p50_ms,e2e_p95_ms,e2e_p99_ms"
actual_header="$(head -n1 results/e13_serving.csv)"
if [ "$actual_header" != "$expected_header" ]; then
  echo "e13_serving.csv header mismatch:" >&2
  echo "  expected: $expected_header" >&2
  echo "  actual:   $actual_header" >&2
  exit 1
fi
cp results/e13_serving.csv /tmp/e13_serving.first.csv
./target/release/exp-13-serving quick >/dev/null
cmp results/e13_serving.csv /tmp/e13_serving.first.csv
echo "e13_serving.csv schema ok and deterministic across reruns"

echo "== exp-13-serving: byte-identical across rayon pool widths"
RAYON_NUM_THREADS=1 ./target/release/exp-13-serving quick >/dev/null
cp results/e13_serving.csv /tmp/e13_serving.t1.csv
RAYON_NUM_THREADS=4 ./target/release/exp-13-serving quick >/dev/null
cmp results/e13_serving.csv /tmp/e13_serving.t1.csv
echo "e13_serving.csv byte-identical under RAYON_NUM_THREADS=1 and =4"

echo "== exp-14-chaos smoke: CSV schema + byte-identical reruns"
./target/release/exp-14-chaos quick >/dev/null
expected_header="mtbf_s,policy,offered,admitted,rejected,shed,completed,failed,degraded,retries,hedges,evictions,respawns,breaker_opens,availability,e2e_p50_ms,e2e_p99_ms"
actual_header="$(head -n1 results/e14_chaos.csv)"
if [ "$actual_header" != "$expected_header" ]; then
  echo "e14_chaos.csv header mismatch:" >&2
  echo "  expected: $expected_header" >&2
  echo "  actual:   $actual_header" >&2
  exit 1
fi
cp results/e14_chaos.csv /tmp/e14_chaos.first.csv
./target/release/exp-14-chaos quick >/dev/null
cmp results/e14_chaos.csv /tmp/e14_chaos.first.csv
echo "e14_chaos.csv schema ok and deterministic across reruns"

echo "== exp-14-chaos: byte-identical across rayon pool widths"
RAYON_NUM_THREADS=1 ./target/release/exp-14-chaos quick >/dev/null
cp results/e14_chaos.csv /tmp/e14_chaos.t1.csv
RAYON_NUM_THREADS=4 ./target/release/exp-14-chaos quick >/dev/null
cmp results/e14_chaos.csv /tmp/e14_chaos.t1.csv
echo "e14_chaos.csv byte-identical under RAYON_NUM_THREADS=1 and =4"

echo "== exp-15-telemetry smoke: CSV schema + byte-identical reruns"
./target/release/exp-15-telemetry quick >/dev/null
expected_header="fast_s,slow_s,steady_fired,detect_s,bound_s,chaos_fired,completed,failed,shed,rejected,evictions,breaker_opens,traces_kept,recorder_events,dumps,availability"
actual_header="$(head -n1 results/e15_telemetry.csv)"
if [ "$actual_header" != "$expected_header" ]; then
  echo "e15_telemetry.csv header mismatch:" >&2
  echo "  expected: $expected_header" >&2
  echo "  actual:   $actual_header" >&2
  exit 1
fi
cp results/e15_telemetry.csv /tmp/e15_telemetry.first.csv
./target/release/exp-15-telemetry quick >/dev/null
cmp results/e15_telemetry.csv /tmp/e15_telemetry.first.csv
echo "e15_telemetry.csv schema ok and deterministic across reruns"

echo "== exp-15-telemetry: byte-identical across rayon pool widths"
RAYON_NUM_THREADS=1 ./target/release/exp-15-telemetry quick >/dev/null
cp results/e15_telemetry.csv /tmp/e15_telemetry.t1.csv
RAYON_NUM_THREADS=4 ./target/release/exp-15-telemetry quick >/dev/null
cmp results/e15_telemetry.csv /tmp/e15_telemetry.t1.csv
echo "e15_telemetry.csv byte-identical under RAYON_NUM_THREADS=1 and =4"

echo "== exp-15-telemetry emits a parsable flight-recorder dump"
python3 -m json.tool results/e15_flight_recorder.json >/dev/null
echo "results/e15_flight_recorder.json parses"

echo "== exp-gemm smoke: blocked f32 must beat the seed kernel at 512^3"
# Timing values are machine-dependent (no byte-identity gate here, unlike
# the simulator CSVs); the gate is on the *ordering*, with slack well below
# the ~3.4x this host measures so scheduler noise cannot flake the build.
./target/release/exp-gemm smoke >/dev/null
python3 - <<'EOF'
import csv
rows = {(r["kernel"], r["size"]): float(r["gflops"])
        for r in csv.DictReader(open("results/e12_gemm.csv"))}
seed = rows[("seed_naive_f32", "512")]
blocked = rows.get(("blocked_simd_f32", "512"), rows[("blocked_scalar_f32", "512")])
ratio = blocked / seed
print(f"blocked f32 {blocked:.2f} GF/s vs seed {seed:.2f} GF/s ({ratio:.2f}x)")
assert ratio >= 1.5, f"blocked f32 only {ratio:.2f}x the seed kernel at 512^3"
EOF
echo "e12_gemm.csv perf gate ok"

echo "== exp-18-tenancy smoke: CSV schema + byte-identical reruns"
./target/release/exp-18-tenancy quick >/dev/null
expected_header="mix,pattern,policy,tenant,class,offered,admitted,rejected,shed,completed,viol,e2e_p50_ms,e2e_p99_ms,tput_rps,scale_ups,scale_downs,max_active"
actual_header="$(head -n1 results/e18_tenancy.csv)"
if [ "$actual_header" != "$expected_header" ]; then
  echo "e18_tenancy.csv header mismatch:" >&2
  echo "  expected: $expected_header" >&2
  echo "  actual:   $actual_header" >&2
  exit 1
fi
cp results/e18_tenancy.csv /tmp/e18_tenancy.first.csv
./target/release/exp-18-tenancy quick >/dev/null
cmp results/e18_tenancy.csv /tmp/e18_tenancy.first.csv
echo "e18_tenancy.csv schema ok and deterministic across reruns"

echo "== exp-18-tenancy: byte-identical across rayon pool widths"
RAYON_NUM_THREADS=1 ./target/release/exp-18-tenancy quick >/dev/null
cp results/e18_tenancy.csv /tmp/e18_tenancy.t1.csv
RAYON_NUM_THREADS=4 ./target/release/exp-18-tenancy quick >/dev/null
cmp results/e18_tenancy.csv /tmp/e18_tenancy.t1.csv
echo "e18_tenancy.csv byte-identical under RAYON_NUM_THREADS=1 and =4"

echo "All checks passed."
