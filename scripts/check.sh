#!/usr/bin/env bash
# Repo-wide quality gate: build, test, formatting, lints.
# Run from the repository root; any failure aborts with a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== observability integration test"
cargo test -q --test observability

echo "== exp-profile emits a parsable Chrome trace"
DD_TRACE=results/e12_trace.json ./target/release/exp-profile smoke >/dev/null
python3 -m json.tool results/e12_trace.json >/dev/null
echo "results/e12_trace.json parses"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy"
cargo clippy --workspace -- -D warnings

echo "All checks passed."
